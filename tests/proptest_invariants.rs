//! Property-based tests (proptest) on the core invariants of the synopsis
//! algorithms, driven by randomly generated probabilistic relations in all
//! three uncertainty models.

mod common;

use proptest::prelude::*;

use common::ReferenceOracle;
use probsyn::histogram::evaluate::expected_cost;
use probsyn::histogram::oracle::abs::WeightedAbsOracle;
use probsyn::histogram::oracle::maxerr::MaxErrOracle;
use probsyn::histogram::oracle::sse::{SseObjective, SseOracle, TupleSseMode};
use probsyn::histogram::oracle::ssre::SsreOracle;
use probsyn::histogram::{build_histogram, oracle_for_metric, BucketCostOracle};
use probsyn::prelude::*;
use probsyn::wavelet::haar::{reconstruct_normalised, HaarTransform};
use probsyn::wavelet::sse::expected_sse;

/// Strategy: a small basic-model relation over `n` items.
fn basic_relation(n: usize, max_tuples: usize) -> impl Strategy<Value = ProbabilisticRelation> {
    prop::collection::vec((0..n, 0.01f64..1.0), 1..max_tuples)
        .prop_map(move |pairs| BasicModel::from_pairs(n, pairs).unwrap().into())
}

/// Strategy: a small tuple-pdf relation over `n` items (2 alternatives per
/// tuple, probabilities summing to at most 1).
fn tuple_relation(n: usize, max_tuples: usize) -> impl Strategy<Value = ProbabilisticRelation> {
    prop::collection::vec(((0..n, 0.01f64..0.6), (0..n, 0.01f64..0.4)), 1..max_tuples).prop_map(
        move |tuples| {
            TuplePdfModel::from_alternatives(
                n,
                tuples
                    .into_iter()
                    .map(|((i1, p1), (i2, p2))| {
                        if i1 == i2 {
                            vec![(i1, p1)]
                        } else {
                            vec![(i1, p1), (i2, p2)]
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap()
            .into()
        },
    )
}

/// Strategy: a small value-pdf relation with fractional frequencies.
fn value_relation(n: usize) -> impl Strategy<Value = ProbabilisticRelation> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..8.0, 0.05f64..0.45), 0..3),
        n..=n,
    )
    .prop_map(|items| {
        ValuePdfModel::new(
            items
                .into_iter()
                .map(|pairs| ValuePdf::new(pairs).unwrap())
                .collect(),
        )
        .into()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn induced_pdfs_are_proper_distributions(rel in tuple_relation(8, 10)) {
        let pdfs = rel.induced_value_pdfs();
        for i in 0..rel.n() {
            let pdf = pdfs.item(i).with_explicit_zero();
            let total: f64 = pdf.entries().iter().map(|&(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(pdf.entries().iter().all(|&(v, p)| v >= 0.0 && p >= 0.0));
            // Moments from the pdf match the closed-form moments.
            let moments = item_moments(&rel);
            prop_assert!((pdf.mean() - moments[i].mean).abs() < 1e-9);
            prop_assert!((pdf.second_moment() - moments[i].second_moment).abs() < 1e-9);
        }
    }

    #[test]
    fn sse_oracle_costs_are_consistent_and_nonnegative(rel in basic_relation(8, 14)) {
        let eq5 = SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, TupleSseMode::Exact);
        let fixed = SseOracle::new(&rel, SseObjective::FixedRepresentative);
        for s in 0..rel.n() {
            for e in s..rel.n() {
                let a = eq5.bucket(s, e);
                let b = fixed.bucket(s, e);
                prop_assert!(a.cost >= -1e-12);
                prop_assert!(b.cost >= a.cost - 1e-9);
                // Both report the bucket mean as representative.
                prop_assert!((a.representative - b.representative).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bucket_costs_are_monotone_under_containment(rel in value_relation(8)) {
        // Error monotonicity (condition (4) of Section 3.5): a bucket's cost
        // never decreases when the bucket grows.
        let oracles: Vec<Box<dyn BucketCostOracle>> = vec![
            Box::new(SseOracle::new(&rel, SseObjective::FixedRepresentative)),
            Box::new(SsreOracle::new(&rel, 0.5)),
            Box::new(WeightedAbsOracle::sae(&rel)),
            Box::new(WeightedAbsOracle::sare(&rel, 0.5)),
        ];
        for oracle in &oracles {
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let cost = oracle.bucket(s, e).cost;
                    if e + 1 < rel.n() {
                        prop_assert!(oracle.bucket(s, e + 1).cost >= cost - 1e-9);
                    }
                    if s > 0 {
                        prop_assert!(oracle.bucket(s - 1, e).cost >= cost - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn optimal_histogram_cost_is_monotone_in_buckets(rel in basic_relation(10, 16)) {
        let metric = ErrorMetric::Sae;
        let mut prev = f64::INFINITY;
        for b in 1..=6 {
            let h = build_histogram(&rel, metric, b).unwrap();
            let cost = expected_cost(&rel, metric, &h);
            prop_assert!(cost <= prev + 1e-9);
            prev = cost;
        }
    }

    #[test]
    fn histograms_partition_the_domain(rel in tuple_relation(12, 16)) {
        for metric in [ErrorMetric::Sse, ErrorMetric::Sare { c: 1.0 }, ErrorMetric::Mae] {
            let h = build_histogram(&rel, metric, 4).unwrap();
            prop_assert_eq!(h.buckets().first().unwrap().start, 0);
            prop_assert_eq!(h.buckets().last().unwrap().end, rel.n() - 1);
            for pair in h.buckets().windows(2) {
                prop_assert_eq!(pair[1].start, pair[0].end + 1);
            }
            // Estimates are piecewise constant over the buckets.
            let estimates = h.estimates();
            for bucket in h.buckets() {
                for &estimate in &estimates[bucket.start..=bucket.end] {
                    prop_assert!((estimate - bucket.representative).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn haar_transform_round_trips_and_preserves_energy(data in prop::collection::vec(-50.0f64..50.0, 1..33)) {
        let t = HaarTransform::forward(&data);
        let back = t.reconstruct();
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-7);
        }
        let padded_energy: f64 = data.iter().map(|x| x * x).sum();
        let coeff_energy: f64 = t.normalised().iter().map(|x| x * x).sum();
        prop_assert!((padded_energy - coeff_energy).abs() < 1e-6 * (1.0 + padded_energy));
        let back_norm = reconstruct_normalised(t.normalised());
        for (a, b) in data.iter().zip(&back_norm) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn greedy_wavelet_never_beats_more_budget(rel in basic_relation(16, 24)) {
        let mut prev = f64::INFINITY;
        for b in 0..=8 {
            let syn = build_sse_wavelet(&rel, b).unwrap();
            prop_assert!(syn.len() <= b);
            let sse = expected_sse(&rel, &syn);
            prop_assert!(sse >= -1e-9);
            prop_assert!(sse <= prev + 1e-9);
            prev = sse;
        }
    }

    #[test]
    fn sampling_is_supported_on_every_generated_relation(rel in value_relation(10)) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let world = sample_world(&rel, &mut rng);
        prop_assert_eq!(world.len(), rel.n());
        prop_assert!(world.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn batched_sweeps_match_per_call_costs_on_basic_relations(rel in basic_relation(8, 14), stride in 1usize..4) {
        batched_matches_per_call(&rel, stride);
    }

    #[test]
    fn batched_sweeps_match_per_call_costs_on_tuple_relations(rel in tuple_relation(8, 12), stride in 1usize..4) {
        batched_matches_per_call(&rel, stride);
    }

    #[test]
    fn batched_sweeps_match_per_call_costs_on_value_relations(rel in value_relation(8), stride in 1usize..4) {
        batched_matches_per_call(&rel, stride);
    }

    #[test]
    fn binary_search_max_error_matches_naive_envelope_scan_basic(rel in basic_relation(8, 14)) {
        maxerr_matches_reference(&rel);
    }

    #[test]
    fn binary_search_max_error_matches_naive_envelope_scan_tuple(rel in tuple_relation(8, 12)) {
        maxerr_matches_reference(&rel);
    }

    #[test]
    fn binary_search_max_error_matches_naive_envelope_scan_value(rel in value_relation(8)) {
        maxerr_matches_reference(&rel);
    }
}

/// All five oracle families over one relation (SSE in both tuple modes).
fn oracle_zoo(rel: &ProbabilisticRelation) -> Vec<Box<dyn BucketCostOracle>> {
    vec![
        Box::new(SseOracle::new(rel, SseObjective::PaperEq5)),
        Box::new(SseOracle::with_tuple_mode(
            rel,
            SseObjective::PaperEq5,
            TupleSseMode::Exact,
        )),
        Box::new(SsreOracle::new(rel, 0.5)),
        Box::new(WeightedAbsOracle::sae(rel)),
        Box::new(WeightedAbsOracle::sare(rel, 0.5)),
        Box::new(MaxErrOracle::mae(rel)),
        Box::new(MaxErrOracle::mare(rel, 0.5)),
    ]
}

/// Property body: `costs_ending_at(e, starts)` equals per-call `bucket(s, e)`
/// for every oracle, for the full start range and a strided subset.
fn batched_matches_per_call(rel: &ProbabilisticRelation, stride: usize) {
    for oracle in oracle_zoo(rel) {
        for e in 0..rel.n() {
            let full: Vec<usize> = (0..=e).collect();
            let strided: Vec<usize> = (0..=e).step_by(stride).collect();
            for starts in [&full, &strided] {
                let batched = oracle.costs_ending_at(e, starts);
                assert_eq!(batched.len(), starts.len());
                for (k, &s) in starts.iter().enumerate() {
                    let direct = oracle.bucket(s, e).cost;
                    assert!(
                        (batched[k] - direct).abs() < 1e-9,
                        "[{s},{e}]: batched {} vs direct {direct}",
                        batched[k]
                    );
                }
            }
        }
    }
}

/// Property body: the binary-search max-error oracle equals the naive
/// exhaustive envelope scan to 1e-9 on every bucket.
fn maxerr_matches_reference(rel: &ProbabilisticRelation) {
    for metric in [ErrorMetric::Mae, ErrorMetric::Mare { c: 0.5 }] {
        let oracle = oracle_for_metric(rel, metric);
        let reference = ReferenceOracle::new(rel, metric);
        for s in 0..rel.n() {
            for e in s..rel.n() {
                let fast = oracle.bucket(s, e).cost;
                let naive = reference.cost(s, e);
                assert!(
                    (fast - naive).abs() < 1e-9,
                    "{metric} [{s},{e}]: {fast} vs naive {naive}"
                );
            }
        }
    }
}
