//! Reference-vs-optimized oracle suite: every optimized bucket-cost path
//! (prefix arrays, binary searches, range-max envelope probes, batched
//! sweeps) is cross-checked against the naive `O(n·|V|)` reference oracle in
//! `tests/common`, on all three uncertainty models.

mod common;

use common::{reference_relations, ReferenceOracle};
use probsyn::histogram::oracle::maxerr::MaxErrOracle;
use probsyn::histogram::oracle::sse::{SseObjective, SseOracle, TupleSseMode};
use probsyn::histogram::{oracle_for_metric, BucketCostOracle};
use probsyn::prelude::*;

const TOL: f64 = 1e-9;

fn all_buckets(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n).flat_map(move |s| (s..n).map(move |e| (s, e)))
}

#[test]
fn cumulative_oracles_match_the_naive_reference_on_all_models() {
    for relation in reference_relations() {
        for metric in [
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Ssre { c: 2.0 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 0.5 },
            ErrorMetric::Sare { c: 1.0 },
        ] {
            let oracle = oracle_for_metric(&relation, metric);
            let reference = ReferenceOracle::new(&relation, metric);
            for (s, e) in all_buckets(relation.n()) {
                let fast = oracle.bucket(s, e).cost;
                let naive = reference.cost(s, e);
                assert!(
                    (fast - naive).abs() < TOL,
                    "{} {metric} [{s},{e}]: {fast} vs reference {naive}",
                    relation.model_name()
                );
            }
        }
    }
}

#[test]
fn sse_oracle_matches_the_naive_reference_on_independent_models() {
    for relation in reference_relations() {
        if !relation.items_independent() {
            continue;
        }
        let oracle = oracle_for_metric(&relation, ErrorMetric::Sse);
        let reference = ReferenceOracle::new(&relation, ErrorMetric::Sse);
        for (s, e) in all_buckets(relation.n()) {
            let fast = oracle.bucket(s, e).cost;
            let naive = reference.cost(s, e);
            assert!(
                (fast - naive).abs() < TOL,
                "{} sse [{s},{e}]: {fast} vs reference {naive}",
                relation.model_name()
            );
        }
    }
}

#[test]
fn tuple_exact_sse_matches_possible_world_enumeration() {
    for relation in reference_relations() {
        let worlds = PossibleWorlds::enumerate(&relation).unwrap();
        let oracle =
            SseOracle::with_tuple_mode(&relation, SseObjective::PaperEq5, TupleSseMode::Exact);
        for (s, e) in all_buckets(relation.n()) {
            let nb = (e - s + 1) as f64;
            let brute = worlds.expectation(|w| {
                let mean: f64 = w[s..=e].iter().sum::<f64>() / nb;
                w[s..=e].iter().map(|&g| (g - mean) * (g - mean)).sum()
            });
            let fast = oracle.bucket(s, e).cost;
            assert!(
                (fast - brute).abs() < TOL,
                "{} sse-exact [{s},{e}]: {fast} vs worlds {brute}",
                relation.model_name()
            );
        }
    }
}

#[test]
fn binary_search_max_error_oracles_match_the_naive_envelope_scan() {
    for relation in reference_relations() {
        for metric in [
            ErrorMetric::Mae,
            ErrorMetric::Mare { c: 0.5 },
            ErrorMetric::Mare { c: 1.5 },
        ] {
            let oracle = oracle_for_metric(&relation, metric);
            let reference = ReferenceOracle::new(&relation, metric);
            for (s, e) in all_buckets(relation.n()) {
                let fast = oracle.bucket(s, e).cost;
                let naive = reference.cost(s, e);
                assert!(
                    (fast - naive).abs() < TOL,
                    "{} {metric} [{s},{e}]: {fast} vs envelope scan {naive}",
                    relation.model_name()
                );
            }
        }
    }
}

#[test]
fn max_error_oracle_matches_the_reference_across_rmq_block_boundaries() {
    // The range-max tables decompose items into blocks of 64; a probabilistic
    // relation wider than two blocks exercises the suffix/prefix/sparse-table
    // composition of the envelope probes on non-degenerate pdfs (the naive
    // envelope scan is O(n_b²·|V|) per bucket, so sample the buckets).
    let relation: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
        n: 160,
        avg_tuples_per_item: 2.5,
        skew: 0.8,
        seed: 13,
    })
    .into();
    let buckets = [
        (0, 159),
        (0, 63),
        (0, 64),
        (1, 64),
        (63, 64),
        (63, 128),
        (64, 127),
        (64, 128),
        (5, 150),
        (70, 159),
        (100, 140),
        (127, 129),
        (128, 159),
        (31, 96),
        (96, 97),
    ];
    for metric in [ErrorMetric::Mae, ErrorMetric::Mare { c: 0.5 }] {
        let oracle = oracle_for_metric(&relation, metric);
        let reference = ReferenceOracle::new(&relation, metric);
        for &(s, e) in &buckets {
            let fast = oracle.bucket(s, e).cost;
            let naive = reference.cost(s, e);
            assert!(
                (fast - naive).abs() < TOL,
                "{metric} [{s},{e}]: {fast} vs envelope scan {naive}"
            );
        }
        // The sweep agrees on the same spans.
        let starts: Vec<usize> = (0..160).step_by(13).collect();
        let swept = oracle.costs_ending_at(159, &starts);
        for (k, &s) in starts.iter().enumerate() {
            assert!(
                (swept[k] - oracle.bucket(s, 159).cost).abs() < TOL,
                "{metric} sweep [{s},159]"
            );
        }
    }
}

#[test]
fn batched_sweeps_match_per_call_queries_for_every_oracle() {
    for relation in reference_relations() {
        let n = relation.n();
        let mut oracles: Vec<(String, Box<dyn BucketCostOracle>)> = vec![
            (
                "sse-exact".into(),
                Box::new(SseOracle::with_tuple_mode(
                    &relation,
                    SseObjective::PaperEq5,
                    TupleSseMode::Exact,
                )),
            ),
            ("maxerr-mae".into(), Box::new(MaxErrOracle::mae(&relation))),
        ];
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 1.0 },
            ErrorMetric::Mare { c: 0.5 },
        ] {
            oracles.push((format!("{metric}"), oracle_for_metric(&relation, metric)));
        }
        for (name, oracle) in &oracles {
            for e in 0..n {
                // Full range, a sparse subset, and a singleton start list.
                let full: Vec<usize> = (0..=e).collect();
                let sparse: Vec<usize> = (0..=e).step_by(2).collect();
                let single = vec![e / 2];
                for starts in [&full, &sparse, &single] {
                    let batched = oracle.costs_ending_at(e, starts);
                    assert_eq!(batched.len(), starts.len());
                    for (k, &s) in starts.iter().enumerate() {
                        let direct = oracle.bucket(s, e).cost;
                        assert!(
                            (batched[k] - direct).abs() < TOL,
                            "{} {name} [{s},{e}]: batched {} vs direct {direct}",
                            relation.model_name(),
                            batched[k]
                        );
                    }
                }
            }
            // The prefix-direction dual (fixed start, growing endpoint).
            for s in 0..n {
                let full: Vec<usize> = (s..n).collect();
                let sparse: Vec<usize> = (s..n).step_by(3).collect();
                let single = vec![(s + n - 1) / 2];
                for ends in [&full, &sparse, &single] {
                    let swept = oracle.costs_starting_at(s, ends);
                    assert_eq!(swept.len(), ends.len());
                    for (k, &e) in ends.iter().enumerate() {
                        let direct = oracle.bucket(s, e).cost;
                        assert!(
                            (swept[k] - direct).abs() < TOL,
                            "{} {name} [{s},{e}]: column sweep {} vs direct {direct}",
                            relation.model_name(),
                            swept[k]
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn dp_over_batched_sweeps_is_still_globally_optimal_against_the_reference() {
    use probsyn::histogram::DpTables;
    // Brute-force the best partition with reference costs and compare to the
    // DP driven entirely through the batched sweep API.
    fn brute(reference: &ReferenceOracle, n: usize, b: usize, cumulative: bool) -> f64 {
        fn recurse(
            reference: &ReferenceOracle,
            start: usize,
            n: usize,
            b: usize,
            cumulative: bool,
        ) -> f64 {
            if b == 1 {
                return reference.cost(start, n - 1);
            }
            let mut best = f64::INFINITY;
            for end in start..=(n - b) {
                let here = reference.cost(start, end);
                let rest = recurse(reference, end + 1, n, b - 1, cumulative);
                let total = if cumulative {
                    here + rest
                } else {
                    here.max(rest)
                };
                best = best.min(total);
            }
            best
        }
        recurse(reference, 0, n, b, cumulative)
    }

    for relation in reference_relations() {
        for metric in [
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Mae,
        ] {
            let oracle = oracle_for_metric(&relation, metric);
            let reference = ReferenceOracle::new(&relation, metric);
            for b in [2usize, 3] {
                let tables = DpTables::build(&oracle, b).unwrap();
                let expected = brute(&reference, relation.n(), b, metric.is_cumulative());
                assert!(
                    (tables.optimal_cost(b) - expected).abs() < TOL,
                    "{} {metric} b={b}: {} vs reference brute force {expected}",
                    relation.model_name(),
                    tables.optimal_cost(b)
                );
            }
        }
    }
}
