//! End-to-end store pipeline at test scale: stream ingest across
//! partitions, auto-sealing, compaction, global merge, AQP routing, and the
//! merged-vs-monolithic quality bound with genuinely lossy segments.

use probsyn::aqp::{answer_with_histogram, answer_with_store, relative_deviation, FrequencyQuery};
use probsyn::prelude::*;

const N: usize = 512;
const PARTS: usize = 4;

fn stream(records: usize) -> Vec<StreamRecord> {
    basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 1234,
    })
    .take(records)
    .collect()
}

fn exact_prefix(records: &[StreamRecord]) -> Vec<f64> {
    let mut exact = vec![0.0f64; N + 1];
    for r in records {
        if let StreamRecord::Basic { item, prob } = r {
            exact[*item + 1] += prob;
        }
    }
    for i in 0..N {
        exact[i + 1] += exact[i];
    }
    exact
}

#[test]
fn pipeline_ingests_seals_compacts_merges_and_serves() {
    let records = stream(20_000);
    let store = SynopsisStore::new(StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        2_000,
        24,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    ))
    .unwrap();
    store.ingest_all(records.iter().cloned()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.ingested_records, 20_000);
    assert!(stats.seals >= PARTS as u64, "auto-seals fired: {stats:?}");
    store.seal_all().unwrap();
    assert_eq!(store.stats().live_records, 0);

    // Multiple segments per partition before compaction, one after.
    assert!(store.stats().segments > PARTS);
    store.compact_all().unwrap();
    assert_eq!(store.stats().segments, PARTS);

    // Merged global histogram vs the monolithic single build.
    let b = 16;
    let merged = store.merge_global(b).unwrap();
    let pairs = records.iter().map(|r| match r {
        StreamRecord::Basic { item, prob } => (*item, *prob),
        _ => unreachable!(),
    });
    let relation: ProbabilisticRelation = BasicModel::from_pairs(N, pairs).unwrap().into();
    let monolithic = build_histogram(&relation, ErrorMetric::Sse, b).unwrap();

    let prefix = exact_prefix(&records);
    let mut merged_err = 0.0;
    let mut mono_err = 0.0;
    let mut store_err = 0.0;
    let mut count = 0usize;
    for width in [1usize, 8, 64, 256] {
        for k in 0..25 {
            let start = (k * 131 * width) % (N - width);
            let query = FrequencyQuery::RangeSum {
                start,
                end: start + width - 1,
            };
            let reference = prefix[start + width] - prefix[start];
            merged_err += (answer_with_histogram(&merged, query).estimate - reference).abs();
            mono_err += (answer_with_histogram(&monolithic, query).estimate - reference).abs();
            store_err += (answer_with_store(&store, query).estimate - reference).abs();
            count += 1;
        }
    }
    merged_err /= count as f64;
    mono_err /= count as f64;
    store_err /= count as f64;
    assert!(
        merged_err <= 2.0 * mono_err + 1e-9,
        "merged {merged_err} vs monolithic {mono_err}"
    );
    // The per-partition store view (more buckets overall) is at least as
    // good as the B-bucket global merge on average.
    assert!(
        store_err <= merged_err + 1e-9,
        "store {store_err} vs merged {merged_err}"
    );
}

#[test]
fn store_binary_snapshot_meets_the_compression_bar() {
    let records = stream(30_000);
    let store = SynopsisStore::new(StoreConfig::new(
        PartitionSpec::uniform(N, 2).unwrap(),
        100_000,
        200,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    ))
    .unwrap();
    store.ingest_all(records).unwrap();
    store.seal_all().unwrap();

    // A 200-bucket histogram segment: binary at least 5x smaller than JSON.
    let segment = &store.segments(0)[0];
    let binary = segment.to_binary().unwrap();
    let json = segment.to_json().unwrap();
    assert!(
        binary.len() * 5 <= json.len(),
        "binary {} bytes vs JSON {} bytes",
        binary.len(),
        json.len()
    );

    // Decoding truncated or version-skewed blobs errors, never panics.
    for cut in [0, 3, 6, binary.len() / 2, binary.len() - 1] {
        assert!(Segment::from_binary(&binary[..cut]).is_err());
    }
    let mut skewed = binary.clone();
    skewed[4] = 99;
    assert!(Segment::from_binary(&skewed).is_err());

    let blob = store.to_binary().unwrap();
    for cut in [0, 5, blob.len() / 3, blob.len() - 1] {
        assert!(SynopsisStore::from_binary(&blob[..cut]).is_err());
    }
    let restored = SynopsisStore::from_binary(&blob).unwrap();
    for (lo, hi) in [(0usize, N - 1), (37, 444), (100, 100)] {
        assert_eq!(
            restored.range_estimate(lo, hi),
            store.range_estimate(lo, hi)
        );
    }
}

#[test]
fn wavelet_segments_flow_through_the_same_pipeline() {
    let records = stream(4_000);
    let store = SynopsisStore::new(StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        1_000,
        32,
        SynopsisKind::Wavelet,
    ))
    .unwrap();
    store.ingest_all(records.iter().cloned()).unwrap();
    store.seal_all().unwrap();
    store.compact_all().unwrap();
    let merged = store.merge_global(16).unwrap();
    assert_eq!(merged.n(), N);

    // Wide ranges are answered within a few percent of the exact answer.
    let prefix = exact_prefix(&records);
    let exact_total = prefix[N];
    let got = answer_with_store(
        &store,
        FrequencyQuery::RangeSum {
            start: 0,
            end: N - 1,
        },
    )
    .estimate;
    assert!(
        relative_deviation(got, exact_total, 1.0) < 0.05,
        "{got} vs {exact_total}"
    );
    let bytes = store.to_binary().unwrap();
    let restored = SynopsisStore::from_binary(&bytes).unwrap();
    assert_eq!(
        restored.range_estimate(10, 200),
        store.range_estimate(10, 200)
    );
}

#[test]
fn concurrent_ingest_answers_aqp_queries_identically_to_serial() {
    // The AQP-level face of the equivalence contract (the byte-level one
    // lives in `crates/store/tests/store_concurrency.rs`): the same stream
    // ingested per-record on one thread versus batched on the pool with
    // background seal workers yields identical `answer_with_store` results.
    let records = stream(12_000);
    let make_config = || {
        StoreConfig::new(
            PartitionSpec::uniform(N, PARTS).unwrap(),
            1_500,
            24,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        )
    };
    let serial = SynopsisStore::new(make_config()).unwrap();
    for record in &records {
        serial.ingest(record.clone()).unwrap();
    }
    serial.seal_all().unwrap();

    let concurrent = SynopsisStore::new(make_config())
        .unwrap()
        .with_background_sealing(4);
    concurrent.ingest_batch(records.iter().cloned()).unwrap();
    concurrent.seal_all().unwrap();
    concurrent.flush().unwrap();

    for (start, end) in [(0usize, N - 1), (3, 3), (17, 230), (100, 101), (400, 511)] {
        let query = FrequencyQuery::RangeSum { start, end };
        let a = answer_with_store(&serial, query).estimate;
        let b = answer_with_store(&concurrent, query).estimate;
        assert_eq!(a.to_bits(), b.to_bits(), "query [{start}, {end}]");
    }
    assert_eq!(serial.to_binary().unwrap(), concurrent.to_binary().unwrap());
}

#[test]
fn durable_store_reopens_and_answers_aqp_queries_identically() {
    // The AQP-level face of the crash-durability contract (the crash-point
    // matrix lives in `crates/store/tests/store_crash_matrix.rs`): a store
    // that sealed into install-time blobs, compacted, and then "crashed"
    // answers every `answer_with_store` query bit-identically after a
    // reopen from manifest + segment blobs + WAL tail alone.
    let dir = std::env::temp_dir().join(format!("pds-e2e-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let make_config = || {
        StoreConfig::new(
            PartitionSpec::uniform(N, PARTS).unwrap(),
            1_500,
            24,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        )
    };
    let records = stream(9_000);
    let queries: Vec<FrequencyQuery> = [(0usize, N - 1), (3, 3), (17, 230), (100, 101), (400, 511)]
        .iter()
        .map(|&(start, end)| FrequencyQuery::RangeSum { start, end })
        .collect();

    let before: Vec<f64> = {
        let store = SynopsisStore::open_with_wal(make_config(), &dir).unwrap();
        store.ingest_all(records.iter().cloned()).unwrap();
        store.seal_all().unwrap();
        store.compact_all().unwrap();
        // A few live records on top: they must come back from the WAL.
        for record in records.iter().take(40) {
            store.ingest(record.clone()).unwrap();
        }
        queries
            .iter()
            .map(|&q| answer_with_store(&store, q).estimate)
            .collect()
        // Dropped without snapshot(): durability comes from blobs + WAL.
    };

    let reopened = SynopsisStore::open_with_wal(make_config(), &dir).unwrap();
    assert_eq!(reopened.stats().live_records, 40);
    for (q, want) in queries.iter().zip(&before) {
        let got = answer_with_store(&reopened, *q).estimate;
        assert_eq!(got.to_bits(), want.to_bits(), "query {q:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
