//! End-to-end optimality checks: on inputs small enough to enumerate every
//! alternative (all bucketings, all coefficient subsets, all possible
//! worlds), the synopses produced by the library must be exactly optimal
//! under the expected-error semantics of Section 2.3.

use probsyn::histogram::evaluate::expected_cost;
use probsyn::histogram::{build_histogram, oracle_for_metric, BucketCostOracle, Histogram};
use probsyn::prelude::*;

/// Enumerates every partition of `[0, n)` into exactly `b` buckets, fits the
/// oracle-optimal representative in each bucket, and returns the smallest
/// expected cost under `metric`.
fn best_over_all_bucketings(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
) -> f64 {
    let n = relation.n();
    let oracle = oracle_for_metric(relation, metric);
    let mut best = f64::INFINITY;
    // Choose b-1 boundaries out of n-1 gaps.
    let mut ends = vec![0usize; b];
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        start: usize,
        remaining: usize,
        n: usize,
        ends: &mut Vec<usize>,
        level: usize,
        best: &mut f64,
        relation: &ProbabilisticRelation,
        metric: ErrorMetric,
        oracle: &dyn BucketCostOracle,
    ) {
        if remaining == 1 {
            ends[level] = n - 1;
            let mut reps = Vec::with_capacity(ends.len());
            let mut s = 0usize;
            for &e in ends.iter() {
                reps.push(oracle.bucket(s, e).representative);
                s = e + 1;
            }
            let h = Histogram::from_boundaries(n, ends, &reps).unwrap();
            let cost = expected_cost(relation, metric, &h);
            if cost < *best {
                *best = cost;
            }
            return;
        }
        for end in start..=(n - remaining) {
            ends[level] = end;
            recurse(
                end + 1,
                remaining - 1,
                n,
                ends,
                level + 1,
                best,
                relation,
                metric,
                oracle,
            );
        }
    }
    recurse(0, b, n, &mut ends, 0, &mut best, relation, metric, &oracle);
    best
}

fn small_workloads() -> Vec<ProbabilisticRelation> {
    vec![
        mystiq_like(MystiqLikeConfig {
            n: 10,
            avg_tuples_per_item: 2.0,
            skew: 0.7,
            seed: 31,
        })
        .into(),
        tpch_like(TpchLikeConfig {
            n: 10,
            tuples: 18,
            max_alternatives: 3,
            locality_window: 3,
            skew: 0.5,
            seed: 32,
        })
        .into(),
        zipf_value_pdf(ValuePdfConfig {
            n: 10,
            max_entries_per_item: 3,
            max_frequency: 6.0,
            skew: 0.8,
            zero_mass: 0.25,
            seed: 33,
        })
        .into(),
    ]
}

#[test]
fn dp_histograms_are_globally_optimal_for_per_item_metrics() {
    for relation in small_workloads() {
        for metric in [
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 1.0 },
        ] {
            for b in [2usize, 3, 4] {
                let h = build_histogram(&relation, metric, b).unwrap();
                let built = expected_cost(&relation, metric, &h);
                let brute = best_over_all_bucketings(&relation, metric, b);
                assert!(
                    (built - brute).abs() < 1e-9,
                    "{} {metric} b={b}: built {built} vs brute-force {brute}",
                    relation.model_name()
                );
            }
        }
    }
}

#[test]
fn dp_histograms_are_globally_optimal_for_max_metrics() {
    for relation in small_workloads() {
        for metric in [ErrorMetric::Mae, ErrorMetric::Mare { c: 0.5 }] {
            for b in [2usize, 3] {
                let h = build_histogram(&relation, metric, b).unwrap();
                let built = expected_cost(&relation, metric, &h);
                let brute = best_over_all_bucketings(&relation, metric, b);
                assert!(
                    (built - brute).abs() < 1e-9,
                    "{} {metric} b={b}: built {built} vs brute-force {brute}",
                    relation.model_name()
                );
            }
        }
    }
}

#[test]
fn histogram_costs_match_possible_world_expectations_end_to_end() {
    // The analytic expected cost of the constructed histogram equals the
    // brute-force expectation over all possible worlds.
    for relation in small_workloads() {
        let worlds = PossibleWorlds::enumerate(&relation).unwrap();
        for metric in [ErrorMetric::Ssre { c: 1.0 }, ErrorMetric::Sae] {
            let h = build_histogram(&relation, metric, 3).unwrap();
            let analytic = expected_cost(&relation, metric, &h);
            let brute = worlds.expectation(|w| {
                (0..relation.n())
                    .map(|i| metric.point_error(w[i], h.estimate(i)))
                    .sum()
            });
            assert!(
                (analytic - brute).abs() < 1e-9,
                "{} {metric}",
                relation.model_name()
            );
        }
    }
}

#[test]
fn approximate_construction_respects_its_guarantee_end_to_end() {
    use probsyn::histogram::approx::approx_histogram;
    for relation in small_workloads() {
        for metric in [ErrorMetric::Ssre { c: 0.5 }, ErrorMetric::Sae] {
            let oracle = oracle_for_metric(&relation, metric);
            for eps in [0.05, 0.5] {
                let approx = approx_histogram(&oracle, 3, eps).unwrap();
                let brute = best_over_all_bucketings(&relation, metric, 3);
                assert!(
                    approx.histogram.total_cost() <= (1.0 + eps) * brute + 1e-9,
                    "{} {metric} eps={eps}",
                    relation.model_name()
                );
            }
        }
    }
}

/// Optimality regression at real sizes: across an ε grid the approximate DP
/// must stay within its `(1 + ε)` guarantee of the exact DP *and* perform
/// strictly fewer bucket-cost evaluations — the whole point of Theorem 5.
#[test]
fn approximate_dp_tracks_exact_dp_across_epsilon_grid() {
    use probsyn::histogram::approx::approx_histogram;
    use probsyn::histogram::DpTables;
    let b = 8;
    for n in [256usize, 1024] {
        // Same shape as the benchmark movie workload, deterministic per seed.
        let relation: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 4.6,
            skew: 0.8,
            seed: 42,
        })
        .into();
        for metric in [ErrorMetric::Ssre { c: 0.5 }, ErrorMetric::Sae] {
            let oracle = oracle_for_metric(&relation, metric);
            let tables = DpTables::build(&oracle, b).unwrap();
            let exact = tables.optimal_cost(b);
            for eps in [0.05, 0.1, 0.25] {
                let approx = approx_histogram(&oracle, b, eps).unwrap();
                let cost = approx.histogram.total_cost();
                assert!(
                    cost <= (1.0 + eps) * exact + 1e-9,
                    "{metric} n={n} eps={eps}: {cost} vs (1+eps)*{exact}"
                );
                assert!(cost >= exact - 1e-9, "{metric} n={n} eps={eps}");
                assert!(
                    approx.stats.bucket_evaluations < tables.bucket_evaluations(),
                    "{metric} n={n} eps={eps}: {} approximate evaluations, exact DP used {}",
                    approx.stats.bucket_evaluations,
                    tables.bucket_evaluations()
                );
            }
        }
    }
}
