//! Shared naive reference implementations for the integration test suites.
//!
//! [`ReferenceOracle`] re-derives every bucket cost straight from the
//! induced per-item frequency pdfs with `O(n_b · |V|)` scans (and an
//! `O(n_b² · |V|)` exhaustive envelope scan for the max-error metrics) —
//! no prefix arrays, no binary searches, no range-max tables, no sweeps.
//! The optimized oracles in `pds-histogram` are cross-checked against it by
//! `tests/oracle_reference.rs` and the property suites.

#![allow(dead_code)]

use probsyn::prelude::*;

/// A deliberately naive bucket-cost oracle used as ground truth.
pub struct ReferenceOracle {
    metric: ErrorMetric,
    pdfs: ValuePdfModel,
    values: Vec<f64>,
}

impl ReferenceOracle {
    /// Builds the reference for one metric over one relation.
    pub fn new(relation: &ProbabilisticRelation, metric: ErrorMetric) -> Self {
        let pdfs = relation.induced_value_pdfs();
        let values = ValueDomain::from_value_pdfs(&pdfs).values().to_vec();
        ReferenceOracle {
            metric,
            pdfs,
            values,
        }
    }

    /// The frequency value domain (sorted, zero included).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `Σ_i E[err(g_i, rep)]` (cumulative) or `max_i E[err(g_i, rep)]`
    /// (max-error) over the bucket, from the raw pdfs.
    pub fn error_at(&self, s: usize, e: usize, rep: f64) -> f64 {
        self.metric
            .combine((s..=e).map(|i| self.metric.expected_point_error(self.pdfs.item(i), rep)))
    }

    /// The naive bucket cost `min_rep` of [`ReferenceOracle::error_at`].
    ///
    /// For SSE the closed-form mean representative is used (exact for
    /// independent-item models; tuple-pdf SSE is cross-checked against
    /// possible-worlds enumeration instead).  For SSRE the weighted mean is
    /// accumulated directly from the pdf entries.  For SAE/SARE every value
    /// of `V` is tried (Theorem 3 guarantees the optimum lies there).  For
    /// MAE/MARE every grid value *and* every pairwise crossing of per-item
    /// error lines inside every grid segment is tried — the exhaustive
    /// envelope scan.
    pub fn cost(&self, s: usize, e: usize) -> f64 {
        match self.metric {
            ErrorMetric::Sse => self.sse_cost(s, e),
            ErrorMetric::Ssre { c } => self.ssre_cost(s, e, c),
            ErrorMetric::Sae | ErrorMetric::Sare { .. } => self.value_scan_cost(s, e),
            ErrorMetric::Mae | ErrorMetric::Mare { .. } => self.envelope_scan_cost(s, e),
        }
    }

    /// The paper's equation (5) for independent items:
    /// `Σ E[g²] − (mean_sum² + Σ Var[g]) / n_b`.
    fn sse_cost(&self, s: usize, e: usize) -> f64 {
        let nb = (e - s + 1) as f64;
        let mut ex2 = 0.0;
        let mut mean_sum = 0.0;
        let mut var_sum = 0.0;
        for i in s..=e {
            let pdf = self.pdfs.item(i);
            let mean = pdf.mean();
            let m2 = pdf.second_moment();
            ex2 += m2;
            mean_sum += mean;
            var_sum += m2 - mean * mean;
        }
        (ex2 - (mean_sum * mean_sum + var_sum) / nb).max(0.0)
    }

    fn ssre_cost(&self, s: usize, e: usize, c: f64) -> f64 {
        // Optimal representative is the weight-weighted mean (Theorem 2).
        let weight = |v: f64| 1.0 / c.max(v.abs()).powi(2);
        let mut sw = 0.0;
        let mut swv = 0.0;
        for i in s..=e {
            let full = self.pdfs.item(i).with_explicit_zero();
            for &(v, p) in full.entries() {
                let w = p * weight(v);
                sw += w;
                swv += w * v;
            }
        }
        let rep = if sw > 0.0 { swv / sw } else { 0.0 };
        self.error_at(s, e, rep).max(0.0)
    }

    fn value_scan_cost(&self, s: usize, e: usize) -> f64 {
        self.values
            .iter()
            .map(|&v| self.error_at(s, e, v))
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// The per-item expected error as a line `(slope, intercept)` on the
    /// grid segment `[v_l, v_{l+1}]`, from direct summation.
    fn item_line(&self, i: usize, l: usize) -> (f64, f64) {
        let vl = self.values[l];
        let full = self.pdfs.item(i).with_explicit_zero();
        let mut slope = 0.0;
        let mut intercept = 0.0;
        for &(v, p) in full.entries() {
            let w = p * self.metric.weight(v);
            if v <= vl + 1e-12 {
                slope += w;
                intercept -= w * v;
            } else {
                slope -= w;
                intercept += w * v;
            }
        }
        (slope, intercept)
    }

    /// Exhaustive exact minimum of the convex upper envelope
    /// `max_i E[err(g_i, x)]`: the optimum is a grid value or an interior
    /// crossing of two per-item lines, so try them all.
    fn envelope_scan_cost(&self, s: usize, e: usize) -> f64 {
        let mut best = self
            .values
            .iter()
            .map(|&v| self.error_at(s, e, v))
            .fold(f64::INFINITY, f64::min);
        for l in 0..self.values.len().saturating_sub(1) {
            let (lo, hi) = (self.values[l], self.values[l + 1]);
            let lines: Vec<(f64, f64)> = (s..=e).map(|i| self.item_line(i, l)).collect();
            for a in 0..lines.len() {
                for b in a + 1..lines.len() {
                    let (a1, c1) = lines[a];
                    let (a2, c2) = lines[b];
                    if (a1 - a2).abs() < 1e-12 {
                        continue;
                    }
                    let x = (c2 - c1) / (a1 - a2);
                    if x > lo && x < hi {
                        best = best.min(self.error_at(s, e, x));
                    }
                }
            }
        }
        best.max(0.0)
    }
}

/// The three small cross-model relations used by the reference comparisons.
pub fn reference_relations() -> Vec<ProbabilisticRelation> {
    vec![
        BasicModel::from_pairs(
            6,
            [
                (0, 0.5),
                (1, 1.0 / 3.0),
                (1, 0.25),
                (2, 0.5),
                (4, 0.8),
                (4, 0.4),
                (5, 0.9),
            ],
        )
        .unwrap()
        .into(),
        TuplePdfModel::from_alternatives(
            6,
            [
                vec![(0, 0.5), (1, 1.0 / 3.0)],
                vec![(1, 0.25), (2, 0.5)],
                vec![(3, 0.6), (4, 0.3)],
                vec![(4, 0.45), (5, 0.2)],
            ],
        )
        .unwrap()
        .into(),
        ValuePdfModel::from_sparse(
            6,
            [
                (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.5, 0.25)]).unwrap()),
                (2, ValuePdf::new([(6.0, 0.1)]).unwrap()),
                (3, ValuePdf::new([(4.0, 0.75), (0.5, 0.2)]).unwrap()),
                (5, ValuePdf::new([(2.0, 0.35), (3.5, 0.3)]).unwrap()),
            ],
        )
        .unwrap()
        .into(),
    ]
}
