//! Integration tests for the wavelet crate against the core substrate:
//! possible-worlds validation of the expected-SSE analysis (Theorem 7) and
//! the interplay between the SSE-greedy and restricted non-SSE constructions
//! (Theorem 8).

use probsyn::prelude::*;
use probsyn::wavelet::haar::HaarTransform;
use probsyn::wavelet::nonsse::{build_restricted_wavelet, expected_wavelet_cost};
use probsyn::wavelet::sse::{expected_sse, ExpectedCoefficients};
use probsyn::wavelet::{sampled_world_wavelet, synopsis_from_selection};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_relation(seed: u64) -> ProbabilisticRelation {
    tpch_like(TpchLikeConfig {
        n: 8,
        tuples: 14,
        max_alternatives: 3,
        locality_window: 3,
        skew: 0.5,
        seed,
    })
    .into()
}

#[test]
fn expected_sse_matches_possible_world_enumeration() {
    for seed in [1, 2, 3] {
        let rel = small_relation(seed);
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        for b in [0usize, 2, 4, 8] {
            let syn = build_sse_wavelet(&rel, b).unwrap();
            let estimates = syn.reconstruct();
            let analytic = expected_sse(&rel, &syn);
            let brute = worlds.expectation(|w| {
                w.iter()
                    .zip(&estimates)
                    .map(|(&g, &e)| (g - e) * (g - e))
                    .sum()
            });
            assert!(
                (analytic - brute).abs() < 1e-9,
                "seed {seed} b={b}: {analytic} vs {brute}"
            );
        }
    }
}

#[test]
fn expected_coefficients_equal_expected_world_coefficients() {
    // Linearity of the transform (the key observation behind Theorem 7):
    // E[H(g)] = H(E[g]), verified by enumerating the worlds and averaging
    // their coefficient vectors.
    for seed in [4, 5] {
        let rel = small_relation(seed);
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        let mu = ExpectedCoefficients::of(&rel);
        for idx in 0..8 {
            let brute = worlds.expectation(|w| HaarTransform::forward(w).normalised()[idx]);
            assert!(
                (mu.normalised()[idx] - brute).abs() < 1e-9,
                "seed {seed} coefficient {idx}"
            );
        }
    }
}

#[test]
fn greedy_selection_is_optimal_among_all_equal_size_selections() {
    // Exhaustively check Theorem 7 on a small domain: no other index subset
    // of the same size achieves lower expected SSE when coefficients are
    // retained at their expected values.
    let rel = small_relation(6);
    for b in [1usize, 2, 3] {
        let greedy = build_sse_wavelet(&rel, b).unwrap();
        let greedy_sse = expected_sse(&rel, &greedy);
        let n = 8usize;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != b {
                continue;
            }
            let indices: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let syn = synopsis_from_selection(&rel, &indices).unwrap();
            assert!(
                expected_sse(&rel, &syn) >= greedy_sse - 1e-9,
                "b={b}, subset {indices:?}"
            );
        }
    }
}

#[test]
fn restricted_dp_never_loses_to_the_sse_selection_under_its_own_metric() {
    let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
        n: 32,
        avg_tuples_per_item: 3.0,
        skew: 0.8,
        seed: 11,
    })
    .into();
    for metric in [
        ErrorMetric::Sae,
        ErrorMetric::Sare { c: 0.5 },
        ErrorMetric::Mae,
        ErrorMetric::Mare { c: 1.0 },
    ] {
        for b in [2usize, 4, 8] {
            let restricted = build_restricted_wavelet(&rel, metric, b).unwrap();
            let sse_selection = build_sse_wavelet(&rel, b).unwrap();
            let sse_cost = expected_wavelet_cost(&rel, metric, &sse_selection);
            assert!(
                restricted.objective <= sse_cost + 1e-9,
                "{metric} b={b}: {} vs {sse_cost}",
                restricted.objective
            );
        }
    }
}

#[test]
fn sampled_world_wavelets_are_valid_but_not_better_in_expectation() {
    let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
        n: 64,
        avg_tuples_per_item: 3.0,
        skew: 0.9,
        seed: 17,
    })
    .into();
    let mut rng = StdRng::seed_from_u64(21);
    for b in [4usize, 16, 32] {
        let optimal = build_sse_wavelet(&rel, b).unwrap();
        for _ in 0..3 {
            let sampled = sampled_world_wavelet(&rel, b, &mut rng).unwrap();
            assert!(sampled.len() <= b);
            assert!(expected_sse(&rel, &optimal) <= expected_sse(&rel, &sampled) + 1e-9);
        }
    }
}
