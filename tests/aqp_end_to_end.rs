//! End-to-end tests for the umbrella `probsyn::aqp` module: range-count
//! queries answered from a histogram synopsis and from a wavelet synopsis,
//! cross-checked against the exact possible-worlds expectation on relations
//! small enough to enumerate.

use probsyn::aqp::{
    answer_with_histogram, answer_with_wavelet, exact_expected_answer, relative_deviation,
    FrequencyQuery,
};
use probsyn::prelude::*;

/// A six-item basic-model relation with 2^5 = 32 enumerable worlds.
fn small_basic() -> ProbabilisticRelation {
    BasicModel::from_pairs(6, [(0, 0.9), (1, 0.4), (1, 0.7), (3, 0.2), (4, 0.6)])
        .unwrap()
        .into()
}

/// A six-item tuple-pdf relation (three x-tuples, two alternatives each).
fn small_tuple_pdf() -> ProbabilisticRelation {
    TuplePdfModel::from_alternatives(
        6,
        [
            vec![(0, 0.5), (2, 0.3)],
            vec![(2, 0.25), (3, 0.5)],
            vec![(4, 0.6), (5, 0.2)],
        ],
    )
    .unwrap()
    .into()
}

/// A four-item value-pdf relation with fractional frequencies.
fn small_value_pdf() -> ProbabilisticRelation {
    ValuePdfModel::new(vec![
        ValuePdf::new([(1.0, 0.5), (2.0, 0.25)]).unwrap(),
        ValuePdf::new([(0.5, 0.8)]).unwrap(),
        ValuePdf::new([(3.0, 0.4), (1.0, 0.4)]).unwrap(),
        ValuePdf::new([(2.5, 1.0)]).unwrap(),
    ])
    .into()
}

fn queries_over(n: usize) -> Vec<FrequencyQuery> {
    let mut queries = Vec::new();
    for item in 0..n {
        queries.push(FrequencyQuery::Point { item });
    }
    for start in 0..n {
        for end in start..n {
            queries.push(FrequencyQuery::RangeSum { start, end });
        }
    }
    queries
}

/// `exact_expected_answer` must agree with brute-force enumeration of the
/// possible worlds, in every uncertainty model, for every point/range query.
#[test]
fn exact_answers_agree_with_world_enumeration_in_all_models() {
    for rel in [small_basic(), small_tuple_pdf(), small_value_pdf()] {
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        for query in queries_over(rel.n()) {
            let closed_form = exact_expected_answer(&rel, query);
            let brute = worlds.expectation(|world| query.evaluate(world));
            assert!(
                (closed_form - brute).abs() < 1e-12,
                "{query:?} on {}: closed form {closed_form} vs enumerated {brute}",
                rel.model_name()
            );
        }
    }
}

/// A full-resolution histogram (B = n) and a full wavelet (one term per Haar
/// coefficient of the padded domain) are both lossless, so the AQP layer must
/// reproduce the exact possible-worlds expectation for every range-count
/// query.
#[test]
fn lossless_synopses_answer_range_counts_exactly() {
    for rel in [small_basic(), small_tuple_pdf(), small_value_pdf()] {
        let histogram = build_histogram(&rel, ErrorMetric::Sse, rel.n()).unwrap();
        let wavelet = build_sse_wavelet(&rel, rel.n().next_power_of_two()).unwrap();
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        for query in queries_over(rel.n()) {
            let brute = worlds.expectation(|world| query.evaluate(world));
            let h = answer_with_histogram(&histogram, query).estimate;
            let w = answer_with_wavelet(&wavelet, query).estimate;
            assert!(
                (h - brute).abs() < 1e-9,
                "histogram answer {h} vs possible-worlds {brute} for {query:?} on {}",
                rel.model_name()
            );
            assert!(
                (w - brute).abs() < 1e-9,
                "wavelet answer {w} vs possible-worlds {brute} for {query:?} on {}",
                rel.model_name()
            );
        }
    }
}

/// Compressed synopses answer a whole-domain range count within the error
/// their bucket/term budget allows; on the small basic relation the SSE
/// representatives preserve per-bucket mass, so the whole-domain estimate
/// should be very close to exact.
#[test]
fn compressed_synopses_stay_close_on_whole_domain_count() {
    let rel = small_basic();
    let histogram = build_histogram(&rel, ErrorMetric::Sse, 3).unwrap();
    let wavelet = build_sse_wavelet(&rel, 3).unwrap();
    let query = FrequencyQuery::RangeSum {
        start: 0,
        end: rel.n() - 1,
    };
    let exact = exact_expected_answer(&rel, query);
    let h = answer_with_histogram(&histogram, query).estimate;
    let w = answer_with_wavelet(&wavelet, query).estimate;
    assert!(
        relative_deviation(h, exact, 1.0) < 0.25,
        "histogram {h} vs exact {exact}"
    );
    assert!(
        relative_deviation(w, exact, 1.0) < 0.25,
        "wavelet {w} vs exact {exact}"
    );
    // The histogram's bucket walk must agree with summing its per-item
    // estimates even under compression.
    let item_by_item: f64 = (0..rel.n()).map(|i| histogram.estimate(i)).sum();
    assert!((h - item_by_item).abs() < 1e-9);
}

/// Queries whose end runs past the domain are clamped rather than panicking.
#[test]
fn out_of_range_queries_are_clamped() {
    let rel = small_basic();
    let histogram = build_histogram(&rel, ErrorMetric::Sse, rel.n()).unwrap();
    let clamped = FrequencyQuery::RangeSum { start: 0, end: 999 };
    let full = FrequencyQuery::RangeSum {
        start: 0,
        end: rel.n() - 1,
    };
    assert!(
        (answer_with_histogram(&histogram, clamped).estimate
            - answer_with_histogram(&histogram, full).estimate)
            .abs()
            < 1e-12
    );
    assert!(
        (exact_expected_answer(&rel, clamped) - exact_expected_answer(&rel, full)).abs() < 1e-12
    );
}
