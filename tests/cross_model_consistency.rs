//! Cross-crate integration tests: the same logical uncertain data expressed
//! in different models must lead to consistent synopses wherever the theory
//! says it should (per-item-linear metrics depend only on the induced value
//! pdfs).

use probsyn::core::generator::deterministic_zipf;
use probsyn::histogram::evaluate::expected_cost;
use probsyn::histogram::{build_histogram, optimal_histogram, oracle_for_metric};
use probsyn::prelude::*;
use probsyn::wavelet::sse::expected_sse;

/// A basic-model relation, the same data viewed as single-alternative tuple
/// pdf, and its induced value pdf relation.
fn equivalent_relations() -> Vec<ProbabilisticRelation> {
    let basic = BasicModel::from_pairs(
        12,
        [
            (0, 0.9),
            (0, 0.4),
            (1, 0.6),
            (3, 0.95),
            (3, 0.5),
            (4, 0.25),
            (6, 0.7),
            (7, 0.8),
            (7, 0.15),
            (9, 0.55),
            (11, 0.35),
        ],
    )
    .unwrap();
    let tuple = TuplePdfModel::from_basic(&basic);
    let value = basic.induced_value_pdfs();
    vec![basic.into(), tuple.into(), value.into()]
}

#[test]
fn per_item_linear_histograms_agree_across_models() {
    let relations = equivalent_relations();
    for metric in [
        ErrorMetric::Ssre { c: 0.5 },
        ErrorMetric::Sae,
        ErrorMetric::Sare { c: 1.0 },
        ErrorMetric::Mae,
        ErrorMetric::Mare { c: 0.5 },
    ] {
        let reference = build_histogram(&relations[0], metric, 4).unwrap();
        let reference_cost = expected_cost(&relations[0], metric, &reference);
        for rel in &relations[1..] {
            let h = build_histogram(rel, metric, 4).unwrap();
            let cost = expected_cost(rel, metric, &h);
            assert!(
                (cost - reference_cost).abs() < 1e-9,
                "{metric} on {}: {cost} vs {reference_cost}",
                rel.model_name()
            );
        }
    }
}

#[test]
fn sse_histograms_agree_between_basic_and_induced_value_pdf() {
    // For the basic model the items are independent, so the paper's eq-(5)
    // SSE objective coincides with the value-pdf formulation of the same
    // relation.
    let relations = equivalent_relations();
    let basic = &relations[0];
    let value = &relations[2];
    let h_basic = build_histogram(basic, ErrorMetric::Sse, 4).unwrap();
    let h_value = build_histogram(value, ErrorMetric::Sse, 4).unwrap();
    assert!((h_basic.total_cost() - h_value.total_cost()).abs() < 1e-9);
    assert_eq!(h_basic.boundaries(), h_value.boundaries());
}

#[test]
fn expected_frequencies_and_wavelets_agree_across_models() {
    let relations = equivalent_relations();
    let reference = relations[0].expected_frequencies();
    for rel in &relations {
        let freqs = rel.expected_frequencies();
        for (a, b) in reference.iter().zip(&freqs) {
            assert!((a - b).abs() < 1e-12);
        }
        let syn = build_sse_wavelet(rel, 5).unwrap();
        let reference_syn = build_sse_wavelet(&relations[0], 5).unwrap();
        assert_eq!(syn.indices(), reference_syn.indices());
        assert!(
            (expected_sse(rel, &syn) - expected_sse(&relations[0], &reference_syn)).abs() < 1e-9
        );
    }
}

#[test]
fn induced_value_pdfs_preserve_possible_world_marginals() {
    // For a *genuine* multi-alternative tuple-pdf relation the induced pdfs
    // drop cross-item correlations but must preserve every per-item marginal.
    let tuple = TuplePdfModel::from_alternatives(
        6,
        [
            vec![(0, 0.5), (1, 0.3)],
            vec![(1, 0.25), (2, 0.5), (3, 0.25)],
            vec![(4, 0.4), (5, 0.6)],
            vec![(0, 0.2), (5, 0.2)],
        ],
    )
    .unwrap();
    let rel: ProbabilisticRelation = tuple.clone().into();
    let worlds = PossibleWorlds::enumerate(&rel).unwrap();
    let induced = tuple.induced_value_pdfs();
    for i in 0..6 {
        for v in [0.0, 1.0, 2.0] {
            let brute = worlds.expectation(|w| if (w[i] - v).abs() < 1e-12 { 1.0 } else { 0.0 });
            assert!(
                (induced.item(i).probability_of(v) - brute).abs() < 1e-12,
                "item {i}, value {v}"
            );
        }
    }
}

#[test]
fn deterministic_relations_reduce_to_classical_synopses() {
    // Running the probabilistic pipeline on certain data must give the
    // classical deterministic synopses: zero error at full resolution.
    let freqs = deterministic_zipf(32, 64.0, 1.0, 5);
    let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
    for metric in [ErrorMetric::Sse, ErrorMetric::Sae, ErrorMetric::Mae] {
        let h = build_histogram(&rel, metric, 32).unwrap();
        assert!(expected_cost(&rel, metric, &h) < 1e-9, "{metric}");
    }
    let w = build_sse_wavelet(&rel, 32).unwrap();
    assert!(expected_sse(&rel, &w) < 1e-9);
}

#[test]
fn oracle_for_metric_covers_every_metric_and_is_consistent_with_dp() {
    let rel = &equivalent_relations()[1];
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::Ssre { c: 1.0 },
        ErrorMetric::Sae,
        ErrorMetric::Sare { c: 1.0 },
        ErrorMetric::Mae,
        ErrorMetric::Mare { c: 1.0 },
    ] {
        let oracle = oracle_for_metric(rel, metric);
        let h = optimal_histogram(&oracle, 3).unwrap();
        assert_eq!(h.num_buckets(), 3);
        assert!(h.buckets().iter().all(|b| b.cost.is_finite()));
    }
}
