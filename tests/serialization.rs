//! Serde round-trip tests for every public synopsis and model type: a
//! downstream system must be able to persist relations and synopses (e.g. in
//! a catalog) and get byte-identical semantics back.

use probsyn::histogram::build_histogram;
use probsyn::prelude::*;
use probsyn::wavelet::{build_restricted_wavelet, WaveletSynopsis};

fn workload() -> ProbabilisticRelation {
    tpch_like(TpchLikeConfig {
        n: 32,
        tuples: 96,
        max_alternatives: 3,
        locality_window: 4,
        skew: 0.5,
        seed: 77,
    })
    .into()
}

#[test]
fn relations_round_trip_through_json() {
    let relations: Vec<ProbabilisticRelation> = vec![
        mystiq_like(MystiqLikeConfig {
            n: 24,
            avg_tuples_per_item: 2.0,
            skew: 0.5,
            seed: 3,
        })
        .into(),
        workload(),
        zipf_value_pdf(ValuePdfConfig {
            n: 24,
            max_entries_per_item: 3,
            max_frequency: 8.0,
            skew: 1.0,
            zero_mass: 0.2,
            seed: 4,
        })
        .into(),
    ];
    for rel in relations {
        let json = serde_json::to_string(&rel).unwrap();
        let back: ProbabilisticRelation = serde_json::from_str(&json).unwrap();
        assert_eq!(rel, back);
        // Semantics preserved: same expected frequencies and moments.
        assert_eq!(rel.expected_frequencies(), back.expected_frequencies());
    }
}

#[test]
fn histograms_round_trip_and_keep_estimates() {
    let rel = workload();
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::Sare { c: 0.5 },
        ErrorMetric::Mae,
    ] {
        let h = build_histogram(&rel, metric, 6).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        for i in 0..rel.n() {
            assert_eq!(h.estimate(i), back.estimate(i));
        }
        assert_eq!(
            expected_cost(&rel, metric, &h),
            expected_cost(&rel, metric, &back)
        );
    }
}

#[test]
fn wavelet_synopses_round_trip_and_keep_reconstructions() {
    let rel = workload();
    let greedy = build_sse_wavelet(&rel, 8).unwrap();
    let restricted = build_restricted_wavelet(&rel, ErrorMetric::Sae, 6)
        .unwrap()
        .synopsis;
    for syn in [greedy, restricted] {
        let json = serde_json::to_string(&syn).unwrap();
        let back: WaveletSynopsis = serde_json::from_str(&json).unwrap();
        assert_eq!(syn, back);
        assert_eq!(syn.reconstruct(), back.reconstruct());
    }
}

#[test]
fn versioned_histogram_envelope_round_trips() {
    let rel = workload();
    for metric in [ErrorMetric::Sse, ErrorMetric::Mae] {
        let h = build_histogram(&rel, metric, 6).unwrap();
        let json = h.to_json().unwrap();
        assert!(json.contains("\"version\":1"));
        let back = Histogram::from_json(&json).unwrap();
        assert_eq!(h, back);
        assert_eq!(h.estimates(), back.estimates());
    }
}

#[test]
fn truncated_histogram_json_is_rejected_without_panicking() {
    let rel = workload();
    let h = build_histogram(&rel, ErrorMetric::Sae, 6).unwrap();
    let json = h.to_json().unwrap();
    // Truncation at every prefix length must produce a PdsError, not a panic
    // (sampled coarsely plus the interesting boundary cases).
    let mut cuts: Vec<usize> = (0..json.len()).step_by(17).collect();
    cuts.extend([0, 1, json.len() / 2, json.len() - 1]);
    for cut in cuts {
        let err = Histogram::from_json(&json[..cut]).unwrap_err();
        assert!(
            matches!(err, PdsError::InvalidParameter { .. }),
            "cut={cut}"
        );
    }
    // Trailing garbage is rejected too.
    assert!(Histogram::from_json(&format!("{json}garbage")).is_err());
    assert!(Histogram::from_json("").is_err());
    assert!(Histogram::from_json("not json at all").is_err());
}

#[test]
fn version_skew_is_rejected_with_a_descriptive_error() {
    let rel = workload();
    let h = build_histogram(&rel, ErrorMetric::Sae, 4).unwrap();
    let json = h.to_json().unwrap();
    let skewed = json.replacen("\"version\":1", "\"version\":99", 1);
    let err = Histogram::from_json(&skewed).unwrap_err();
    assert!(err.to_string().contains("version 99"), "{err}");
}

#[test]
fn bucket_count_mismatch_is_rejected() {
    let rel = workload();
    let h = build_histogram(&rel, ErrorMetric::Sae, 4).unwrap();
    let json = h.to_json().unwrap();
    let mismatched = json.replacen("\"num_buckets\":4", "\"num_buckets\":3", 1);
    let err = Histogram::from_json(&mismatched).unwrap_err();
    assert!(err.to_string().contains("buckets"), "{err}");
}

#[test]
fn non_finite_costs_are_rejected_on_both_directions() {
    // Serialising a histogram that carries a NaN cost fails cleanly ...
    let broken = Histogram::new(
        2,
        vec![Bucket {
            start: 0,
            end: 1,
            representative: 1.0,
            cost: f64::NAN,
        }],
    )
    .unwrap();
    let err = broken.to_json().unwrap_err();
    assert!(matches!(err, PdsError::InvalidParameter { .. }), "{err}");

    // ... and so does parsing an envelope whose cost field is not a number.
    let bad = r#"{"version":1,"num_buckets":1,"histogram":{"n":2,"buckets":[{"start":0,"end":1,"representative":1.0,"cost":null}],"total_cost":0.0}}"#;
    assert!(Histogram::from_json(bad).is_err());
    let bad = r#"{"version":1,"num_buckets":1,"histogram":{"n":2,"buckets":[{"start":0,"end":1,"representative":1.0,"cost":"NaN"}],"total_cost":0.0}}"#;
    assert!(Histogram::from_json(bad).is_err());
}

#[test]
fn structurally_corrupt_histograms_are_rejected() {
    // Buckets that do not partition the domain.
    let gap = r#"{"version":1,"num_buckets":2,"histogram":{"n":4,"buckets":[{"start":0,"end":1,"representative":1.0,"cost":0.0},{"start":3,"end":3,"representative":1.0,"cost":0.0}],"total_cost":0.0}}"#;
    assert!(Histogram::from_json(gap).is_err());
    // Negative cost.
    let negative = r#"{"version":1,"num_buckets":1,"histogram":{"n":2,"buckets":[{"start":0,"end":1,"representative":1.0,"cost":-3.0}],"total_cost":-3.0}}"#;
    assert!(Histogram::from_json(negative).is_err());
    // Recorded total disagreeing with the bucket sum.
    let bad_total = r#"{"version":1,"num_buckets":1,"histogram":{"n":2,"buckets":[{"start":0,"end":1,"representative":1.0,"cost":1.0}],"total_cost":9.0}}"#;
    assert!(Histogram::from_json(bad_total).is_err());
}

#[test]
fn error_metrics_round_trip() {
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::Ssre { c: 0.25 },
        ErrorMetric::Sae,
        ErrorMetric::Sare { c: 2.0 },
        ErrorMetric::Mae,
        ErrorMetric::Mare { c: 0.5 },
    ] {
        let json = serde_json::to_string(&metric).unwrap();
        let back: ErrorMetric = serde_json::from_str(&json).unwrap();
        assert_eq!(metric, back);
    }
}
