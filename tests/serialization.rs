//! Serde round-trip tests for every public synopsis and model type: a
//! downstream system must be able to persist relations and synopses (e.g. in
//! a catalog) and get byte-identical semantics back.

use probsyn::histogram::build_histogram;
use probsyn::prelude::*;
use probsyn::wavelet::{build_restricted_wavelet, WaveletSynopsis};

fn workload() -> ProbabilisticRelation {
    tpch_like(TpchLikeConfig {
        n: 32,
        tuples: 96,
        max_alternatives: 3,
        locality_window: 4,
        skew: 0.5,
        seed: 77,
    })
    .into()
}

#[test]
fn relations_round_trip_through_json() {
    let relations: Vec<ProbabilisticRelation> = vec![
        mystiq_like(MystiqLikeConfig {
            n: 24,
            avg_tuples_per_item: 2.0,
            skew: 0.5,
            seed: 3,
        })
        .into(),
        workload(),
        zipf_value_pdf(ValuePdfConfig {
            n: 24,
            max_entries_per_item: 3,
            max_frequency: 8.0,
            skew: 1.0,
            zero_mass: 0.2,
            seed: 4,
        })
        .into(),
    ];
    for rel in relations {
        let json = serde_json::to_string(&rel).unwrap();
        let back: ProbabilisticRelation = serde_json::from_str(&json).unwrap();
        assert_eq!(rel, back);
        // Semantics preserved: same expected frequencies and moments.
        assert_eq!(rel.expected_frequencies(), back.expected_frequencies());
    }
}

#[test]
fn histograms_round_trip_and_keep_estimates() {
    let rel = workload();
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::Sare { c: 0.5 },
        ErrorMetric::Mae,
    ] {
        let h = build_histogram(&rel, metric, 6).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        for i in 0..rel.n() {
            assert_eq!(h.estimate(i), back.estimate(i));
        }
        assert_eq!(
            expected_cost(&rel, metric, &h),
            expected_cost(&rel, metric, &back)
        );
    }
}

#[test]
fn wavelet_synopses_round_trip_and_keep_reconstructions() {
    let rel = workload();
    let greedy = build_sse_wavelet(&rel, 8).unwrap();
    let restricted = build_restricted_wavelet(&rel, ErrorMetric::Sae, 6)
        .unwrap()
        .synopsis;
    for syn in [greedy, restricted] {
        let json = serde_json::to_string(&syn).unwrap();
        let back: WaveletSynopsis = serde_json::from_str(&json).unwrap();
        assert_eq!(syn, back);
        assert_eq!(syn.reconstruct(), back.reconstruct());
    }
}

#[test]
fn error_metrics_round_trip() {
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::Ssre { c: 0.25 },
        ErrorMetric::Sae,
        ErrorMetric::Sare { c: 2.0 },
        ErrorMetric::Mae,
        ErrorMetric::Mare { c: 0.5 },
    ] {
        let json = serde_json::to_string(&metric).unwrap();
        let back: ErrorMetric = serde_json::from_str(&json).unwrap();
        assert_eq!(metric, back);
    }
}
