//! Reproduces Example 1 of the paper: the possible-worlds tables of the same
//! three-item input expressed in the basic, tuple pdf and value pdf models,
//! together with the expected frequencies quoted in the text.
//!
//! ```text
//! cargo run --release -p pds-bench --bin example1
//! ```

use pds_bench::report::{fmt, Table};
use pds_core::model::{BasicModel, ProbabilisticRelation, TuplePdfModel, ValuePdf, ValuePdfModel};
use pds_core::worlds::PossibleWorlds;

fn describe(name: &str, relation: &ProbabilisticRelation) {
    let worlds = PossibleWorlds::enumerate(relation).expect("tiny example");
    // Collect distinct frequency vectors with merged probabilities.
    let mut distinct: Vec<(Vec<f64>, f64)> = Vec::new();
    for (w, p) in worlds.worlds() {
        match distinct.iter_mut().find(|(v, _)| v == w) {
            Some(entry) => entry.1 += p,
            None => distinct.push((w.clone(), *p)),
        }
    }
    distinct.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let mut table = Table::new(
        format!(
            "Example 1 — {} model ({} distinct worlds)",
            name,
            distinct.len()
        ),
        &["world (g1,g2,g3)", "probability"],
    );
    for (w, p) in &distinct {
        let desc = format!("({}, {}, {})", w[0], w[1], w[2]);
        table.push_row(vec![desc, fmt(*p)]);
    }
    table.emit(None);

    let freqs = relation.expected_frequencies();
    println!(
        "expected frequencies: E[g1] = {}, E[g2] = {}, E[g3] = {}\n",
        fmt(freqs[0]),
        fmt(freqs[1]),
        fmt(freqs[2])
    );
}

fn main() {
    // <1, 1/2>, <2, 1/3>, <2, 1/4>, <3, 1/2> (items re-indexed to 0..2).
    let basic: ProbabilisticRelation =
        BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
            .unwrap()
            .into();
    // <(1, 1/2), (2, 1/3)>, <(2, 1/4), (3, 1/2)>.
    let tuple: ProbabilisticRelation = TuplePdfModel::from_alternatives(
        3,
        [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
    )
    .unwrap()
    .into();
    // <1: (1, 1/2)>, <2: (1, 1/3), (2, 1/4)>, <3: (1, 1/2)>.
    let value: ProbabilisticRelation = ValuePdfModel::from_sparse(
        3,
        [
            (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
            (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()),
            (2, ValuePdf::new([(1.0, 0.5)]).unwrap()),
        ],
    )
    .unwrap()
    .into();

    describe("basic", &basic);
    describe("tuple pdf", &tuple);
    describe("value pdf", &value);
}
