//! Ablation A1 (Section 3.5, Theorem 5): the `(1 + ε)`-approximate histogram
//! construction versus the exact dynamic program — solution quality, bucket
//! cost evaluations and wall-clock time as ε varies.
//!
//! ```text
//! cargo run --release -p pds-bench --bin ablation_approx
//! cargo run --release -p pds-bench --bin ablation_approx -- --n 4096 --b 64
//! cargo run --release -p pds-bench --bin ablation_approx -- --n 1024 --assert-fewer-evals
//! ```
//!
//! Flags: `--n <domain>`, `--b <buckets>`, `--metric {sse|ssre|sae|sare}`,
//! `--c <sanity bound>`, `--seed <seed>`, `--csv <dir>`, and
//! `--assert-fewer-evals` (exit non-zero unless the approximate DP performs
//! strictly fewer bucket evaluations than the exact DP at every ε — the
//! regression gate CI runs).

use std::path::PathBuf;
use std::time::Instant;

use pds_bench::movie_workload;
use pds_bench::report::{fmt, Args, Table};
use pds_core::metrics::ErrorMetric;
use pds_histogram::approx::approx_histogram;
use pds_histogram::oracle::oracle_for_metric;
use pds_histogram::DpTables;

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 4_096usize);
    let b = args.get_or("b", 16usize);
    let c = args.get_or("c", 0.5f64);
    let seed = args.get_or("seed", 42u64);
    let metric_name = args.get("metric").unwrap_or("ssre");
    let csv_dir = args.get("csv");
    let assert_fewer = args.has_flag("assert-fewer-evals");
    let metric = ErrorMetric::from_name(metric_name, c).expect("known metric");

    let relation = movie_workload(n, seed);
    let oracle = oracle_for_metric(&relation, metric);

    // Exact DP reference.
    let start = Instant::now();
    let tables = DpTables::build(&oracle, b).expect("valid parameters");
    let exact_cost = tables.optimal_cost(b);
    let exact_seconds = start.elapsed().as_secs_f64();
    let exact_evals = tables.bucket_evaluations();

    let mut table = Table::new(
        format!("Ablation A1: approximate vs exact DP, {metric}, n = {n}, B = {b}"),
        &[
            "method",
            "epsilon",
            "cost",
            "cost/optimal",
            "bucket_evals",
            "cache_hits",
            "pruned",
            "retained",
            "seconds",
        ],
    );
    table.push_row(vec![
        "exact-dp".into(),
        "-".into(),
        fmt(exact_cost),
        fmt(1.0),
        exact_evals.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt(exact_seconds),
    ]);

    let mut violations = Vec::new();
    for eps in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let start = Instant::now();
        let approx = approx_histogram(&oracle, b, eps).expect("valid parameters");
        let seconds = start.elapsed().as_secs_f64();
        let cost = approx.histogram.total_cost();
        if cost > (1.0 + eps) * exact_cost + 1e-9 {
            violations.push(format!(
                "eps={eps}: cost {cost} exceeds (1+eps) * {exact_cost}"
            ));
        }
        if approx.stats.bucket_evaluations >= exact_evals {
            violations.push(format!(
                "eps={eps}: {} bucket evaluations, not fewer than the exact DP's {exact_evals}",
                approx.stats.bucket_evaluations
            ));
        }
        table.push_row(vec![
            "approx".into(),
            fmt(eps),
            fmt(cost),
            fmt(cost / exact_cost.max(f64::MIN_POSITIVE)),
            approx.stats.bucket_evaluations.to_string(),
            approx.stats.cache_hits.to_string(),
            approx.stats.pruned_candidates.to_string(),
            approx.stats.retained_candidates.to_string(),
            fmt(seconds),
        ]);
    }

    let csv = csv_dir.map(|d| PathBuf::from(d).join("ablation_approx.csv"));
    table.emit(csv.as_deref());

    if assert_fewer {
        if violations.is_empty() {
            println!("assert-fewer-evals: ok (every epsilon beats the exact DP's {exact_evals} evaluations)");
        } else {
            for v in &violations {
                eprintln!("assert-fewer-evals: FAILED: {v}");
            }
            std::process::exit(1);
        }
    }
}
