//! Regenerates **Figure 2** of the paper: histogram quality (error %) as a
//! function of the number of buckets, comparing the optimal probabilistic
//! construction against the expectation and sampled-world heuristics, for
//! every cumulative error metric.
//!
//! ```text
//! # one panel (reduced scale, n = 2048, B <= 200)
//! cargo run --release -p pds-bench --bin figure2 -- --metric ssre --c 0.5
//!
//! # all six panels
//! cargo run --release -p pds-bench --bin figure2 -- --metric all
//!
//! # the paper's scale (n = 10^4, B <= 1000; this is the O(B n^2) DP — slow)
//! cargo run --release -p pds-bench --bin figure2 -- --metric all --full
//! ```
//!
//! Flags: `--metric {ssre|sse|sare|sae|all}`, `--c <sanity bound>`,
//! `--n <domain size>`, `--bmax <max buckets>`, `--points <curve points>`,
//! `--samples <sampled worlds>`, `--seed <seed>`, `--data {movie|tpch}`,
//! `--csv <dir>`, `--full`.

use std::path::PathBuf;

use pds_bench::report::{fmt, Args, Table};
use pds_bench::{budget_ladder, histogram_quality_curve, workload_by_name, Scale};
use pds_core::metrics::ErrorMetric;

fn run_panel(
    panel: &str,
    metric: ErrorMetric,
    relation: &pds_core::model::ProbabilisticRelation,
    budgets: &[usize],
    samples: usize,
    seed: u64,
    csv_dir: Option<&str>,
) {
    let rows = histogram_quality_curve(relation, metric, budgets, samples, seed);
    let mut headers = vec![
        "buckets".to_string(),
        "probabilistic".to_string(),
        "expectation".to_string(),
    ];
    for i in 0..samples {
        headers.push(format!("sampled_world_{}", i + 1));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("Figure 2{panel}: {metric}, n = {}, error %", relation.n()),
        &header_refs,
    );
    for row in rows {
        let mut cells = vec![
            row.buckets.to_string(),
            fmt(row.probabilistic),
            fmt(row.expectation),
        ];
        cells.extend(row.sampled.iter().map(|&s| fmt(s)));
        table.push_row(cells);
    }
    let csv =
        csv_dir.map(|d| PathBuf::from(d).join(format!("figure2{panel}_{}.csv", metric.name())));
    table.emit(csv.as_deref());
}

fn main() {
    let args = Args::from_env();
    let scale = Scale::from_flag(args.has_flag("full"));
    let n = args.get_or("n", scale.histogram_n());
    let b_max = args.get_or("bmax", scale.histogram_b_max()).min(n);
    let points = args.get_or("points", 10usize);
    let samples = args.get_or("samples", 3usize);
    let seed = args.get_or("seed", 42u64);
    let c = args.get_or("c", 0.5f64);
    let data = args.get("data").unwrap_or("movie");
    let metric_name = args.get("metric").unwrap_or("all").to_string();
    let csv_dir = args.get("csv");

    let relation = workload_by_name(data, n, seed).unwrap_or_else(|| {
        eprintln!("unknown --data {data}; expected movie or tpch");
        std::process::exit(1);
    });
    let budgets = budget_ladder(b_max, points);

    println!(
        "Figure 2 reproduction — workload {data} ({} model, n = {n}, m = {}), B up to {b_max}\n",
        relation.model_name(),
        relation.m()
    );

    // The six panels of Figure 2, in the paper's order.
    let panels: Vec<(&str, ErrorMetric)> = vec![
        ("a", ErrorMetric::Ssre { c: 0.5 }),
        ("b", ErrorMetric::Ssre { c: 1.0 }),
        ("c", ErrorMetric::Sse),
        ("d", ErrorMetric::Sare { c: 0.5 }),
        ("e", ErrorMetric::Sare { c: 1.0 }),
        ("f", ErrorMetric::Sae),
    ];

    if metric_name == "all" {
        for (panel, metric) in panels {
            run_panel(
                &format!("({panel})"),
                metric,
                &relation,
                &budgets,
                samples,
                seed,
                csv_dir,
            );
        }
    } else {
        let metric = ErrorMetric::from_name(&metric_name, c).unwrap_or_else(|| {
            eprintln!("unknown --metric {metric_name}");
            std::process::exit(1);
        });
        run_panel("", metric, &relation, &budgets, samples, seed, csv_dir);
    }
}
