//! Regenerates **Figure 3** of the paper: histogram construction time as a
//! function of (a) the domain size `n` and (b) the number of buckets `B`,
//! under the sum-squared-relative-error objective.
//!
//! ```text
//! # both sweeps at reduced scale
//! cargo run --release -p pds-bench --bin figure3
//!
//! # the paper's scale (n up to 30,000 at B = 200; B up to 1000 at n = 10^4)
//! cargo run --release -p pds-bench --bin figure3 -- --full
//! ```
//!
//! Flags: `--sweep {n|b|both}`, `--c <sanity bound>`, `--seed <seed>`,
//! `--csv <dir>`, `--full`.

use std::path::PathBuf;

use pds_bench::report::{fmt, Args, Table};
use pds_bench::{movie_workload, time_histogram_construction, Scale};
use pds_core::metrics::ErrorMetric;

fn main() {
    let args = Args::from_env();
    let scale = Scale::from_flag(args.has_flag("full"));
    let seed = args.get_or("seed", 42u64);
    let c = args.get_or("c", 0.5f64);
    let sweep = args.get("sweep").unwrap_or("both").to_string();
    let csv_dir = args.get("csv");
    let metric = ErrorMetric::Ssre { c };

    // Figure 3(a): time vs n at fixed B.
    if sweep == "n" || sweep == "both" {
        let (sizes, b): (Vec<usize>, usize) = match scale {
            Scale::Reduced => (vec![512, 1024, 2048, 3072, 4096], 50),
            Scale::Paper => (
                vec![2_500, 5_000, 10_000, 15_000, 20_000, 25_000, 30_000],
                200,
            ),
        };
        let mut table = Table::new(
            format!("Figure 3(a): {metric} construction time, B = {b}"),
            &["n", "seconds"],
        );
        for &n in &sizes {
            let relation = movie_workload(n, seed);
            let row = time_histogram_construction(&relation, metric, b);
            table.push_row(vec![n.to_string(), fmt(row.seconds)]);
            eprintln!("  n = {n}: {:.3} s", row.seconds);
        }
        let csv = csv_dir.map(|d| PathBuf::from(d).join("figure3a.csv"));
        table.emit(csv.as_deref());
    }

    // Figure 3(b): time vs B at fixed n.
    if sweep == "b" || sweep == "both" {
        let (n, budgets): (usize, Vec<usize>) = match scale {
            Scale::Reduced => (2_048, vec![25, 50, 100, 150, 200]),
            Scale::Paper => (10_000, vec![100, 200, 400, 600, 800, 1_000]),
        };
        let relation = movie_workload(n, seed);
        let mut table = Table::new(
            format!("Figure 3(b): {metric} construction time, n = {n}"),
            &["buckets", "seconds"],
        );
        for &b in &budgets {
            let row = time_histogram_construction(&relation, metric, b);
            table.push_row(vec![b.to_string(), fmt(row.seconds)]);
            eprintln!("  B = {b}: {:.3} s", row.seconds);
        }
        let csv = csv_dir.map(|d| PathBuf::from(d).join("figure3b.csv"));
        table.emit(csv.as_deref());
    }
}
