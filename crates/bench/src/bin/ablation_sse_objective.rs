//! Ablation A2: the paper's equation-(5) SSE bucket objective (expected
//! per-world sample variance) versus the literal Section 2.3 objective
//! (fixed-representative expected SSE), and — for the tuple-pdf model — the
//! paper's prefix-array covariance formula versus the exact covariance.
//! See DESIGN.md, "Faithfulness notes".
//!
//! ```text
//! cargo run --release -p pds-bench --bin ablation_sse_objective
//! ```
//!
//! Flags: `--n <domain>`, `--b <buckets>`, `--seed <seed>`, `--csv <dir>`.

use std::path::PathBuf;

use pds_bench::report::{fmt, Args, Table};
use pds_bench::{movie_workload, tpch_workload};
use pds_core::metrics::ErrorMetric;
use pds_core::model::ProbabilisticRelation;
use pds_histogram::evaluate::expected_cost;
use pds_histogram::optimal_histogram;
use pds_histogram::oracle::sse::{SseObjective, SseOracle, TupleSseMode};
use pds_histogram::sse_paper_cost;

fn analyse(name: &str, relation: &ProbabilisticRelation, b: usize, table: &mut Table) {
    let configs = [
        (
            "eq5 / prefix-arrays",
            SseObjective::PaperEq5,
            TupleSseMode::PrefixArrays,
        ),
        (
            "eq5 / exact-covariance",
            SseObjective::PaperEq5,
            TupleSseMode::Exact,
        ),
        (
            "fixed-representative",
            SseObjective::FixedRepresentative,
            TupleSseMode::PrefixArrays,
        ),
    ];
    for (label, objective, mode) in configs {
        let oracle = SseOracle::with_tuple_mode(relation, objective, mode);
        let histogram = optimal_histogram(&oracle, b).expect("valid parameters");
        // Score the bucketing under both evaluation objectives so the
        // trade-off is visible regardless of which objective built it.
        let eq5 = sse_paper_cost(relation, &histogram);
        let fixed = expected_cost(relation, ErrorMetric::Sse, &histogram);
        table.push_row(vec![
            name.into(),
            label.into(),
            b.to_string(),
            fmt(eq5),
            fmt(fixed),
        ]);
    }
}

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 1_024usize);
    let b = args.get_or("b", 32usize);
    let seed = args.get_or("seed", 42u64);
    let csv_dir = args.get("csv");

    let mut table = Table::new(
        format!("Ablation A2: SSE objective variants, n = {n}, B = {b}"),
        &[
            "workload",
            "dp objective",
            "buckets",
            "eq5 cost",
            "fixed-rep cost",
        ],
    );
    analyse("movie (basic)", &movie_workload(n, seed), b, &mut table);
    analyse("tpch (tuple-pdf)", &tpch_workload(n, seed), b, &mut table);

    let csv = csv_dir.map(|d| PathBuf::from(d).join("ablation_sse_objective.csv"));
    table.emit(csv.as_deref());
}
