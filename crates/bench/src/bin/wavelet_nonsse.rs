//! Extension A3 (Section 4.2, Theorem 8): the restricted error-tree dynamic
//! program for non-SSE wavelet thresholding on probabilistic data, compared
//! against naively reusing the SSE (largest expected coefficient) selection
//! under the same non-SSE metric.
//!
//! ```text
//! cargo run --release -p pds-bench --bin wavelet_nonsse
//! ```
//!
//! Flags: `--n <domain>` (kept small; the DP explores O(n²B) states),
//! `--c <sanity bound>`, `--seed <seed>`, `--csv <dir>`.

use std::path::PathBuf;

use pds_bench::movie_workload;
use pds_bench::report::{fmt, Args, Table};
use pds_core::metrics::ErrorMetric;
use pds_wavelet::nonsse::{build_restricted_wavelet, expected_wavelet_cost};
use pds_wavelet::sse::build_sse_wavelet;

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 128usize);
    let c = args.get_or("c", 1.0f64);
    let seed = args.get_or("seed", 42u64);
    let csv_dir = args.get("csv");

    let relation = movie_workload(n, seed);
    let metrics = [
        ErrorMetric::Sae,
        ErrorMetric::Sare { c },
        ErrorMetric::Mae,
        ErrorMetric::Mare { c },
    ];

    let mut table = Table::new(
        format!("A3: restricted non-SSE wavelet DP vs SSE selection, n = {n}"),
        &[
            "metric",
            "coefficients",
            "restricted DP",
            "SSE selection",
            "improvement %",
        ],
    );
    for metric in metrics {
        for b in [4usize, 8, 16, 32] {
            let restricted = build_restricted_wavelet(&relation, metric, b).expect("valid");
            let sse_selection = build_sse_wavelet(&relation, b).expect("valid");
            let sse_cost = expected_wavelet_cost(&relation, metric, &sse_selection);
            let improvement = if sse_cost > 0.0 {
                100.0 * (sse_cost - restricted.objective) / sse_cost
            } else {
                0.0
            };
            table.push_row(vec![
                metric.to_string(),
                b.to_string(),
                fmt(restricted.objective),
                fmt(sse_cost),
                fmt(improvement),
            ]);
        }
    }

    let csv = csv_dir.map(|d| PathBuf::from(d).join("wavelet_nonsse.csv"));
    table.emit(csv.as_deref());
}
