//! Regenerates **Figure 4** of the paper: SSE wavelet synopsis quality
//! (retained-energy error %) as a function of the number of coefficients,
//! comparing the probabilistic (expected-coefficient) selection against
//! sampled-world selections, on the movie-like and TPC-H-like workloads.
//!
//! ```text
//! cargo run --release -p pds-bench --bin figure4                 # both panels
//! cargo run --release -p pds-bench --bin figure4 -- --data movie # panel (a)
//! cargo run --release -p pds-bench --bin figure4 -- --data tpch  # panel (b)
//! ```
//!
//! Flags: `--data {movie|tpch|both}`, `--n <domain>`, `--bmax <coefficients>`,
//! `--points <curve points>`, `--samples <sampled worlds>`, `--seed <seed>`,
//! `--csv <dir>`.

use std::path::PathBuf;

use pds_bench::report::{fmt, Args, Table};
use pds_bench::{budget_ladder, wavelet_quality_curve, workload_by_name, Scale};

#[allow(clippy::too_many_arguments)]
fn run_panel(
    panel: &str,
    data: &str,
    n: usize,
    b_max: usize,
    points: usize,
    samples: usize,
    seed: u64,
    csv_dir: Option<&str>,
) {
    let relation = workload_by_name(data, n, seed).expect("known workload");
    // Include the empty synopsis (100% error) so the curve starts where the
    // paper's does.
    let mut budgets = vec![0];
    budgets.extend(budget_ladder(b_max, points));
    let rows = wavelet_quality_curve(&relation, &budgets, samples, seed);
    let mut headers = vec!["coefficients".to_string(), "probabilistic".to_string()];
    for i in 0..samples {
        headers.push(format!("sampled_world_{}", i + 1));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!(
            "Figure 4{panel}: SSE wavelets, {data} data ({} model, n = {n}), error %",
            relation.model_name()
        ),
        &header_refs,
    );
    for row in rows {
        let mut cells = vec![row.coefficients.to_string(), fmt(row.probabilistic)];
        cells.extend(row.sampled.iter().map(|&s| fmt(s)));
        table.push_row(cells);
    }
    let csv = csv_dir.map(|d| PathBuf::from(d).join(format!("figure4{panel}_{data}.csv")));
    table.emit(csv.as_deref());
}

fn main() {
    let args = Args::from_env();
    let scale = Scale::from_flag(args.has_flag("full"));
    let n = args.get_or("n", scale.wavelet_n());
    let points = args.get_or("points", 12usize);
    let samples = args.get_or("samples", 3usize);
    let seed = args.get_or("seed", 42u64);
    let data = args.get("data").unwrap_or("both").to_string();
    let csv_dir = args.get("csv");

    println!("Figure 4 reproduction — n = {n} (2^15 = 32768 in the paper)\n");
    if data == "movie" || data == "both" {
        let b_max = args.get_or("bmax", scale.wavelet_b_max(true));
        run_panel("(a)", "movie", n, b_max, points, samples, seed, csv_dir);
    }
    if data == "tpch" || data == "both" {
        let b_max = args.get_or("bmax", scale.wavelet_b_max(false));
        run_panel("(b)", "tpch", n, b_max, points, samples, seed, csv_dir);
    }
}
