//! The experimental workloads of Section 5, at paper scale and at a reduced
//! default scale suitable for quick regeneration of every figure.
//!
//! * the **movie** workload stands in for the MystiQ movie-link data
//!   (basic model, ~127k tuples over ~27.7k items in the paper);
//! * the **tpch** workload stands in for the MayBMS uncertain TPC-H
//!   `lineitem-partkey` relation (tuple pdf model with uniform alternatives).
//!
//! See DESIGN.md ("Data substitutions") for why these generators preserve the
//! behaviour the experiments exercise.

use pds_core::generator::{mystiq_like, tpch_like, MystiqLikeConfig, TpchLikeConfig};
use pds_core::model::ProbabilisticRelation;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale: every figure regenerates in seconds to a few minutes on
    /// a laptop.  This is the default.
    Reduced,
    /// The paper's scale (n = 10^4 histogram items, n = 2^15 wavelet items,
    /// up to 1000 buckets).  The histogram DP is O(Bn²); expect hours.
    Paper,
}

impl Scale {
    /// Parses `--full` style flags.
    pub fn from_flag(full: bool) -> Self {
        if full {
            Scale::Paper
        } else {
            Scale::Reduced
        }
    }

    /// Histogram domain size for Figure 2 / Figure 3.
    pub fn histogram_n(self) -> usize {
        match self {
            Scale::Reduced => 2_048,
            Scale::Paper => 10_000,
        }
    }

    /// Largest bucket budget for Figure 2.
    pub fn histogram_b_max(self) -> usize {
        match self {
            Scale::Reduced => 200,
            Scale::Paper => 1_000,
        }
    }

    /// Wavelet domain size for Figure 4 (the paper uses n = 2^15).
    pub fn wavelet_n(self) -> usize {
        match self {
            Scale::Reduced => 1 << 15,
            Scale::Paper => 1 << 15,
        }
    }

    /// Largest coefficient budget for Figure 4.
    pub fn wavelet_b_max(self, movie: bool) -> usize {
        match (self, movie) {
            (_, true) => 5_000,
            (_, false) => 1_000,
        }
    }
}

/// The movie-link (MystiQ-like, basic model) workload.
pub fn movie_workload(n: usize, seed: u64) -> ProbabilisticRelation {
    mystiq_like(MystiqLikeConfig {
        n,
        avg_tuples_per_item: 4.6,
        skew: 0.8,
        seed,
    })
    .into()
}

/// The uncertain TPC-H (MayBMS-like, tuple pdf model) workload.
///
/// Line items concentrate on popular part keys (Zipf-skewed centres with a
/// narrow locality window), giving the skewed frequency vector the paper's
/// synthetic data exhibits.
pub fn tpch_workload(n: usize, seed: u64) -> ProbabilisticRelation {
    tpch_like(TpchLikeConfig {
        n,
        tuples: n * 4,
        max_alternatives: 4,
        locality_window: 8,
        skew: 1.0,
        seed,
    })
    .into()
}

/// Named workload selector used by the figure binaries.
pub fn workload_by_name(name: &str, n: usize, seed: u64) -> Option<ProbabilisticRelation> {
    match name {
        "movie" | "mystiq" => Some(movie_workload(n, seed)),
        "tpch" | "maybms" => Some(tpch_workload(n, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_expose_paper_parameters() {
        assert_eq!(Scale::Paper.histogram_n(), 10_000);
        assert_eq!(Scale::Paper.histogram_b_max(), 1_000);
        assert_eq!(Scale::Reduced.wavelet_n(), 1 << 15);
        assert_eq!(Scale::from_flag(true), Scale::Paper);
        assert_eq!(Scale::from_flag(false), Scale::Reduced);
        assert_eq!(Scale::Paper.wavelet_b_max(true), 5_000);
        assert_eq!(Scale::Paper.wavelet_b_max(false), 1_000);
    }

    #[test]
    fn workloads_have_the_requested_model_and_size() {
        let movie = movie_workload(256, 1);
        assert_eq!(movie.model_name(), "basic");
        assert_eq!(movie.n(), 256);
        let tpch = tpch_workload(256, 1);
        assert_eq!(tpch.model_name(), "tuple-pdf");
        assert_eq!(tpch.n(), 256);
        assert!(workload_by_name("movie", 64, 0).is_some());
        assert!(workload_by_name("maybms", 64, 0).is_some());
        assert!(workload_by_name("bogus", 64, 0).is_none());
    }
}
