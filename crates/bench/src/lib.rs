//! # pds-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! experimental evaluation (Section 5), plus the ablation studies listed in
//! DESIGN.md.  See EXPERIMENTS.md for the per-figure commands and the
//! paper-vs-measured comparison.
//!
//! Binaries (all accept `--help`-free simple flags; see DESIGN.md §5):
//!
//! * `example1` — the possible-worlds tables of Example 1;
//! * `figure2`  — histogram error % vs. number of buckets, per metric;
//! * `figure3`  — histogram construction time vs. `n` and vs. `B`;
//! * `figure4`  — wavelet error % vs. number of coefficients;
//! * `ablation_approx` — `(1+ε)`-approximate vs. exact DP;
//! * `ablation_sse_objective` — equation-(5) vs. fixed-representative SSE;
//! * `wavelet_nonsse` — restricted non-SSE wavelet DP vs. SSE thresholding.
//!
//! Criterion benches: `histogram_time`, `wavelet_time`, `oracle_cost`,
//! `approx_time`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod curves;
pub mod report;
pub mod workloads;

pub use curves::{
    budget_ladder, histogram_quality_curve, time_histogram_construction, wavelet_quality_curve,
    QualityRow, TimingRow, WaveletRow,
};
pub use report::{Args, Table};
pub use workloads::{movie_workload, tpch_workload, workload_by_name, Scale};
