//! Plain-text and CSV table rendering for the figure binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with an optional CSV dump.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the table to stdout and, if `csv_path` is given, writes the CSV
    /// version there too.
    pub fn emit(&self, csv_path: Option<&Path>) {
        print!("{}", self.to_text());
        if let Some(path) = csv_path {
            if let Some(parent) = path.parent() {
                let _ = fs::create_dir_all(parent);
            }
            if let Err(e) = fs::write(path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(csv written to {})", path.display());
            }
        }
        println!();
    }
}

/// Formats a float with three significant decimals, as used in the tables.
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

/// Tiny command-line flag parser shared by the figure binaries: supports
/// `--key value` pairs and bare `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        out.pairs.push((key.to_string(), iter.next().unwrap()));
                    }
                    _ => out.flags.push(key.to_string()),
                }
            }
        }
        out
    }

    /// The value of `--key value`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--key` was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        t.push_row(vec!["10".into(), "3".into()]);
        let text = t.to_text();
        assert!(text.contains("# demo"));
        assert!(text.contains("bb"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "a,bb");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn args_parse_pairs_and_flags() {
        let args = Args::parse(
            ["--metric", "ssre", "--c", "0.5", "--full", "--n", "128"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.get("metric"), Some("ssre"));
        assert_eq!(args.get_or("c", 1.0), 0.5);
        assert_eq!(args.get_or("n", 0usize), 128);
        assert_eq!(args.get_or("missing", 7usize), 7);
        assert!(args.has_flag("full"));
        assert!(!args.has_flag("quick"));
    }

    #[test]
    fn fmt_rounds_to_three_decimals() {
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(2.0), "2.000");
    }
}
