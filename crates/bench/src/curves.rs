//! Computation of the error-vs-budget curves behind Figures 2 and 4 and the
//! timing sweeps behind Figure 3.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pds_core::metrics::ErrorMetric;
use pds_core::model::{ProbabilisticRelation, ValuePdfModel};
use pds_core::worlds::sample_world;
use pds_histogram::evaluate::{error_percentage, expected_cost_from_pdfs};
use pds_histogram::oracle::sse::{SseObjective, SseOracle, TupleSseMode};
use pds_histogram::oracle::{oracle_for_metric, BucketCostOracle};
use pds_histogram::{DpTables, Histogram};
use pds_wavelet::haar::HaarTransform;
use pds_wavelet::sse::{
    selection_error_percentage, top_indices_by_magnitude, ExpectedCoefficients,
};

/// One row of a Figure 2 style table: the error percentage reached by each
/// method at a given bucket budget.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Bucket budget `B`.
    pub buckets: usize,
    /// Error % of the optimal probabilistic histogram.
    pub probabilistic: f64,
    /// Error % of the expectation heuristic.
    pub expectation: f64,
    /// Error % of each independently sampled-world heuristic run.
    pub sampled: Vec<f64>,
}

/// How histograms are scored, mirroring Section 5.1 of the paper.
enum Evaluator {
    /// The paper's equation-(5) SSE objective (boundary-only).
    PaperSse(SseOracle),
    /// Expected per-item error with the histogram's stored representatives.
    PerItem(ValuePdfModel, ErrorMetric),
}

impl Evaluator {
    fn new(relation: &ProbabilisticRelation, metric: ErrorMetric) -> Self {
        match metric {
            ErrorMetric::Sse => Evaluator::PaperSse(SseOracle::with_tuple_mode(
                relation,
                SseObjective::PaperEq5,
                TupleSseMode::Exact,
            )),
            _ => Evaluator::PerItem(relation.induced_value_pdfs(), metric),
        }
    }

    fn cost(&self, histogram: &Histogram) -> f64 {
        match self {
            Evaluator::PaperSse(oracle) => histogram
                .buckets()
                .iter()
                .map(|b| oracle.bucket(b.start, b.end).cost)
                .sum(),
            Evaluator::PerItem(pdfs, metric) => expected_cost_from_pdfs(pdfs, *metric, histogram),
        }
    }
}

/// Computes the Figure 2 curve: error % (relative to the one-bucket worst
/// case and the n-bucket best case) of the probabilistic optimum, the
/// expectation heuristic and `num_samples` sampled-world heuristics, at every
/// budget in `bucket_counts`.
pub fn histogram_quality_curve(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    bucket_counts: &[usize],
    num_samples: usize,
    seed: u64,
) -> Vec<QualityRow> {
    let n = relation.n();
    let b_max = bucket_counts.iter().copied().max().unwrap_or(1).min(n);
    let evaluator = Evaluator::new(relation, metric);

    // Probabilistic optimum: one DP run yields every budget.
    let oracle = oracle_for_metric(relation, metric);
    let tables = DpTables::build(&oracle, b_max).expect("valid DP parameters");

    // Best (n buckets: every item on its own) and worst (a single bucket)
    // achievable costs under the evaluation objective.
    let singleton_ends: Vec<usize> = (0..n).collect();
    let singleton_reps: Vec<f64> = (0..n).map(|i| oracle.bucket(i, i).representative).collect();
    let best_hist = Histogram::from_boundaries(n, &singleton_ends, &singleton_reps)
        .expect("singleton histogram is a valid partition");
    let best = evaluator.cost(&best_hist);
    let worst_hist = tables.extract(1, &oracle).expect("one-bucket extraction");
    let worst = evaluator.cost(&worst_hist);

    // Heuristic inputs: the expected-frequency vector and sampled worlds,
    // each optimised by the very same DP code on deterministic data.
    let mut rng = StdRng::seed_from_u64(seed);
    let expectation_rel: ProbabilisticRelation =
        ValuePdfModel::deterministic(&relation.expected_frequencies()).into();
    let expectation_oracle = oracle_for_metric(&expectation_rel, metric);
    let expectation_tables =
        DpTables::build(&expectation_oracle, b_max).expect("valid DP parameters");
    let sampled: Vec<(Box<dyn BucketCostOracle>, DpTables)> = (0..num_samples)
        .map(|_| {
            let world = sample_world(relation, &mut rng);
            let world_rel: ProbabilisticRelation = ValuePdfModel::deterministic(&world).into();
            let world_oracle = oracle_for_metric(&world_rel, metric);
            let tables = DpTables::build(&world_oracle, b_max).expect("valid DP parameters");
            (world_oracle, tables)
        })
        .collect();

    bucket_counts
        .iter()
        .map(|&b| {
            let b = b.clamp(1, b_max);
            let optimal = tables.extract(b, &oracle).expect("extraction");
            let expectation = expectation_tables
                .extract(b, &expectation_oracle)
                .expect("extraction");
            let sampled_pct: Vec<f64> = sampled
                .iter()
                .map(|(o, t)| {
                    let h = t.extract(b, o).expect("extraction");
                    error_percentage(evaluator.cost(&h), best, worst)
                })
                .collect();
            QualityRow {
                buckets: b,
                probabilistic: error_percentage(evaluator.cost(&optimal), best, worst),
                expectation: error_percentage(evaluator.cost(&expectation), best, worst),
                sampled: sampled_pct,
            }
        })
        .collect()
}

/// One row of a Figure 4 style table.
#[derive(Debug, Clone)]
pub struct WaveletRow {
    /// Coefficient budget `B`.
    pub coefficients: usize,
    /// Retained-energy error % of the probabilistic (expected-coefficient)
    /// selection.
    pub probabilistic: f64,
    /// Retained-energy error % of each sampled-world selection.
    pub sampled: Vec<f64>,
}

/// Computes the Figure 4 curve: the percentage of expected-coefficient energy
/// missed by the probabilistic selection and by `num_samples` sampled-world
/// selections, at every budget in `budgets`.
pub fn wavelet_quality_curve(
    relation: &ProbabilisticRelation,
    budgets: &[usize],
    num_samples: usize,
    seed: u64,
) -> Vec<WaveletRow> {
    let coeffs = ExpectedCoefficients::of(relation);
    let mu = coeffs.normalised();
    let mut rng = StdRng::seed_from_u64(seed);
    let sampled_transforms: Vec<HaarTransform> = (0..num_samples)
        .map(|_| HaarTransform::forward(&sample_world(relation, &mut rng)))
        .collect();
    budgets
        .iter()
        .map(|&b| {
            let optimal = coeffs.top_indices(b);
            let sampled: Vec<f64> = sampled_transforms
                .iter()
                .map(|t| {
                    let sel = top_indices_by_magnitude(t.normalised(), b);
                    selection_error_percentage(mu, &sel)
                })
                .collect();
            WaveletRow {
                coefficients: b,
                probabilistic: selection_error_percentage(mu, &optimal),
                sampled,
            }
        })
        .collect()
}

/// One row of a Figure 3 style timing table.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Domain size `n`.
    pub n: usize,
    /// Bucket budget `B`.
    pub buckets: usize,
    /// Wall-clock seconds to preprocess and run the dynamic program.
    pub seconds: f64,
}

/// Times the full histogram construction (oracle preprocessing plus DP) for
/// the given metric and budget.
pub fn time_histogram_construction(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
) -> TimingRow {
    let start = Instant::now();
    let oracle = oracle_for_metric(relation, metric);
    let tables = DpTables::build(&oracle, b).expect("valid DP parameters");
    let histogram = tables.extract(b, &oracle).expect("extraction");
    let seconds = start.elapsed().as_secs_f64();
    // Keep the optimiser from discarding the work.
    assert!(histogram.total_cost().is_finite());
    TimingRow {
        n: relation.n(),
        buckets: b,
        seconds,
    }
}

/// Standard geometric-ish ladder of budgets used by the figure binaries
/// (always includes 1 and `max`).
pub fn budget_ladder(max: usize, points: usize) -> Vec<usize> {
    let points = points.max(2);
    let mut out: Vec<usize> = (0..points)
        .map(|i| ((i + 1) as f64 / points as f64 * max as f64).round() as usize)
        .map(|b| b.max(1))
        .collect();
    out.insert(0, 1);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{movie_workload, tpch_workload};

    #[test]
    fn budget_ladder_is_monotone_and_bounded() {
        let ladder = budget_ladder(100, 10);
        assert_eq!(*ladder.first().unwrap(), 1);
        assert_eq!(*ladder.last().unwrap(), 100);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(budget_ladder(1, 5), vec![1]);
    }

    #[test]
    fn quality_curve_orders_methods_as_in_the_paper() {
        let rel = movie_workload(96, 3);
        for metric in [
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sse,
            ErrorMetric::Sae,
        ] {
            let rows = histogram_quality_curve(&rel, metric, &[1, 4, 16, 48, 96], 2, 7);
            for row in &rows {
                // The optimal probabilistic histogram is never worse than the
                // heuristics under the evaluation objective.
                assert!(row.probabilistic <= row.expectation + 1e-6, "{metric}");
                for &s in &row.sampled {
                    assert!(row.probabilistic <= s + 1e-6, "{metric}");
                }
                assert!(row.probabilistic >= -1e-9 && row.probabilistic <= 100.0);
            }
            // Error decreases with the budget and hits ~0 at B = n.
            assert!(rows.first().unwrap().probabilistic >= rows.last().unwrap().probabilistic);
            assert!(rows.last().unwrap().probabilistic < 1e-6);
            assert!((rows.first().unwrap().probabilistic - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn wavelet_curve_orders_methods_as_in_the_paper() {
        let rel = tpch_workload(256, 5);
        let rows = wavelet_quality_curve(&rel, &[1, 8, 32, 128, 256], 2, 11);
        for row in &rows {
            for &s in &row.sampled {
                assert!(row.probabilistic <= s + 1e-9);
            }
        }
        assert!(rows.last().unwrap().probabilistic < 1e-9);
        let first = &rows[0];
        assert!(first.probabilistic <= 100.0 && first.probabilistic > 0.0);
    }

    #[test]
    fn timing_rows_report_positive_durations() {
        let rel = movie_workload(128, 1);
        let row = time_histogram_construction(&rel, ErrorMetric::Ssre { c: 0.5 }, 16);
        assert_eq!(row.n, 128);
        assert_eq!(row.buckets, 16);
        assert!(row.seconds > 0.0);
    }
}
