//! Criterion benchmark for the `(1 + ε)`-approximate histogram construction
//! (Section 3.5) against the exact dynamic program, at a size where the
//! candidate thinning pays off.
//!
//! Besides the timings, each configuration prints its bucket-evaluation
//! counts (oracle calls, cache hits, pruned candidates) so perf regressions
//! in the pruning/caching logic are visible even when wall-clock noise hides
//! them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_bench::movie_workload;
use pds_core::metrics::ErrorMetric;
use pds_histogram::approx::approx_histogram;
use pds_histogram::oracle::oracle_for_metric;
use pds_histogram::DpTables;

fn bench_exact_vs_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_vs_exact_dp");
    group.sample_size(10);
    let metric = ErrorMetric::Ssre { c: 0.5 };
    let b = 16;
    for n in [1024usize, 2048] {
        let relation = movie_workload(n, 42);
        let oracle = oracle_for_metric(&relation, metric);
        let tables = DpTables::build(&oracle, b).unwrap();
        println!(
            "approx_vs_exact_dp/exact/{n}: {} bucket evaluations",
            tables.bucket_evaluations()
        );
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |bench, _| {
            bench.iter(|| black_box(DpTables::build(&oracle, b).unwrap().optimal_cost(b)))
        });
        for eps in [0.1, 0.5] {
            let stats = approx_histogram(&oracle, b, eps).unwrap().stats;
            println!(
                "approx_vs_exact_dp/approx_eps{eps}/{n}: {} bucket evaluations, {} cache hits, {} pruned, {} retained candidates",
                stats.bucket_evaluations,
                stats.cache_hits,
                stats.pruned_candidates,
                stats.retained_candidates
            );
            group.bench_with_input(
                BenchmarkId::new(format!("approx_eps{eps}"), n),
                &n,
                |bench, _| {
                    bench.iter(|| {
                        black_box(
                            approx_histogram(&oracle, b, eps)
                                .unwrap()
                                .histogram
                                .total_cost(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_approx);
criterion_main!(benches);
