//! Criterion benchmark for the per-bucket cost oracles: after preprocessing,
//! a single-bucket query must be O(1) (SSE, SSRE) or O(log |V|) (SAE, SARE),
//! independent of the bucket width — the property Theorems 1–4 rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_bench::{movie_workload, tpch_workload};
use pds_histogram::oracle::abs::WeightedAbsOracle;
use pds_histogram::oracle::maxerr::MaxErrOracle;
use pds_histogram::oracle::sse::{SseObjective, SseOracle, TupleSseMode};
use pds_histogram::oracle::ssre::SsreOracle;
use pds_histogram::oracle::BucketCostOracle;

const N: usize = 4096;

fn bench_single_bucket_queries(c: &mut Criterion) {
    let relation = movie_workload(N, 42);
    let mut group = c.benchmark_group("single_bucket_query");
    let buckets: Vec<(usize, usize)> = (0..1000)
        .map(|i| {
            let s = (i * 37) % (N / 2);
            (s, s + (i * 13) % (N / 2))
        })
        .collect();

    let sse = SseOracle::new(&relation, SseObjective::PaperEq5);
    group.bench_function("sse", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += sse.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });

    let ssre = SsreOracle::new(&relation, 0.5);
    group.bench_function("ssre", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += ssre.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });

    let sae = WeightedAbsOracle::sae(&relation);
    group.bench_function("sae", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += sae.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });

    let sare = WeightedAbsOracle::sare(&relation, 0.5);
    group.bench_function("sare", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += sare.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });
    group.finish();

    // MAE is O(n_b log |V|) per bucket, so bench it separately on narrower
    // buckets.
    let mut group = c.benchmark_group("single_bucket_query_maxerr");
    group.sample_size(20);
    let mae = MaxErrOracle::mae(&relation);
    let narrow: Vec<(usize, usize)> = (0..200).map(|i| (i * 16, i * 16 + 15)).collect();
    group.bench_function("mae_width16", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &narrow {
                acc += mae.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_oracle_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_preprocessing");
    for n in [1024usize, 4096] {
        let movie = movie_workload(n, 42);
        let tpch = tpch_workload(n, 42);
        group.bench_with_input(BenchmarkId::new("sse_basic", n), &n, |bench, _| {
            bench.iter(|| black_box(SseOracle::new(&movie, SseObjective::PaperEq5).n()))
        });
        group.bench_with_input(BenchmarkId::new("sse_tuple_exact", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    SseOracle::with_tuple_mode(&tpch, SseObjective::PaperEq5, TupleSseMode::Exact)
                        .n(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sae_tables", n), &n, |bench, _| {
            bench.iter(|| black_box(WeightedAbsOracle::sae(&movie).n()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_bucket_queries,
    bench_oracle_preprocessing
);
criterion_main!(benches);
