//! Criterion benchmark for the per-bucket cost oracles: after preprocessing,
//! a single-bucket query must be O(1) (SSE, SSRE), O(log |V|) (SAE, SARE) or
//! O(log |V|) envelope probes plus one exact segment refinement (MAE, MARE),
//! and a batched `costs_ending_at` sweep must amortise to the same bounds per
//! start — the properties Theorems 1–4 and 6 rely on.
//!
//! Two dedicated max-error groups pin the contract from both sides:
//! `single_bucket_query_maxerr` varies the bucket width at fixed |V| (the
//! binary-search probes are width-independent O(1) range-max lookups), and
//! `maxerr_value_domain_scaling` varies |V| at fixed width (probe count grows
//! as log |V|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_bench::{movie_workload, tpch_workload};
use pds_core::model::{ProbabilisticRelation, ValuePdf, ValuePdfModel};
use pds_histogram::oracle::abs::WeightedAbsOracle;
use pds_histogram::oracle::maxerr::MaxErrOracle;
use pds_histogram::oracle::sse::{SseObjective, SseOracle, TupleSseMode};
use pds_histogram::oracle::ssre::SsreOracle;
use pds_histogram::oracle::BucketCostOracle;

const N: usize = 4096;

/// A value-pdf workload whose frequency domain has exactly `k + 1` distinct
/// values (a k-level grid plus the implicit zero), for |V|-scaling runs.
fn value_domain_workload(n: usize, k: usize, seed: u64) -> ProbabilisticRelation {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let items: Vec<(usize, ValuePdf)> = (0..n)
        .map(|i| {
            let v1 = 1.0 + (next() % k) as f64;
            let v2 = 1.0 + (next() % k) as f64;
            let pdf = if (v1 - v2).abs() < 0.5 {
                ValuePdf::new([(v1, 0.8)]).unwrap()
            } else {
                ValuePdf::new([(v1, 0.5), (v2, 0.3)]).unwrap()
            };
            (i, pdf)
        })
        .collect();
    ValuePdfModel::from_sparse(n, items).unwrap().into()
}

fn bench_single_bucket_queries(c: &mut Criterion) {
    let relation = movie_workload(N, 42);
    let mut group = c.benchmark_group("single_bucket_query");
    let buckets: Vec<(usize, usize)> = (0..1000)
        .map(|i| {
            let s = (i * 37) % (N / 2);
            (s, s + (i * 13) % (N / 2))
        })
        .collect();

    let sse = SseOracle::new(&relation, SseObjective::PaperEq5);
    group.bench_function("sse", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += sse.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });

    let ssre = SsreOracle::new(&relation, 0.5);
    group.bench_function("ssre", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += ssre.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });

    let sae = WeightedAbsOracle::sae(&relation);
    group.bench_function("sae", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += sae.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });

    let sare = WeightedAbsOracle::sare(&relation, 0.5);
    group.bench_function("sare", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(s, e) in &buckets {
                acc += sare.bucket(s, e).cost;
            }
            black_box(acc)
        })
    });
    group.finish();

    // Max-error per-bucket queries at widths spanning two orders of
    // magnitude: the O(log |V|) envelope probes are width-independent O(1)
    // range-max lookups, so per-query time must grow far sublinearly in the
    // width (only the final exact segment refinement touches the bucket).
    let mut group = c.benchmark_group("single_bucket_query_maxerr");
    group.sample_size(20);
    let mae = MaxErrOracle::mae(&relation);
    for width in [16usize, 256, 2048] {
        let queries: Vec<(usize, usize)> = (0..200)
            .map(|i| {
                let s = (i * 97) % (N - width);
                (s, s + width - 1)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("mae_width", width), &width, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0;
                for &(s, e) in &queries {
                    acc += mae.bucket(s, e).cost;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_maxerr_value_domain_scaling(c: &mut Criterion) {
    // Fixed bucket width, growing |V|: per-query time follows the O(log |V|)
    // binary search over the value domain.
    let mut group = c.benchmark_group("maxerr_value_domain_scaling");
    group.sample_size(20);
    let width = 64usize;
    for k in [16usize, 64, 256] {
        let relation = value_domain_workload(N, k, 7);
        let mae = MaxErrOracle::mae(&relation);
        assert_eq!(mae.domain().len(), k + 1, "workload must pin |V|");
        let queries: Vec<(usize, usize)> = (0..200)
            .map(|i| {
                let s = (i * 97) % (N - width);
                (s, s + width - 1)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("mae_V", k + 1), &k, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0;
                for &(s, e) in &queries {
                    acc += mae.bucket(s, e).cost;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_batched_sweeps(c: &mut Criterion) {
    // One full costs_ending_at sweep per oracle: the per-start amortised cost
    // the dynamic programs actually pay.
    let mut group = c.benchmark_group("costs_ending_at_sweep");
    group.sample_size(20);
    let movie = movie_workload(N, 42);
    let tpch = tpch_workload(N, 42);
    let starts: Vec<usize> = (0..N).collect();

    let sse_exact = SseOracle::with_tuple_mode(&tpch, SseObjective::PaperEq5, TupleSseMode::Exact);
    group.bench_function("sse_tuple_exact", |bench| {
        bench.iter(|| black_box(sse_exact.costs_ending_at(N - 1, &starts).len()))
    });

    let ssre = SsreOracle::new(&movie, 0.5);
    group.bench_function("ssre", |bench| {
        bench.iter(|| black_box(ssre.costs_ending_at(N - 1, &starts).len()))
    });

    let sae = WeightedAbsOracle::sae(&movie);
    group.bench_function("sae", |bench| {
        bench.iter(|| black_box(sae.costs_ending_at(N - 1, &starts).len()))
    });

    // The max-error sweep maintains the grid envelope incrementally; sweep a
    // thinned start list the way the DP's candidate lists do.
    let mae = MaxErrOracle::mae(&movie);
    let sparse_starts: Vec<usize> = (0..N).step_by(16).collect();
    group.bench_function("mae_sparse_starts", |bench| {
        bench.iter(|| black_box(mae.costs_ending_at(N - 1, &sparse_starts).len()))
    });
    group.finish();
}

fn bench_oracle_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_preprocessing");
    for n in [1024usize, 4096] {
        let movie = movie_workload(n, 42);
        let tpch = tpch_workload(n, 42);
        group.bench_with_input(BenchmarkId::new("sse_basic", n), &n, |bench, _| {
            bench.iter(|| black_box(SseOracle::new(&movie, SseObjective::PaperEq5).n()))
        });
        group.bench_with_input(BenchmarkId::new("sse_tuple_exact", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    SseOracle::with_tuple_mode(&tpch, SseObjective::PaperEq5, TupleSseMode::Exact)
                        .n(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sae_tables", n), &n, |bench, _| {
            bench.iter(|| black_box(WeightedAbsOracle::sae(&movie).n()))
        });
        group.bench_with_input(BenchmarkId::new("maxerr_tables", n), &n, |bench, _| {
            bench.iter(|| black_box(MaxErrOracle::mae(&movie).n()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_bucket_queries,
    bench_maxerr_value_domain_scaling,
    bench_batched_sweeps,
    bench_oracle_preprocessing
);
criterion_main!(benches);
