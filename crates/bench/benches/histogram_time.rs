//! Criterion benchmark behind Figure 3: scaling of the optimal histogram
//! dynamic program with the domain size `n` and the bucket budget `B`
//! (sum-squared-relative-error, movie-like workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_bench::movie_workload;
use pds_core::metrics::ErrorMetric;
use pds_histogram::oracle::oracle_for_metric;
use pds_histogram::DpTables;

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3a_time_vs_n");
    group.sample_size(10);
    let metric = ErrorMetric::Ssre { c: 0.5 };
    for n in [256usize, 512, 1024, 2048] {
        let relation = movie_workload(n, 42);
        let oracle = oracle_for_metric(&relation, metric);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let tables = DpTables::build(&oracle, 50).unwrap();
                black_box(tables.optimal_cost(50))
            })
        });
    }
    group.finish();
}

fn bench_vs_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3b_time_vs_buckets");
    group.sample_size(10);
    let metric = ErrorMetric::Ssre { c: 0.5 };
    let relation = movie_workload(1024, 42);
    let oracle = oracle_for_metric(&relation, metric);
    for b in [25usize, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            bench.iter(|| {
                let tables = DpTables::build(&oracle, b).unwrap();
                black_box(tables.optimal_cost(b))
            })
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_per_metric_n512_b32");
    group.sample_size(10);
    let relation = movie_workload(512, 42);
    for metric in [
        ErrorMetric::Sse,
        ErrorMetric::Ssre { c: 0.5 },
        ErrorMetric::Sae,
        ErrorMetric::Sare { c: 0.5 },
    ] {
        let oracle = oracle_for_metric(&relation, metric);
        group.bench_function(metric.name(), |bench| {
            bench.iter(|| {
                let tables = DpTables::build(&oracle, 32).unwrap();
                black_box(tables.optimal_cost(32))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_vs_b, bench_metrics);
criterion_main!(benches);
