//! Criterion benchmark for the wavelet construction paths: the linear-time
//! expected-SSE thresholding of Theorem 7 (used in Figure 4, where both
//! methods "take much less than a second") and the restricted non-SSE
//! error-tree DP of Theorem 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_bench::{movie_workload, tpch_workload};
use pds_core::metrics::ErrorMetric;
use pds_wavelet::nonsse::build_restricted_wavelet;
use pds_wavelet::sse::{build_sse_wavelet, ExpectedCoefficients};

fn bench_sse_wavelet(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_sse_wavelet_build");
    for n in [1usize << 12, 1 << 15] {
        let movie = movie_workload(n, 42);
        group.bench_with_input(BenchmarkId::new("movie", n), &n, |bench, _| {
            bench.iter(|| black_box(build_sse_wavelet(&movie, 1000).unwrap().len()))
        });
        let tpch = tpch_workload(n, 42);
        group.bench_with_input(BenchmarkId::new("tpch", n), &n, |bench, _| {
            bench.iter(|| black_box(build_sse_wavelet(&tpch, 1000).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_expected_coefficients(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_coefficient_transform");
    for n in [1usize << 12, 1 << 15] {
        let movie = movie_workload(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(ExpectedCoefficients::of(&movie).normalised()[0]))
        });
    }
    group.finish();
}

fn bench_restricted_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_nonsse_wavelet_dp");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let relation = movie_workload(n, 42);
        group.bench_with_input(BenchmarkId::new("sae_b8", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    build_restricted_wavelet(&relation, ErrorMetric::Sae, 8)
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sse_wavelet,
    bench_expected_coefficients,
    bench_restricted_dp
);
criterion_main!(benches);
