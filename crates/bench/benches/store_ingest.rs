//! Criterion benchmark for the `pds-store` ingest path: memtable append
//! throughput (tuples/sec) across worker-thread counts, seal latency per
//! segment (inline and on the thread pool), and the partition merge
//! producing the global histogram.
//!
//! The thread axis (1/2/4/8) drives `SynopsisStore::ingest_batch` through
//! `pds_core::pool::set_num_threads`, so the numbers show how batch ingest
//! scales with cores; on a single-core container every row collapses to the
//! one-thread figure plus scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_core::metrics::ErrorMetric;
use pds_core::pool;
use pds_core::stream::{basic_stream, BasicStreamConfig, StreamRecord};
use pds_store::{PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore, WalSync};

const N: usize = 8192;
const PARTITIONS: usize = 8;

fn config(seal_threshold: usize, segment_budget: usize) -> StoreConfig {
    StoreConfig::new(
        PartitionSpec::uniform(N, PARTITIONS).unwrap(),
        seal_threshold,
        segment_budget,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    )
}

fn records(count: usize) -> Vec<StreamRecord> {
    basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(count)
    .collect()
}

/// Memtable append throughput: no sealing, pure routing + expectation
/// bookkeeping.  The serial row calls `ingest_all` (per-record locking);
/// the threaded rows call `ingest_batch` (lock-free routing, one pool task
/// per partition) at 1/2/4/8 workers.  Reported per iteration over a
/// 100k-record batch — divide for tuples/sec.
fn bench_ingest_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(10);
    let batch = records(100_000);
    group.bench_function("memtable_append_100k_serial", |bench| {
        bench.iter(|| {
            let store = SynopsisStore::new(config(usize::MAX >> 1, 32)).unwrap();
            store.ingest_all(batch.iter().cloned()).unwrap();
            black_box(store.stats().ingested_records)
        })
    });
    for threads in [1usize, 2, 4, 8] {
        pool::set_num_threads(Some(threads));
        group.bench_with_input(
            BenchmarkId::new("memtable_append_100k_batch_threads", threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    let store = SynopsisStore::new(config(usize::MAX >> 1, 32)).unwrap();
                    store.ingest_batch(batch.iter().cloned()).unwrap();
                    black_box(store.stats().ingested_records)
                })
            },
        );
    }
    pool::set_num_threads(None);
    group.finish();
}

/// Auto-sealing pipeline: ingest with a threshold that fires ~8 seals, with
/// sealing inline on the ingest thread versus on background workers.
fn bench_background_sealing(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_seal_overlap");
    group.sample_size(10);
    let batch = records(100_000);
    group.bench_function("ingest_100k_seal_inline", |bench| {
        bench.iter(|| {
            let store = SynopsisStore::new(config(12_500, 32)).unwrap();
            store.ingest_batch(batch.iter().cloned()).unwrap();
            black_box(store.stats().seals)
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("ingest_100k_seal_background", workers),
            &workers,
            |bench, &workers| {
                bench.iter(|| {
                    let store = SynopsisStore::new(config(12_500, 32))
                        .unwrap()
                        .with_background_sealing(workers);
                    store.ingest_batch(batch.iter().cloned()).unwrap();
                    store.flush().unwrap();
                    black_box(store.stats().seals)
                })
            },
        );
    }
    group.finish();
}

/// Seal latency: one partition's memtable (~12.5k records over a 1024-item
/// range) into a segment, for a few synopsis budgets.
fn bench_seal_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_seal");
    group.sample_size(10);
    let batch = records(100_000);
    for budget in [16usize, 48] {
        let filled = SynopsisStore::new(config(usize::MAX >> 1, budget)).unwrap();
        filled.ingest_all(batch.iter().cloned()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("seal_partition", budget),
            &budget,
            |bench, _| {
                bench.iter(|| {
                    let store = filled.clone();
                    black_box(store.seal_partition(0).unwrap())
                })
            },
        );
    }
    // All eight partitions at once: `seal_all` builds on the thread pool.
    for threads in [1usize, 4] {
        let filled = SynopsisStore::new(config(usize::MAX >> 1, 48)).unwrap();
        filled.ingest_all(batch.iter().cloned()).unwrap();
        pool::set_num_threads(Some(threads));
        group.bench_with_input(
            BenchmarkId::new("seal_all_threads", threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    let store = filled.clone();
                    store.seal_all().unwrap();
                    black_box(store.stats().segments)
                })
            },
        );
    }
    pool::set_num_threads(None);
    group.finish();
}

/// WAL durability cost: per-record `ingest` (one commit boundary per
/// record) versus group-committed `ingest_batch` (one commit per touched
/// shard per batch), at the flush tier and the opt-in fsync tier.  The
/// fsync rows are the reason group commit exists: the per-record path pays
/// one `sync_data` per record, the batch path one per shard per batch.
fn bench_wal_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_wal");
    group.sample_size(10);
    let batch = records(5_000);
    let mut run = 0u64;
    let mut dir_for = |tag: &str| {
        run += 1;
        let dir =
            std::env::temp_dir().join(format!("pds-bench-wal-{tag}-{run}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    for (tag, sync) in [("flush", WalSync::Flush), ("fsync", WalSync::Fsync)] {
        group.bench_with_input(
            BenchmarkId::new("ingest_5k_per_record", tag),
            &sync,
            |bench, &sync| {
                bench.iter(|| {
                    let dir = dir_for(tag);
                    let mut cfg = config(usize::MAX >> 1, 32);
                    cfg.wal_sync = sync;
                    let store = SynopsisStore::open_with_wal(cfg, &dir).unwrap();
                    for record in &batch {
                        store.ingest(record.clone()).unwrap();
                    }
                    black_box(store.stats().ingested_records);
                    drop(store);
                    let _ = std::fs::remove_dir_all(&dir);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ingest_5k_group_commit", tag),
            &sync,
            |bench, &sync| {
                bench.iter(|| {
                    let dir = dir_for(tag);
                    let mut cfg = config(usize::MAX >> 1, 32);
                    cfg.wal_sync = sync;
                    let store = SynopsisStore::open_with_wal(cfg, &dir).unwrap();
                    store.ingest_batch(batch.iter().cloned()).unwrap();
                    black_box(store.stats().ingested_records);
                    drop(store);
                    let _ = std::fs::remove_dir_all(&dir);
                })
            },
        );
    }
    group.finish();
}

/// Global merge over sealed per-partition synopses (piece extraction runs
/// one pool task per partition).
fn bench_global_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_merge");
    group.sample_size(10);
    let store = SynopsisStore::new(config(usize::MAX >> 1, 48)).unwrap();
    store.ingest_all(records(400_000)).unwrap();
    store.seal_all().unwrap();
    group.bench_function("merge_global_b32", |bench| {
        bench.iter(|| black_box(store.merge_global(32).unwrap().total_cost()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_throughput,
    bench_background_sealing,
    bench_seal_latency,
    bench_wal_commit,
    bench_global_merge
);
criterion_main!(benches);
