//! Criterion benchmark for the `pds-store` ingest path: memtable append
//! throughput (tuples/sec), seal latency per segment, and the partition
//! merge producing the global histogram.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pds_core::metrics::ErrorMetric;
use pds_core::stream::{basic_stream, BasicStreamConfig, StreamRecord};
use pds_store::{PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 8192;
const PARTITIONS: usize = 8;

fn config(seal_threshold: usize, segment_budget: usize) -> StoreConfig {
    StoreConfig {
        partitions: PartitionSpec::uniform(N, PARTITIONS).unwrap(),
        seal_threshold,
        segment_budget,
        synopsis: SynopsisKind::Histogram(ErrorMetric::Sse),
    }
}

fn records(count: usize) -> Vec<StreamRecord> {
    basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(count)
    .collect()
}

/// Memtable append throughput: no sealing, pure routing + expectation
/// bookkeeping.  Reported per iteration over a 100k-record batch — divide
/// for tuples/sec.
fn bench_ingest_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(10);
    let batch = records(100_000);
    group.bench_function("memtable_append_100k", |bench| {
        bench.iter(|| {
            let mut store = SynopsisStore::new(config(usize::MAX >> 1, 32)).unwrap();
            store.ingest_all(batch.iter().cloned()).unwrap();
            black_box(store.stats().ingested_records)
        })
    });
    group.finish();
}

/// Seal latency: one partition's memtable (~12.5k records over a 1024-item
/// range) into a segment, for a few synopsis budgets.
fn bench_seal_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_seal");
    group.sample_size(10);
    let batch = records(100_000);
    for budget in [16usize, 48] {
        let mut filled = SynopsisStore::new(config(usize::MAX >> 1, budget)).unwrap();
        filled.ingest_all(batch.iter().cloned()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("seal_partition", budget),
            &budget,
            |bench, _| {
                bench.iter(|| {
                    let mut store = filled.clone();
                    black_box(store.seal_partition(0).unwrap())
                })
            },
        );
    }
    group.finish();
}

/// Global merge over sealed per-partition synopses.
fn bench_global_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_merge");
    group.sample_size(10);
    let mut store = SynopsisStore::new(config(usize::MAX >> 1, 48)).unwrap();
    store.ingest_all(records(400_000)).unwrap();
    store.seal_all().unwrap();
    group.bench_function("merge_global_b32", |bench| {
        bench.iter(|| black_box(store.merge_global(32).unwrap().total_cost()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_throughput,
    bench_seal_latency,
    bench_global_merge
);
criterion_main!(benches);
