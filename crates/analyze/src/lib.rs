//! # pds-analyze
//!
//! Workspace invariant checker for the probabilistic-synopsis store: custom
//! lints for the conventions PRs 4–5 established by hand, plus a
//! deterministic structure-aware fuzzer over every binary decoder and the
//! WAL/manifest recovery path.  The compiler and clippy cannot express
//! these rules; this crate checks them with a small in-repo lexer
//! ([`lexer`]) — no `syn`, the registry is offline — running token-stream
//! passes with span-accurate diagnostics ([`rules`]).
//!
//! Run it as a CLI:
//!
//! ```text
//! cargo run -p pds-analyze -- check            # lint the workspace
//! cargo run -p pds-analyze -- fuzz --iters 50000 --seed 0xC0DE
//! ```
//!
//! ## Rule catalogue
//!
//! ### `lock-discipline` (files under `crates/store/src` and
//! `crates/server/src`)
//!
//! **What:** no shard `read()`/`write()` guard (including the
//! `write_shard`/`read_shard` helpers) may live across file I/O, fsync,
//! serialisation (`to_binary`/`to_blob`), a WAL operation, one of the
//! store's I/O-wrapping helpers, or another lock acquisition.  The rule
//! flags every such call in the token window between the guard's binding
//! and the end of its enclosing block (or `drop(guard)`); guards that are
//! never bound are tracked to the end of their statement.  In
//! `crates/server/src` a zero-arg `.lock()` counts as an acquisition too:
//! the server's connection-queue mutex may never be held across socket
//! I/O or a store call.  (Store files are exempt from the `.lock()` shape
//! on purpose — the WAL's internal mutex exists precisely to serialise its
//! own file I/O.)
//!
//! **Why:** PR 5 narrowed every durable commit to *"write blob + manifest
//! first, lock only for the in-memory swap"* — holding a shard lock across
//! an fsync turns one slow disk into a store-wide stall, and taking a
//! second shard's lock under the first deadlocks with the opposite order.
//! The designed exception is WAL-before-acknowledge: the append *must*
//! happen under the shard lock so the WAL order equals the memtable order.
//! Those sites carry a justified allow.
//!
//! **Suppress:** `// analyze:allow(lock-discipline) <why this hold is safe>`
//! on the line above the flagged call, or above the `fn` to cover the
//! whole function.
//!
//! ### `panic-freedom` (`pds-core::binio` and `pds-core::telemetry`, store
//! `wal.rs` / `manifest.rs` / `segment.rs` / `telemetry.rs`; all of
//! `crates/server/src`; the query-path functions of `store.rs`)
//!
//! **What:** in non-test code of the covered scope, no
//! `.unwrap()` / `.expect()`, no `panic!` / `todo!` / `unimplemented!` /
//! `unreachable!`, and no index expression without visible bounds
//! evidence.  Coverage has three tiers: the four durability-critical
//! decoder files and the whole `pds-server` crate are covered wall to
//! wall, while `crates/store/src/store.rs` is covered only inside the
//! query-path functions (`range_estimate`, `estimate`, `stats`,
//! `partition_pieces`, `merge_global`, `snapshot_view`, their timed
//! `*_core` bodies, the `render_metrics`/`render_events` telemetry
//! surface, `read_shard` and the `SnapshotView` accessors) — the write
//! paths *should* panic rather than keep mutating behind a poisoned lock.
//! The telemetry files join the list because they record inside
//! shard-guard windows and render on the serving path: a panic there
//! turns an observability feature into an availability bug.  Evidence (deliberately coarse — this is a reviewer aid with
//! an escape hatch, not a prover): the value passed a `?` check, the index
//! contains a mask/modulus/`min`/`max`, the enclosing scope calls a
//! length/slicing helper (`len`, `remaining`, `chunks`, `split_at`, …)
//! before the site, or the indexed local is a fixed-size array literal.
//!
//! **Why:** these files parse *untrusted bytes* (blobs, WAL tails,
//! manifests after a crash — and, for `pds-server`, arbitrary network
//! input).  Every failure must surface as an error (`PdsError`, or an
//! `ERR` protocol line) so recovery and serving can proceed; a panic in a
//! decoder turns a torn write into an unrecoverable store, and a panic on
//! the serving path lets one hostile client kill the process.  The fuzzer
//! ([`fuzz`]) enforces the same contract dynamically (including the `cmd`
//! target over the server's command parser); this rule keeps the panics
//! from being written at all.
//!
//! **Suppress:** `// analyze:allow(panic-freedom) <why it cannot fire>`.
//!
//! ### `binio-framing` (all workspace `src` files)
//!
//! **What:** (a) every `ByteWriter::envelope(MAGIC, ...)` writer has a
//! `ByteReader::envelope(.., .., MAGIC)` reader for the same magic
//! somewhere in the workspace (magics resolve through same-file
//! `const NAME: [u8; 4] = *b"....";` definitions or inline literals);
//! (b) inside a reader function, the envelope's returned version must be
//! compared (`==`/`!=`/`match`) before the first length-prefixed read
//! (`get_len` / `get_varint` / `get_bytes`); (c) any crate that produces
//! CRC trailers (`append_crc32`, or `crc32` + `to_le_bytes` in one
//! function) must also contain a verify site (`verify_crc32`, or `crc32`
//! compared with `==`/`!=`).
//!
//! **Why:** a length field read before the version check lets a
//! version-skewed or corrupted header drive allocation and slicing with
//! attacker-controlled numbers; an unpaired writer is a format nothing can
//! ever decode; an unpaired CRC is integrity theatre.
//!
//! **Suppress:** `// analyze:allow(binio-framing) <why>`.
//!
//! ### `crash-coverage` (files under `crates/store/src`)
//!
//! **What:** every atomic publish — an `fs::rename(from, ..)` or
//! `vfs::rename(site, from, ..)` whose source is a `tmp`/`staging` path —
//! must be preceded, in the same function, by a
//! `crashpoint::reached("<label>")`; and every label used in the sources
//! must appear as a `label:` of the crash-matrix test
//! (`crates/store/tests/store_crash_matrix.rs`), so arming the label
//! actually exercises the kill-and-recover path.
//!
//! **Why:** the crash matrix is the store's durability proof.  A publish
//! site without a crash point is a commit protocol step the matrix can
//! never interrupt — exactly where an untested torn state hides.
//!
//! **Suppress:** `// analyze:allow(crash-coverage) <why>`.
//!
//! ### `telemetry-pairing` (all workspace `src` files)
//!
//! **What:** every latency observation — a `.observe(` call in non-test
//! code — must sit in a function with visible start evidence earlier in
//! its tokens: the identifier `Stopwatch` (a parameter type or
//! `Stopwatch::start`) or an identifier ending in `start`
//! (`maybe_start`).  `crates/core/src/telemetry.rs` additionally runs the
//! mutex-inclusive lock-discipline pass: the registry's render mutex may
//! never be held across I/O or another acquisition.
//!
//! **Why:** a histogram fed a literal, or a stopwatch started in some
//! unrelated scope, silently records garbage — the series keeps
//! rendering, dashboards keep graphing, and nothing fails.  Forcing the
//! start into the same function keeps every recording site reviewable at
//! a glance.
//!
//! **Suppress:** `// analyze:allow(telemetry-pairing) <why>`.
//!
//! ### `vfs-discipline` (files under `crates/store/src`)
//!
//! **What:** non-test store code may not call `fs::`, `File::` or
//! `OpenOptions::` functions directly — every durable operation must route
//! through the `pds_core::vfs` passthrough.  Test modules are exempt (they
//! stage fixtures and inspect artefacts directly).
//!
//! **Why:** the vfs layer is where the deterministic fault injector, the
//! bounded retry policy and the I/O-error telemetry all live.  A direct
//! filesystem call is invisible to the fault matrix (so its failure mode
//! is never exercised), skips retry, and fails without a trace — exactly
//! the silent error path this PR's degraded-mode machinery exists to
//! close.
//!
//! **Suppress:** `// analyze:allow(vfs-discipline) <why this bypass is safe>`.
//!
//! ### `allow-discipline` (automatic)
//!
//! Every `// analyze:allow(<rule>) <justification>` is recorded and
//! reported with its use count.  An allow with an empty justification, or
//! one that no longer suppresses anything, is itself a finding — the
//! escape hatch never rots silently.
//!
//! ## Fuzzing
//!
//! [`fuzz`] round-trips every binary format through its real encoder, then
//! applies structure-aware mutations (bit flips, truncations, extensions,
//! magic/version/length/CRC skew, splice-of-two-valids) and asserts the
//! decoders — and `SynopsisStore::open_with_wal` over a mutated store
//! directory — return `PdsError` or a valid value: never a panic, never a
//! hang, never a silent accept of a corrupted CRC.  Failures are minimised
//! and written to a corpus directory that `cargo test` replays.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fuzz;
pub mod lexer;
pub mod rules;
