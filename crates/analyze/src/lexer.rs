//! A small, self-contained Rust lexer for the invariant checker.
//!
//! The registry is offline, so `syn` is unavailable; the rules in
//! [`crate::rules`] only need a *token stream with spans* — identifiers,
//! punctuation, literals — plus the `// analyze:allow(<rule>) <justification>`
//! escape-hatch comments.  This lexer provides exactly that: it understands
//! line and (nested) block comments, string / raw-string / byte-string /
//! char literals, lifetimes, numbers with suffixes, and the multi-character
//! operators the rules match on (`::`, `->`, `=>`, `..`, `..=`, `==`, `!=`,
//! `<=`, `>=`).  Everything else is emitted as single-character punctuation.
//!
//! It is deliberately **not** a full Rust lexer: shebangs, `c"..."`
//! literals and exotic raw identifiers are out of scope for this
//! workspace's sources, and the fixture tests pin the constructs the rules
//! depend on.

/// Token categories the rule passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `unwrap`, ...).
    Ident,
    /// Numeric literal, including suffixes (`0xC0DE`, `1.5e-3`, `17u64`).
    Number,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-character operators listed in the module docs are
    /// fused into one token, everything else is a single character.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Category.
    pub kind: TokKind,
    /// Exact source text (for `Str`, includes the quotes/prefix).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One `// analyze:allow(<rule>) <justification>` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Everything after the closing parenthesis, trimmed.  The checker
    /// rejects empty justifications: an allow must say *why*.
    pub justification: String,
}

/// Output of [`lex`]: the token stream plus all allow comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Escape-hatch comments in source order.
    pub allows: Vec<Allow>,
}

/// Tokenize `source`.  Comments and whitespace are skipped (allow comments
/// are captured into [`Lexed::allows`]); the lexer never fails — unknown
/// bytes become single-character punctuation so rule passes can keep
/// scanning.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col, String::new()),
                'r' if matches!(self.peek(1), Some('"') | Some('#')) && self.is_raw_start(1) => {
                    self.raw_string(line, col, String::from("r"))
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, col, String::from("b"));
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line, col, String::from("b"));
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_start(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line, col, String::from("br"));
                }
                '\'' => self.quote(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
        self.out
    }

    /// Is the text at `offset` (relative to `pos`, which sits on `r` or the
    /// char after `b`) the start of a raw string: `"`, or hashes then `"`?
    fn is_raw_start(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Strip `//`, doc-comment `/`/`!` markers, then look for the allow
        // escape hatch.
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        if let Some(rest) = body.strip_prefix("analyze:allow(") {
            if let Some(close) = rest.find(')') {
                let rule = rest[..close].trim().to_string();
                let justification = rest[close + 1..].trim().to_string();
                self.out.allows.push(Allow {
                    line,
                    rule,
                    justification,
                });
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self, line: u32, col: u32, mut text: String) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, text, line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32, mut text: String) {
        self.bump(); // the `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            text.push('#');
            hashes += 1;
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        let mut body = String::new();
        loop {
            if body.ends_with(&closer) {
                break;
            }
            match self.bump() {
                Some(c) => body.push(c),
                None => break,
            }
        }
        text.push_str(&body);
        self.push(TokKind::Str, text, line, col);
    }

    fn char_lit(&mut self, line: u32, col: u32, mut text: String) {
        text.push('\'');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, text, line, col);
    }

    /// A `'` is either a lifetime or a char literal.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            self.char_lit(line, col, String::new());
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.25` but not the range in `0..10`.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && text.chars().last().is_some_and(|l| l == 'e' || l == 'E')
                && text.contains('.')
            {
                // Exponent sign in `1.0e-5`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        const FUSED: [&str; 9] = ["..=", "::", "->", "=>", "..", "==", "!=", "<=", ">="];
        for op in FUSED {
            let matches = op
                .chars()
                .enumerate()
                .all(|(i, oc)| self.peek(i) == Some(oc));
            if matches {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(TokKind::Punct, op.to_string(), line, col);
                return;
            }
        }
        let c = self.bump().unwrap_or(' ');
        self.push(TokKind::Punct, c.to_string(), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_fused_operators() {
        assert_eq!(
            texts("fn f() -> Result<(), E> { a::b != c..=d }"),
            vec![
                "fn", "f", "(", ")", "->", "Result", "<", "(", ")", ",", "E", ">", "{", "a", "::",
                "b", "!=", "c", "..=", "d", "}"
            ]
        );
    }

    #[test]
    fn strings_and_escapes_do_not_leak_tokens() {
        let toks = lex(r#"let s = "a \" } // not a comment"; done"#).tokens;
        assert_eq!(toks[3].kind, TokKind::Str);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.is_ident("comment")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex(r##"let m = *b"PDSG"; let r = r#"x "quoted" y"#;"##).tokens;
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["b\"PDSG\"", "r#\"x \"quoted\" y\"#"]);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_numbers() {
        let toks = lex("/* outer /* inner */ still comment */ 0xC0DE 1.5e-3 0..10").tokens;
        assert_eq!(toks[0].text, "0xC0DE");
        assert_eq!(toks[1].text, "1.5e-3");
        assert_eq!(
            toks[2..]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["0", "..", "10"]
        );
    }

    #[test]
    fn allow_comments_are_captured_with_justification() {
        let lexed = lex(
            "// analyze:allow(lock-discipline) WAL append must precede ack\nlet x = 1;\n\
             // analyze:allow(panic-freedom)\n",
        );
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "lock-discipline");
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].justification, "WAL append must precede ack");
        assert_eq!(lexed.allows[1].justification, "");
    }

    #[test]
    fn line_and_column_spans_are_accurate() {
        let toks = lex("a\n  bcd e").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 7));
    }
}
