//! The five invariant rules and the machinery that runs them.
//!
//! Every rule works on the token stream of [`crate::lexer`] — see the crate
//! docs ([`crate`]) for the catalogue of what each rule checks, why it
//! exists, and how to suppress a finding with
//! `// analyze:allow(<rule>) <justification>`.
//!
//! The public surface is intentionally small:
//!
//! * [`SourceModel::new`] — lex one file and precompute function spans and
//!   `#[test]`/`#[cfg(test)]` spans;
//! * [`analyze_sources`] — run every applicable rule over a set of files
//!   and fold allow-suppression into a [`Report`];
//! * [`check_workspace`] — walk a workspace root and call the above.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Allow, TokKind, Token};

/// Rule name: shard guards must not live across I/O / serialisation.
pub const RULE_LOCK: &str = "lock-discipline";
/// Rule name: no panic paths in the durability-critical decoder files.
pub const RULE_PANIC: &str = "panic-freedom";
/// Rule name: envelope writer/reader pairing and version-before-length.
pub const RULE_FRAMING: &str = "binio-framing";
/// Rule name: tmp-rename publishes need a registered crash point.
pub const RULE_CRASH: &str = "crash-coverage";
/// Rule name: every latency observation pairs with a visible start.
pub const RULE_TELEMETRY: &str = "telemetry-pairing";
/// Rule name: store durable I/O must route through `pds_core::vfs`.
pub const RULE_VFS: &str = "vfs-discipline";
/// Rule name: allows must be justified and must still suppress something.
pub const RULE_ALLOW: &str = "allow-discipline";

/// One finding, pointing at a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One `analyze:allow` comment, with how often it suppressed a finding.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// The recorded justification text.
    pub justification: String,
    /// How many findings this allow suppressed in this run.
    pub uses: usize,
}

/// Result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by file/line/column.
    pub diagnostics: Vec<Diagnostic>,
    /// Every allow comment seen, with its use count — the escape hatch is
    /// recorded and reported, never silent.
    pub allows: Vec<AllowRecord>,
    /// Number of files analysed.
    pub files_scanned: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// A function item: the `fn` keyword token index and its body token range
/// (`None` for bodyless trait-method declarations).
#[derive(Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// `(open_brace, close_brace)` token indices of the body.
    pub body: Option<(usize, usize)>,
}

/// One lexed file plus the structural indices the rules need.
pub struct SourceModel {
    /// Workspace-relative path (used for rule scoping and diagnostics).
    pub path: PathBuf,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Allow comments.
    pub allows: Vec<Allow>,
    /// Function spans in source order.
    pub fns: Vec<FnSpan>,
    /// Token ranges (inclusive) covered by `#[test]` / `#[cfg(test)]`.
    pub tests: Vec<(usize, usize)>,
}

impl SourceModel {
    /// Lex `source` and precompute spans.  `path` should be
    /// workspace-relative — rule scoping matches on it.
    pub fn new(path: impl Into<PathBuf>, source: &str) -> Self {
        let lexed = lex(source);
        let fns = find_fns(&lexed.tokens);
        let tests = find_tests(&lexed.tokens);
        SourceModel {
            path: path.into(),
            tokens: lexed.tokens,
            allows: lexed.allows,
            fns,
            tests,
        }
    }

    fn display(&self) -> String {
        self.path.display().to_string()
    }

    fn in_test(&self, i: usize) -> bool {
        self.tests.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// Innermost function whose body contains token `i`.
    fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((a, b)) if a <= i && i <= b))
            .max_by_key(|f| f.body.map(|(a, _)| a))
    }

    /// Token range used for guard-evidence scans: the enclosing function
    /// body, or the innermost brace block (const/static initialisers), or
    /// the whole file.
    fn enclosing_scope(&self, i: usize) -> (usize, usize) {
        if let Some(f) = self.enclosing_fn(i) {
            if let Some(b) = f.body {
                return b;
            }
        }
        // Walk back to the innermost unmatched `{`.
        let mut depth = 0usize;
        for j in (0..i).rev() {
            if self.tokens[j].is_punct("}") {
                depth += 1;
            } else if self.tokens[j].is_punct("{") {
                if depth == 0 {
                    let close = match_forward(&self.tokens, j, "{", "}");
                    return (j, close);
                }
                depth -= 1;
            }
        }
        (0, self.tokens.len().saturating_sub(1))
    }
}

/// Find the matching closer for the opener at `open_idx`; returns the last
/// token index if unbalanced (lexing never fails, rules stay total).
fn match_forward(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(...)` pointer type
        }
        // Scan the signature for the body `{` (or `;` for declarations),
        // ignoring parenthesised argument lists.
        let mut paren = 0usize;
        let mut body = None;
        for (j, t) in tokens.iter().enumerate().skip(i + 2) {
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && t.is_punct("{") {
                body = Some((j, match_forward(tokens, j, "{", "}")));
                break;
            } else if paren == 0 && t.is_punct(";") {
                break;
            }
        }
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            kw: i,
            body,
        });
    }
    fns
}

fn find_tests(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let close = match_forward(tokens, i + 1, "[", "]");
        let inner: Vec<&str> = tokens[i + 2..close]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        let is_test_attr = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            j = match_forward(tokens, j + 1, "[", "]") + 1;
        }
        // Find the item body.
        let mut paren = 0usize;
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && t.is_punct("{") {
                spans.push((i, match_forward(tokens, k, "{", "}")));
                break;
            } else if paren == 0 && t.is_punct(";") {
                break; // `#[cfg(test)] use ...;`
            }
            k += 1;
        }
        i = close + 1;
    }
    spans
}

// ---------------------------------------------------------------------------
// Rule 1: lock-discipline
// ---------------------------------------------------------------------------

/// Callee names that perform file I/O, fsync, serialisation, or further
/// locking — none may be reached while a shard guard is live.  The helper
/// names are the store's own I/O-wrapping functions; keeping them here (as
/// data, reported by name) is what lets the rule see through one call
/// level without building a call graph.
const LOCK_BANNED_CALLS: &[&str] = &[
    // file I/O and durability primitives
    "sync_data",
    "sync_all",
    "write_all",
    "flush",
    "sync",
    // serialisation
    "to_binary",
    "to_blob",
    // WAL operations (append/commit/rotate all touch the filesystem)
    "append",
    "commit",
    "commit_synced",
    "commit_group",
    "rotate",
    "reabsorb",
    "retire",
    // store-internal helpers that wrap I/O
    "insert_locked",
    "commit_wal_locked",
    "seal_locked",
    "freeze",
    "unfreeze",
    "install_in_memory",
    "install_segment",
    "commit_durable",
    "write_segment_blob",
];

/// Qualified-path prefixes whose associated calls are always I/O.
const LOCK_BANNED_PATHS: &[&str] = &[
    "fs",
    "vfs",
    "File",
    "OpenOptions",
    "PartitionWal",
    "Manifest",
];

/// `.read()` / `.write()` (zero-arg: the RwLock shape, not `io::Write`) or
/// `write_shard(` / `read_shard(` at `i`.  With `include_mutex`, zero-arg
/// `.lock()` counts too — used for `pds-server`, where the connection-queue
/// `Mutex` must never be held across I/O or store calls.  (Store files keep
/// `include_mutex` off: the WAL's internal mutex exists precisely to
/// serialise its own file I/O.)  Returns `(last_token_of_pattern,
/// description)`.
fn acquisition_at(tokens: &[Token], i: usize, include_mutex: bool) -> Option<(usize, String)> {
    if tokens[i].is_punct(".")
        && tokens.get(i + 1).is_some_and(|t| {
            t.is_ident("read") || t.is_ident("write") || (include_mutex && t.is_ident("lock"))
        })
        && tokens.get(i + 2).is_some_and(|t| t.is_punct("("))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct(")"))
    {
        return Some((i + 3, format!(".{}()", tokens[i + 1].text)));
    }
    if (tokens[i].is_ident("write_shard") || tokens[i].is_ident("read_shard"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
        && !(i > 0 && tokens[i - 1].is_ident("fn"))
    {
        return Some((i + 1, format!("{}( )", tokens[i].text)));
    }
    None
}

/// Walk back from the acquisition to the start of its statement; if the
/// statement is a simple `let [mut] name = ...`, return the binding.
fn find_binding(tokens: &[Token], lo: usize, acq: usize) -> Option<(usize, String)> {
    let mut j = acq;
    while j > lo {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.is_ident("let") {
            let name_idx = if tokens.get(j + 1).is_some_and(|t| t.is_ident("mut")) {
                j + 2
            } else {
                j + 1
            };
            let name = tokens.get(name_idx)?;
            let eq = tokens.get(name_idx + 1)?;
            if name.kind == TokKind::Ident && eq.is_punct("=") {
                return Some((j, name.text.clone()));
            }
            return None; // destructuring / ascription: treat as temporary
        }
    }
    None
}

fn lock_discipline(model: &SourceModel, include_mutex: bool, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for f in &model.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        let mut i = open;
        while i < close {
            if model.in_test(i) {
                i += 1;
                continue;
            }
            let Some((acq_end, desc)) = acquisition_at(tokens, i, include_mutex) else {
                i += 1;
                continue;
            };
            let guard_line = tokens[i].line;
            let binding = find_binding(tokens, open, i);
            let (win_start, win_end, label) = match &binding {
                Some((let_idx, name)) => {
                    // Window: from the acquisition to the end of the block
                    // holding the `let`, cut short by `drop(name)`.
                    let mut depth = 0usize;
                    let mut block_open = open;
                    for j in (open..*let_idx).rev() {
                        if tokens[j].is_punct("}") {
                            depth += 1;
                        } else if tokens[j].is_punct("{") {
                            if depth == 0 {
                                block_open = j;
                                break;
                            }
                            depth -= 1;
                        }
                    }
                    let mut end = match_forward(tokens, block_open, "{", "}").min(close);
                    // `drop(name)` releases the guard early.
                    let mut j = acq_end + 1;
                    while j + 3 <= end {
                        if tokens[j].is_ident("drop")
                            && tokens[j + 1].is_punct("(")
                            && tokens[j + 2].is_ident(name)
                            && tokens[j + 3].is_punct(")")
                        {
                            end = j;
                            break;
                        }
                        j += 1;
                    }
                    (acq_end + 1, end, format!("guard `{name}`"))
                }
                None => {
                    // Temporary guard: lives to the end of its statement.
                    let mut depth = 0isize;
                    let mut end = close;
                    let mut j = acq_end + 1;
                    while j < close {
                        let t = &tokens[j];
                        if t.is_punct("{") {
                            depth += 1;
                        } else if t.is_punct("}") {
                            depth -= 1;
                            if depth < 0 {
                                end = j;
                                break;
                            }
                        } else if t.is_punct(";") && depth == 0 {
                            end = j;
                            break;
                        }
                        j += 1;
                    }
                    (acq_end + 1, end, format!("temporary {desc} guard"))
                }
            };
            scan_lock_window(
                model,
                win_start,
                win_end,
                &label,
                guard_line,
                include_mutex,
                out,
            );
            i = acq_end + 1;
        }
    }
}

fn scan_lock_window(
    model: &SourceModel,
    start: usize,
    end: usize,
    label: &str,
    guard_line: u32,
    include_mutex: bool,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &model.tokens;
    let mut b = start;
    while b < end {
        if model.in_test(b) {
            b += 1;
            continue;
        }
        let t = &tokens[b];
        // Qualified I/O call: `fs::rename(...)`, `File::create(...)`, ...
        if t.kind == TokKind::Ident
            && LOCK_BANNED_PATHS.contains(&t.text.as_str())
            && tokens.get(b + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(b + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && tokens.get(b + 3).is_some_and(|n| n.is_punct("("))
        {
            out.push(Diagnostic {
                file: model.display(),
                line: tokens[b + 2].line,
                col: tokens[b + 2].col,
                rule: RULE_LOCK,
                message: format!(
                    "`{}::{}` called while {label} (line {guard_line}) is held",
                    t.text,
                    tokens[b + 2].text
                ),
            });
            b += 4;
            continue;
        }
        // Nested lock acquisition.
        if let Some((acq_end, desc)) = acquisition_at(tokens, b, include_mutex) {
            out.push(Diagnostic {
                file: model.display(),
                line: t.line,
                col: t.col,
                rule: RULE_LOCK,
                message: format!("{desc} acquired while {label} (line {guard_line}) is still held"),
            });
            b = acq_end + 1;
            continue;
        }
        // Banned callee by name.
        if t.kind == TokKind::Ident
            && LOCK_BANNED_CALLS.contains(&t.text.as_str())
            && tokens.get(b + 1).is_some_and(|n| n.is_punct("("))
            && !(b > 0 && tokens[b - 1].is_ident("fn"))
            && !(b > 0 && tokens[b - 1].is_punct("::"))
        {
            out.push(Diagnostic {
                file: model.display(),
                line: t.line,
                col: t.col,
                rule: RULE_LOCK,
                message: format!(
                    "`{}` (I/O or serialisation) called while {label} (line {guard_line}) is held",
                    t.text
                ),
            });
        }
        b += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 2: panic-freedom
// ---------------------------------------------------------------------------

/// The durability-critical files: decoders and recovery code that must
/// degrade to `PdsError`, never panic, on arbitrary bytes.
const PANIC_FILES: &[&str] = &[
    "crates/core/src/binio.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/manifest.rs",
    "crates/store/src/segment.rs",
    // Telemetry records inside shard-guard windows and renders on the
    // serving path: a panic here would turn an observability feature into
    // an availability bug.
    "crates/core/src/telemetry.rs",
    "crates/store/src/telemetry.rs",
    // Every durable byte of the store flows through the vfs passthrough;
    // a panic here would sit under every WAL append and manifest publish.
    "crates/core/src/vfs.rs",
    // The block-structured blob codec decodes untrusted footer/meta/block
    // bytes both at reopen and lazily on the serving path.
    "crates/store/src/blob.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Identifiers that, seen *anywhere earlier in the enclosing scope*, count
/// as bounds-guard evidence for an index expression.  Coarse by design —
/// the rule is a reviewer aid with an explicit allow hatch, not a prover.
const GUARD_EVIDENCE: &[&str] = &[
    "len",
    "remaining",
    "is_empty",
    "chunks",
    "chunks_exact",
    "windows",
    "split_at",
    "split_first",
    "split_last",
    "get",
    "partition_point",
    "min",
    "max",
    "clamp",
];

/// The query-path functions of `crates/store/src/store.rs` held to
/// panic-freedom: everything a network front-end exposes directly
/// (`pds-server` routes client commands here), plus the helpers they answer
/// through.  Write paths (`ingest`, seal, compaction) stay outside the rule
/// — a writer observing lock poison *must* panic rather than keep mutating.
const STORE_QUERY_FNS: &[&str] = &[
    "range_estimate",
    "range_estimate_core",
    "estimate",
    "stats",
    "partition_pieces",
    "merge_global",
    "merge_global_core",
    "snapshot_view",
    "snapshot_view_core",
    "read_shard",
    "n",
    "num_partitions",
    "segment_count",
    "live_records",
    "render_metrics",
    "render_events",
    // The read-path acceleration helpers: bound clamping, segment-handle
    // pruning/lazy loads (which serve queries directly) and the snapshot
    // capture loop.
    "clamp_range",
    "load",
    "fetch",
    "range_sum",
    "may_overlap",
    "records",
    "capture_one",
    "capture_parts",
    "view_from",
];

/// Whole-file panic-freedom: the durability-critical decoder files and
/// every non-test line of `pds-server`.
fn panic_freedom(model: &SourceModel, context: &str, out: &mut Vec<Diagnostic>) {
    panic_freedom_scoped(model, context, |_| true, out);
}

/// Panic-freedom restricted to the bodies of the named functions — used for
/// the store's query path, where the same file also holds write paths that
/// are *supposed* to panic on poisoned locks.
fn panic_freedom_fns(
    model: &SourceModel,
    names: &[&str],
    context: &str,
    out: &mut Vec<Diagnostic>,
) {
    let bodies: Vec<(usize, usize)> = model
        .fns
        .iter()
        .filter(|f| names.contains(&f.name.as_str()))
        .filter_map(|f| f.body)
        .collect();
    panic_freedom_scoped(
        model,
        context,
        |i| bodies.iter().any(|&(open, close)| i > open && i < close),
        out,
    );
}

fn panic_freedom_scoped(
    model: &SourceModel,
    context: &str,
    in_scope: impl Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if model.in_test(i) || !in_scope(i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i > 0
            && tokens[i - 1].is_punct(".")
        {
            out.push(Diagnostic {
                file: model.display(),
                line: t.line,
                col: t.col,
                rule: RULE_PANIC,
                message: format!(
                    "`.{}()` in {context}: hostile input must surface as an \
                     error, not a panic",
                    t.text
                ),
            });
            continue;
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(Diagnostic {
                file: model.display(),
                line: t.line,
                col: t.col,
                rule: RULE_PANIC,
                message: format!("`{}!` in {context}", t.text),
            });
            continue;
        }
        if t.is_punct("[") && is_index_site(tokens, i) && !index_is_guarded(model, i) {
            out.push(Diagnostic {
                file: model.display(),
                line: t.line,
                col: t.col,
                rule: RULE_PANIC,
                message: "indexing without visible bounds guard (no length \
                          check, mask, or slicing helper in scope)"
                    .to_string(),
            });
        }
    }
}

/// Is the `[` at `i` an index operation (as opposed to an array literal,
/// slice type, attribute, or macro bracket)?
fn is_index_site(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            "if" | "else"
                | "match"
                | "return"
                | "in"
                | "let"
                | "mut"
                | "ref"
                | "move"
                | "as"
                | "break"
                | "continue"
                | "loop"
                | "while"
                | "for"
                | "impl"
                | "fn"
                | "pub"
                | "use"
                | "where"
                | "dyn"
                | "box"
                | "unsafe"
                | "static"
                | "const"
                | "type"
                | "enum"
                | "struct"
                | "trait"
                | "mod"
        ),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

fn index_is_guarded(model: &SourceModel, i: usize) -> bool {
    let tokens = &model.tokens;
    // (a) `expr?[...]`: the value already passed a fallible check.
    if i > 0 && tokens[i - 1].is_punct("?") {
        return true;
    }
    let bracket_close = match_forward(tokens, i, "[", "]");
    // (b) mask / modulus / clamping inside the index expression.
    for t in &tokens[i + 1..bracket_close] {
        if t.is_punct("&") || t.is_punct("%") {
            return true;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "min" | "max" | "clamp") {
            return true;
        }
    }
    let (scope_open, _) = model.enclosing_scope(i);
    // (c) a bounds-related helper call earlier in the same scope.
    for j in scope_open..i {
        let t = &tokens[j];
        if t.kind == TokKind::Ident
            && GUARD_EVIDENCE.contains(&t.text.as_str())
            && tokens.get(j + 1).is_some_and(|n| n.is_punct("("))
        {
            return true;
        }
    }
    // (d) the indexed local is a fixed-size array literal bound in scope:
    //     `let [mut] name = [expr; N]`.
    if i > 0 && tokens[i - 1].kind == TokKind::Ident {
        let name = tokens[i - 1].text.as_str();
        for j in scope_open..i.saturating_sub(1) {
            if tokens[j].is_ident(name)
                && tokens.get(j + 1).is_some_and(|t| t.is_punct("="))
                && tokens.get(j + 2).is_some_and(|t| t.is_punct("["))
            {
                let close = match_forward(tokens, j + 2, "[", "]");
                if tokens[j + 2..close].iter().any(|t| t.is_punct(";")) {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 3: binio-framing
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct EnvelopeSite {
    model_idx: usize,
    line: u32,
    col: u32,
    /// Resolved 4-byte magic as text, e.g. "PDSG"; `None` if unresolvable.
    magic: Option<String>,
    /// Token index of the call's `envelope` identifier.
    at: usize,
}

/// Collect `const NAME: [u8; 4] = *b"XXXX";` definitions of one file.
fn magic_consts(tokens: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("const")
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            // Look a few tokens ahead for `*b"...."` before the next
            // statement-level `;` (the `;` inside the `[u8; 4]` array type
            // does not terminate the declaration).
            let mut brackets = 0i32;
            for j in i + 2..(i + 16).min(tokens.len()) {
                if tokens[j].is_punct("[") {
                    brackets += 1;
                } else if tokens[j].is_punct("]") {
                    brackets -= 1;
                } else if tokens[j].is_punct(";") && brackets == 0 {
                    break;
                }
                if tokens[j].kind == TokKind::Str && tokens[j].text.starts_with("b\"") {
                    let lit = tokens[j]
                        .text
                        .trim_start_matches("b\"")
                        .trim_end_matches('"')
                        .to_string();
                    out.push((tokens[i + 1].text.clone(), lit));
                    break;
                }
            }
        }
    }
    out
}

/// Split the argument tokens of a call (starting at the `(` index) on
/// depth-1 commas; returns the token ranges of each argument.
fn call_args(tokens: &[Token], open_paren: usize) -> Vec<(usize, usize)> {
    let close = match_forward(tokens, open_paren, "(", ")");
    let mut args = Vec::new();
    let mut depth = 0isize;
    let mut start = open_paren + 1;
    for (j, t) in tokens.iter().enumerate().take(close).skip(open_paren + 1) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            args.push((start, j));
            start = j + 1;
        }
    }
    if start < close {
        args.push((start, close));
    }
    args
}

fn resolve_magic(
    tokens: &[Token],
    arg: (usize, usize),
    consts: &[(String, String)],
) -> Option<String> {
    // Inline byte-string literal.
    for t in &tokens[arg.0..arg.1] {
        if t.kind == TokKind::Str && t.text.starts_with("b\"") {
            return Some(
                t.text
                    .trim_start_matches("b\"")
                    .trim_end_matches('"')
                    .to_string(),
            );
        }
    }
    // Last identifier, resolved against the same file's consts
    // (`Self::BINARY_MAGIC` → BINARY_MAGIC).
    let last_ident = tokens[arg.0..arg.1]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)?;
    consts
        .iter()
        .find(|(name, _)| *name == last_ident.text)
        .map(|(_, lit)| lit.clone())
}

fn envelope_sites(
    models: &[&SourceModel],
    callee: &str, // "ByteWriter" or "ByteReader"
    magic_arg: usize,
) -> Vec<EnvelopeSite> {
    let mut sites = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        let tokens = &model.tokens;
        let consts = magic_consts(tokens);
        for i in 0..tokens.len() {
            if model.in_test(i) {
                continue;
            }
            if tokens[i].is_ident(callee)
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("envelope"))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
            {
                let args = call_args(tokens, i + 3);
                let magic = args
                    .get(magic_arg)
                    .and_then(|&a| resolve_magic(tokens, a, &consts));
                sites.push(EnvelopeSite {
                    model_idx: mi,
                    line: tokens[i + 2].line,
                    col: tokens[i + 2].col,
                    magic,
                    at: i + 2,
                });
            }
        }
    }
    sites
}

fn binio_framing(models: &[&SourceModel], out: &mut Vec<Diagnostic>) {
    let writers = envelope_sites(models, "ByteWriter", 0);
    let readers = envelope_sites(models, "ByteReader", 2);

    // (a) Every writer magic has a matching reader somewhere.
    let reader_magics: HashSet<&str> = readers.iter().filter_map(|s| s.magic.as_deref()).collect();
    for w in &writers {
        match &w.magic {
            None => out.push(Diagnostic {
                file: models[w.model_idx].display(),
                line: w.line,
                col: w.col,
                rule: RULE_FRAMING,
                message: "envelope writer whose magic cannot be resolved to a \
                          local `const NAME: [u8; 4] = *b\"....\";` or inline literal"
                    .to_string(),
            }),
            Some(m) if !reader_magics.contains(m.as_str()) => out.push(Diagnostic {
                file: models[w.model_idx].display(),
                line: w.line,
                col: w.col,
                rule: RULE_FRAMING,
                message: format!(
                    "envelope writer for magic `{m}` has no matching \
                     `ByteReader::envelope` reader anywhere in the workspace"
                ),
            }),
            _ => {}
        }
    }

    // (b) In each reader function, the version must be checked before any
    // length-prefixed read.
    for r in &readers {
        let model = &models[r.model_idx];
        let tokens = &model.tokens;
        let Some((_, body_end)) = model.enclosing_fn(r.at).and_then(|f| f.body) else {
            continue;
        };
        let call_close = tokens
            .iter()
            .enumerate()
            .skip(r.at)
            .find(|(_, t)| t.is_punct("("))
            .map(|(j, _)| match_forward(tokens, j, "(", ")"))
            .unwrap_or(r.at);
        let mut version_checked = false;
        for j in call_close + 1..body_end {
            let t = &tokens[j];
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "get_len" | "get_varint" | "get_bytes")
                && tokens.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                if !version_checked {
                    out.push(Diagnostic {
                        file: model.display(),
                        line: t.line,
                        col: t.col,
                        rule: RULE_FRAMING,
                        message: format!(
                            "`{}` before any version check: a length-prefixed \
                             read must not trust bytes whose version was never \
                             compared",
                            t.text
                        ),
                    });
                }
                break; // only the first length read matters
            }
            // A comparison or match touching an ident containing "version".
            if t.kind == TokKind::Ident && t.text.contains("version") {
                let near = |k: usize| tokens.get(k).map(|n| n.text.as_str());
                for k in [j.wrapping_sub(1), j + 1] {
                    if matches!(near(k), Some("==" | "!=" | "<" | ">" | "<=" | ">=")) {
                        version_checked = true;
                    }
                }
                if j > 0 && tokens[j - 1].is_ident("match") {
                    version_checked = true;
                }
            }
        }
    }

    // (c) CRC pairing per crate: a crate whose functions produce CRC
    // trailers must also contain a verify site.
    let crate_of = |path: &Path| -> String {
        let s = path.to_string_lossy().replace('\\', "/");
        s.strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("probsyn")
            .to_string()
    };
    let mut producers: Vec<(String, usize, u32, u32)> = Vec::new(); // crate, model, line, col
    let mut verifier_crates: HashSet<String> = HashSet::new();
    for (mi, model) in models.iter().enumerate() {
        let tokens = &model.tokens;
        for f in &model.fns {
            let Some((a, b)) = f.body else { continue };
            if model.in_test(a) {
                continue;
            }
            let has = |name: &str| {
                tokens[a..b].iter().enumerate().any(|(off, t)| {
                    t.is_ident(name) && tokens.get(a + off + 1).is_some_and(|n| n.is_punct("("))
                })
            };
            let has_punct = |p: &str| tokens[a..b].iter().any(|t| t.is_punct(p));
            let crc_call = has("crc32");
            if has("append_crc32") || (crc_call && has("to_le_bytes")) {
                let kw = &tokens[f.kw];
                producers.push((crate_of(&model.path), mi, kw.line, kw.col));
            }
            if has("verify_crc32") || (crc_call && (has_punct("==") || has_punct("!="))) {
                verifier_crates.insert(crate_of(&model.path));
            }
        }
    }
    for (krate, mi, line, col) in producers {
        if !verifier_crates.contains(&krate) {
            out.push(Diagnostic {
                file: models[mi].display(),
                line,
                col,
                rule: RULE_FRAMING,
                message: format!(
                    "crate `{krate}` appends CRC trailers but contains no \
                     CRC verify site"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: crash-coverage
// ---------------------------------------------------------------------------

fn crash_coverage(
    models: &[&SourceModel],
    matrix_labels: &HashSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for model in models {
        let tokens = &model.tokens;
        // All `crashpoint::reached("label")` labels in this file, by index.
        let mut reached: Vec<(usize, String)> = Vec::new();
        for i in 0..tokens.len() {
            if model.in_test(i) {
                continue;
            }
            if tokens[i].is_ident("crashpoint")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("reached"))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
                && tokens.get(i + 4).is_some_and(|t| t.kind == TokKind::Str)
            {
                let label = tokens[i + 4].text.trim_matches('"').to_string();
                if !matrix_labels.contains(&label) {
                    out.push(Diagnostic {
                        file: model.display(),
                        line: tokens[i + 4].line,
                        col: tokens[i + 4].col,
                        rule: RULE_CRASH,
                        message: format!(
                            "crash point `{label}` is not exercised by any row \
                             of the crash-matrix test (tests/store_crash_matrix.rs)"
                        ),
                    });
                }
                reached.push((i, label));
            }
        }
        // Every tmp-rename publish must be preceded (same function) by a
        // crash point.
        for i in 0..tokens.len() {
            if model.in_test(i) {
                continue;
            }
            // `fs::rename(from, to)` takes the source path first;
            // `vfs::rename(site, from, to)` carries its fault-site label
            // first, so the source path is the second argument.
            let from_arg = if tokens[i].is_ident("fs") {
                0
            } else if tokens[i].is_ident("vfs") {
                1
            } else {
                continue;
            };
            if !(tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("rename"))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct("(")))
            {
                continue;
            }
            let args = call_args(tokens, i + 3);
            let Some(&first) = args.get(from_arg) else {
                continue;
            };
            let is_publish = tokens[first.0..first.1].iter().any(|t| {
                t.kind == TokKind::Ident
                    && (t.text.to_lowercase().contains("tmp")
                        || t.text.to_lowercase().contains("staging"))
            });
            if !is_publish {
                continue;
            }
            let Some(f) = model.enclosing_fn(i) else {
                continue;
            };
            let Some((body_open, _)) = f.body else {
                continue;
            };
            let covered = reached.iter().any(|&(ri, _)| ri >= body_open && ri < i);
            if !covered {
                out.push(Diagnostic {
                    file: model.display(),
                    line: tokens[i + 2].line,
                    col: tokens[i + 2].col,
                    rule: RULE_CRASH,
                    message: format!(
                        "atomic tmp-rename publish in `{}` has no preceding \
                         `crashpoint::reached(..)` label",
                        f.name
                    ),
                });
            }
        }
    }
}

/// Extract the `label: "..."` strings from the crash-matrix test source.
fn matrix_labels(model: &SourceModel) -> HashSet<String> {
    let tokens = &model.tokens;
    let mut labels = HashSet::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("label")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && tokens.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
        {
            labels.insert(tokens[i + 2].text.trim_matches('"').to_string());
        }
    }
    labels
}

// ---------------------------------------------------------------------------
// Rule 5: telemetry-pairing
// ---------------------------------------------------------------------------

/// Every latency observation (`.observe(`) in non-test code must sit in a
/// function that visibly starts a stopwatch: an ident `Stopwatch` (the
/// parameter type, or `Stopwatch::start`) or an ident ending in `start`
/// (`maybe_start`) earlier in the same function.  This is the static half
/// of the "every histogram recording site pairs a start with an observe"
/// contract — it keeps a refactor from feeding a histogram a literal or a
/// stopwatch started in some unrelated scope.
fn telemetry_pairing(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if model.in_test(i) {
            continue;
        }
        if !(tokens[i].is_punct(".")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("observe"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let from = model.enclosing_fn(i).map_or(0, |f| f.kw);
        let evidence = tokens[from..i].iter().any(|t| {
            t.kind == TokKind::Ident && (t.text == "Stopwatch" || t.text.ends_with("start"))
        });
        if !evidence {
            out.push(Diagnostic {
                file: model.display(),
                line: tokens[i + 1].line,
                col: tokens[i + 1].col,
                rule: RULE_TELEMETRY,
                message: "`.observe(..)` without visible start evidence (no \
                          `Stopwatch` or `*start` identifier earlier in the \
                          enclosing function)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: vfs-discipline
// ---------------------------------------------------------------------------

/// Path prefixes whose associated calls reach the filesystem directly,
/// bypassing the `pds_core::vfs` passthrough (and with it the fault
/// injector, the retry policy and the I/O-error telemetry).
const VFS_BANNED_PATHS: &[&str] = &["fs", "File", "OpenOptions"];

/// Every durable byte of `crates/store` must flow through `pds_core::vfs`:
/// a direct `fs::`/`File::`/`OpenOptions::` call in non-test store code is
/// invisible to the fault matrix, untried by the retry policy, and
/// uncounted by the I/O-error telemetry.  Test modules are exempt (they
/// stage fixtures); anything else needs an
/// `// analyze:allow(vfs-discipline) <why>` justification.
fn vfs_discipline(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if model.in_test(i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && VFS_BANNED_PATHS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && tokens.get(i + 3).is_some_and(|n| n.is_punct("("))
            // `vfs::…` calls lex as `vfs :: fs`-free shapes already, but a
            // store-local `fs` module re-export would still be direct I/O —
            // only a preceding `vfs ::` qualification makes the call routed.
            && !(i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("vfs"))
        {
            out.push(Diagnostic {
                file: model.display(),
                line: tokens[i + 2].line,
                col: tokens[i + 2].col,
                rule: RULE_VFS,
                message: format!(
                    "direct `{}::{}` call in store code: durable I/O must \
                     route through `pds_core::vfs` so the fault matrix, retry \
                     policy and I/O telemetry all see it",
                    t.text,
                    tokens[i + 2].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

fn path_str(model: &SourceModel) -> String {
    model.path.to_string_lossy().replace('\\', "/")
}

/// Run every applicable rule over `models` and fold allow-suppression.
///
/// Scoping (by workspace-relative path):
/// * `lock-discipline` — files under `crates/store/src` (shard-lock shapes)
///   and `crates/server/src` (additionally treating zero-arg `.lock()` as
///   an acquisition: the server may hold no lock across I/O or store
///   calls);
/// * `vfs-discipline` — files under `crates/store/src` (durable I/O must
///   route through `pds_core::vfs`, not raw `fs`/`File`/`OpenOptions`);
/// * `crash-coverage` — files under `crates/store/src`;
/// * `panic-freedom` — the four durability-critical files (see crate docs),
///   the whole of `crates/server/src` (the serving path: hostile bytes must
///   cost an `ERR` line, never the process), and the query-path functions
///   of `crates/store/src/store.rs` (`STORE_QUERY_FNS`);
/// * `binio-framing` — all `src` files;
/// * `telemetry-pairing` — all `src` files (only telemetry code contains
///   `.observe(` sites); `crates/core/src/telemetry.rs` additionally gets
///   the mutex-inclusive lock-discipline pass — the registry mutex may
///   never be held across I/O or another lock;
/// * files under `tests/` participate only as the crash-matrix label list.
pub fn analyze_sources(models: &[SourceModel]) -> Report {
    let mut raw: Vec<Diagnostic> = Vec::new();

    let src_models: Vec<&SourceModel> = models
        .iter()
        .filter(|m| !path_str(m).contains("tests/"))
        .collect();

    for model in &src_models {
        let p = path_str(model);
        if p.contains("crates/store/src") {
            lock_discipline(model, false, &mut raw);
            vfs_discipline(model, &mut raw);
        }
        if p.contains("crates/server/src") {
            lock_discipline(model, true, &mut raw);
            panic_freedom(model, "the serving path", &mut raw);
        }
        if p.ends_with("crates/core/src/telemetry.rs") {
            // The registry/render mutex is the only lock telemetry owns;
            // it must never be held across I/O or another acquisition.
            lock_discipline(model, true, &mut raw);
        }
        if PANIC_FILES.iter().any(|f| p.ends_with(f)) {
            panic_freedom(model, "durability-critical code", &mut raw);
        } else if p.ends_with("crates/store/src/store.rs") {
            panic_freedom_fns(
                model,
                STORE_QUERY_FNS,
                "the panic-free query path",
                &mut raw,
            );
        }
        telemetry_pairing(model, &mut raw);
    }

    // binio-framing needs cross-file sight; give it every src model.
    binio_framing(&src_models, &mut raw);

    // crash-coverage: store src files + the matrix label list.
    let labels: HashSet<String> = models
        .iter()
        .filter(|m| path_str(m).ends_with("store_crash_matrix.rs"))
        .flat_map(|m| matrix_labels(m).into_iter())
        .collect();
    let store_models: Vec<&SourceModel> = src_models
        .iter()
        .copied()
        .filter(|m| path_str(m).contains("crates/store/src"))
        .collect();
    crash_coverage(&store_models, &labels, &mut raw);

    // Allow suppression + accounting.
    let mut report = Report {
        files_scanned: models.len(),
        ..Report::default()
    };
    let mut allow_uses: Vec<Vec<usize>> = models.iter().map(|m| vec![0; m.allows.len()]).collect();
    'diag: for d in raw {
        for (mi, model) in models.iter().enumerate() {
            if model.display() != d.file {
                continue;
            }
            for (ai, allow) in model.allows.iter().enumerate() {
                if allow.rule == d.rule && allow_covers(model, allow, d.line) {
                    allow_uses[mi][ai] += 1;
                    continue 'diag;
                }
            }
        }
        report.diagnostics.push(d);
    }
    for (mi, model) in models.iter().enumerate() {
        for (ai, allow) in model.allows.iter().enumerate() {
            let uses = allow_uses[mi][ai];
            report.allows.push(AllowRecord {
                file: model.display(),
                line: allow.line,
                rule: allow.rule.clone(),
                justification: allow.justification.clone(),
                uses,
            });
            if allow.justification.is_empty() {
                report.diagnostics.push(Diagnostic {
                    file: model.display(),
                    line: allow.line,
                    col: 1,
                    rule: RULE_ALLOW,
                    message: format!(
                        "`analyze:allow({})` without a justification — say why \
                         the pattern is safe",
                        allow.rule
                    ),
                });
            } else if uses == 0 {
                report.diagnostics.push(Diagnostic {
                    file: model.display(),
                    line: allow.line,
                    col: 1,
                    rule: RULE_ALLOW,
                    message: format!(
                        "unused `analyze:allow({})`: the code below no longer \
                         trips the rule — delete the annotation",
                        allow.rule
                    ),
                });
            }
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.diagnostics.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.col == b.col && a.rule == b.rule
    });
    report
}

/// Does `allow` suppress a finding at `line`?
///
/// An allow covers its own line and the next line; when the next item (≤ 2
/// lines below, attributes in between allowed) is a `fn`, it covers the
/// whole function body — that is the documented fn-level form.
fn allow_covers(model: &SourceModel, allow: &Allow, line: u32) -> bool {
    if line == allow.line || line == allow.line + 1 {
        return true;
    }
    for f in &model.fns {
        let kw_line = model.tokens[f.kw].line;
        if (allow.line + 1..=allow.line + 2).contains(&kw_line) {
            if let Some((_, close)) = f.body {
                let end_line = model.tokens[close].line;
                if (kw_line..=end_line).contains(&line) {
                    return true;
                }
            }
        }
    }
    false
}

/// Walk a workspace root and analyse every `src/**/*.rs` file of the root
/// package and the `crates/*` packages, plus the crash-matrix test (label
/// list only).  `vendor/`, `target/`, `examples/`, `benches/` and `tests/`
/// are excluded.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<(PathBuf, String)> = Vec::new();
    collect_rs(root, root, &mut files)?;
    let matrix = root.join("crates/store/tests/store_crash_matrix.rs");
    if matrix.is_file() {
        let text = std::fs::read_to_string(&matrix)?;
        files.push((
            PathBuf::from("crates/store/tests/store_crash_matrix.rs"),
            text,
        ));
    }
    let models: Vec<SourceModel> = files
        .into_iter()
        .map(|(p, s)| SourceModel::new(p, &s))
        .collect();
    Ok(analyze_sources(&models))
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "vendor" | "target" | "examples" | "benches" | "tests" | ".git" | ".github"
            ) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            // Only package sources: root `src/` or `crates/*/src/`.
            let in_src = rel_str.starts_with("src/")
                || (rel_str.starts_with("crates/")
                    && rel_str
                        .splitn(3, '/')
                        .nth(2)
                        .is_some_and(|r| r.starts_with("src/")));
            if !in_src {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            out.push((rel.to_path_buf(), text));
        }
    }
    Ok(())
}
