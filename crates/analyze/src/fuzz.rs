//! Deterministic structure-aware mutation fuzzing of every binary decoder
//! and of WAL/manifest crash recovery.
//!
//! No `cargo-fuzz`, no registry crates: mutations come from the vendored
//! deterministic [`rand`] shim, so a `(seed, iters)` pair replays the exact
//! same byte streams on every machine.  The harness:
//!
//! 1. builds **valid seed artefacts** through the real encoders (histogram
//!    and wavelet binaries, segment binaries and CRC blobs, full store
//!    snapshots, a real `MANIFEST`, framed WAL lines);
//! 2. applies structure-aware mutations — bit flips, truncations,
//!    extensions, magic/version/length skews, CRC-region flips, splices of
//!    two valid inputs, zeroed/duplicated windows, pure garbage;
//! 3. feeds each mutant to the matching decoder under
//!    [`std::panic::catch_unwind`] with a wall-clock budget and asserts the
//!    decoder **returns** — `Ok` on still-valid bytes or a `PdsError` — and
//!    never panics, never stalls, and (for the CRC-carrying formats: segment
//!    blobs, the manifest, WAL frames) **never classifies an input whose
//!    CRC-protected bytes were flipped as valid**;
//! 4. fuzzes **recovery**: a durable store directory is cloned per case,
//!    one on-disk file is mutated or deleted, and
//!    `SynopsisStore::open_with_wal` must return (store or error) without
//!    panicking, without inventing acknowledged records, and without
//!    producing non-finite estimates.
//!
//! Failures are minimised by bounded truncation/zeroing and written to the
//! corpus directory; `replay_corpus` re-runs every checked-in corpus file
//! and is wired into `cargo test` as a regression gate.

use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pds_core::generator::test_workloads;
use pds_core::metrics::ErrorMetric;
use pds_core::stream::StreamRecord;
use pds_histogram::{build_histogram, Histogram};
use pds_server::proto;
use pds_store::blob;
use pds_store::manifest::Manifest;
use pds_store::wal::{self, FrameOutcome};
use pds_store::{PartitionSpec, Segment, StoreConfig, SynopsisKind, SynopsisStore, WalSync};
use pds_wavelet::{build_sse_wavelet, WaveletSynopsis};

/// Decoder targets.  Every public deserialisation surface of the workspace
/// has one entry; `Blob`, `Manifest` and `WalFrame` carry CRCs and are held
/// to the stricter corrupted-CRC-must-reject contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `Histogram::from_binary` (PDSH envelope, float buckets).
    Hist,
    /// `Histogram::from_binary` on the compact varint encoding.
    HistCompact,
    /// `WaveletSynopsis::from_binary` (PDSW envelope).
    Wav,
    /// `Segment::from_binary` (PDSG envelope).
    Seg,
    /// `Segment::from_blob` (v2 `PDSB` block container, or the v1 PDSG
    /// envelope + whole-input CRC trailer).
    Blob,
    /// `blob::decode_blob_meta` (footer + meta block only — the lazy-open
    /// path, which never reads the synopsis block).
    BlobMeta,
    /// `SynopsisStore::from_binary` (PDST envelope).
    Store,
    /// `Manifest::parse_bytes` (PDSM envelope + per-record CRCs).
    ManifestBytes,
    /// `wal::parse_frame_line` (`r <len> <crc32> <payload>` text frame).
    WalFrame,
    /// `pds_server::proto::parse_command_bytes` (one network command line).
    Cmd,
}

impl Kind {
    /// Stable tag used in corpus file names.
    pub fn tag(self) -> &'static str {
        match self {
            Kind::Hist => "hist",
            Kind::HistCompact => "histc",
            Kind::Wav => "wav",
            Kind::Seg => "seg",
            Kind::Blob => "blob",
            Kind::BlobMeta => "blobmeta",
            Kind::Store => "store",
            Kind::ManifestBytes => "manifest",
            Kind::WalFrame => "walframe",
            Kind::Cmd => "cmd",
        }
    }

    fn from_tag(tag: &str) -> Option<Kind> {
        Some(match tag {
            "hist" => Kind::Hist,
            "histc" => Kind::HistCompact,
            "wav" => Kind::Wav,
            "seg" => Kind::Seg,
            "blob" => Kind::Blob,
            "blobmeta" => Kind::BlobMeta,
            "store" => Kind::Store,
            "manifest" => Kind::ManifestBytes,
            "walframe" => Kind::WalFrame,
            "cmd" => Kind::Cmd,
            _ => return None,
        })
    }

    /// Whether every byte of the encoding is covered by a checksum, making
    /// "a single bit flip must be rejected" a hard invariant.  `BlobMeta`
    /// is deliberately *not* listed even though its input is a full blob
    /// image: the metadata decoder never reads the synopsis block, so a
    /// flip there is invisible to it by design (the block's own CRC catches
    /// it at load time).
    fn crc_protected(self) -> bool {
        matches!(self, Kind::Blob | Kind::ManifestBytes | Kind::WalFrame)
    }
}

/// Fuzzer configuration; `..Default::default()` friendly.
pub struct FuzzConfig {
    /// Decoder mutations to run.
    pub iters: u64,
    /// Deterministic seed; the same `(seed, iters)` replays byte-for-byte.
    pub seed: u64,
    /// Where failures (and `--emit-corpus` samples) are written.  `None`
    /// disables corpus writes.
    pub corpus_dir: Option<PathBuf>,
    /// Recovery-directory cases; `None` derives `iters / 200`.
    pub recovery_cases: Option<u64>,
    /// Per-decode wall-clock budget; slower counts as a hang.
    pub max_decode_millis: u64,
    /// Also write one valid seed and a few rejected mutants per target into
    /// the corpus (used once to generate the checked-in regression corpus).
    pub emit_samples: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 50_000,
            seed: 0xC0DE,
            corpus_dir: None,
            recovery_cases: None,
            // Decodes are microseconds; whole seconds on a loaded CI box
            // still means a pathological blow-up, not noise.
            max_decode_millis: 2_000,
            emit_samples: false,
        }
    }
}

/// One reproducible failure: the mutant that triggered it and its minimised
/// form (bounded truncation + zeroing that preserves the failure).
pub struct FuzzFailure {
    /// Failure class: `panic`, `hang`, `crc-accept`, `recovery-panic`,
    /// `recovery-overcount`, `recovery-nonfinite`, `corpus`.
    pub kind: &'static str,
    /// Human-readable description (target, mutation, seed index).
    pub what: String,
    /// The full failing input.
    pub input: Vec<u8>,
    /// The minimised failing input (equals `input` when minimisation could
    /// not shrink it).
    pub minimized: Vec<u8>,
}

/// Aggregate counters for one fuzz run.
#[derive(Default)]
pub struct FuzzOutcome {
    /// Mutations executed.
    pub mutations: u64,
    /// Mutants the decoder rejected with a `PdsError` (or non-`Record`
    /// frame outcome / invalid UTF-8 for WAL frames).
    pub rejected: u64,
    /// Mutants that still decoded as valid (e.g. payload-only skews on
    /// formats without whole-input checksums).
    pub accepted_valid: u64,
    /// Mutations that flipped CRC-protected bytes of a checksummed format.
    pub crc_mutations: u64,
    /// How many of those the decoder rejected — must equal `crc_mutations`.
    pub crc_rejected: u64,
    /// Recovery-directory cases executed.
    pub recovery_cases: u64,
    /// All failures, already minimised.
    pub failures: Vec<FuzzFailure>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// A valid encoder output plus the byte range a strict CRC-flip mutation
/// may target (for WAL frames only the payload field qualifies: flipping
/// bit 5 of a lowercase hex digit in the *stored* checksum field yields the
/// same number in uppercase, which is not corruption).
struct SeedInput {
    kind: Kind,
    bytes: Vec<u8>,
    strict_range: Option<(usize, usize)>,
}

impl SeedInput {
    fn plain(kind: Kind, bytes: Vec<u8>) -> SeedInput {
        let strict_range = kind.crc_protected().then_some((0, bytes.len()));
        SeedInput {
            kind,
            bytes,
            strict_range,
        }
    }

    /// A framed WAL line; the strict range is the payload field.
    fn frame(line: String) -> SeedInput {
        let bytes = line.into_bytes();
        // "r <len> <crc32> <payload>\n": payload starts after the third
        // space and the trailing newline is excluded.
        let mut spaces = 0usize;
        let mut payload_start = None;
        for (i, b) in bytes.iter().enumerate() {
            if *b == b' ' {
                spaces += 1;
                if spaces == 3 {
                    payload_start = Some(i + 1);
                    break;
                }
            }
        }
        let strict_range = payload_start
            .filter(|&s| s + 1 < bytes.len())
            .map(|s| (s, bytes.len() - 1));
        SeedInput {
            kind: Kind::WalFrame,
            bytes,
            strict_range,
        }
    }
}

/// The global fuzz lock: `run` swaps the process panic hook while decoding
/// mutants, which must not race with a concurrent run in the same process
/// (parallel `cargo test` binaries each get their own process, so only
/// same-binary tests contend here).
static FUZZ_LOCK: Mutex<()> = Mutex::new(());

/// Runs the configured fuzz campaign and returns the aggregate outcome.
/// Never panics on decoder misbehaviour — misbehaviour is *recorded* in
/// [`FuzzOutcome::failures`].
pub fn run(config: &FuzzConfig) -> FuzzOutcome {
    let _guard = FUZZ_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let start = Instant::now();
    let mut outcome = FuzzOutcome::default();

    let seeds = match seed_inputs(config.seed) {
        Ok(seeds) => seeds,
        Err(e) => {
            outcome.failures.push(FuzzFailure {
                kind: "corpus",
                what: format!("building seed artefacts failed: {e}"),
                input: Vec::new(),
                minimized: Vec::new(),
            });
            outcome.elapsed = start.elapsed();
            return outcome;
        }
    };

    if let (true, Some(dir)) = (config.emit_samples, config.corpus_dir.as_deref()) {
        emit_valid_samples(&seeds, dir);
    }

    // Panic messages from caught decoder panics are noise (and would drown
    // the report at 50k iterations); silence the hook for the campaign.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut rng = StdRng::seed_from_u64(config.seed);
    let budget = Duration::from_millis(config.max_decode_millis);
    let mut emitted_rejects = 0usize;
    for _ in 0..config.iters {
        let seed_ix = rng.gen_range(0..seeds.len());
        let other_ix = rng.gen_range(0..seeds.len());
        let seed = &seeds[seed_ix];
        let (mutation, mutant, strict) = mutate(&mut rng, seed, &seeds[other_ix].bytes);
        outcome.mutations += 1;
        if strict {
            outcome.crc_mutations += 1;
        }
        let (verdict, spent) = decode_guarded(seed.kind, &mutant);
        let describe = format!(
            "target={} mutation={mutation} seed-artefact={seed_ix} ({} bytes)",
            seed.kind.tag(),
            mutant.len()
        );
        if spent > budget {
            outcome.failures.push(FuzzFailure {
                kind: "hang",
                what: format!("decode took {spent:?} (budget {budget:?}): {describe}"),
                minimized: Vec::new(),
                input: mutant.clone(),
            });
        }
        match verdict {
            Verdict::Panicked => {
                let minimized = minimize(seed.kind, &mutant, Verdict::Panicked);
                outcome.failures.push(FuzzFailure {
                    kind: "panic",
                    what: format!("decoder panicked: {describe}"),
                    input: mutant,
                    minimized,
                });
            }
            Verdict::Valid if strict => {
                outcome.failures.push(FuzzFailure {
                    kind: "crc-accept",
                    what: format!("corrupted CRC-protected bytes accepted: {describe}"),
                    minimized: mutant.clone(),
                    input: mutant,
                });
            }
            Verdict::Valid => outcome.accepted_valid += 1,
            Verdict::Rejected => {
                outcome.rejected += 1;
                if strict {
                    outcome.crc_rejected += 1;
                }
                if config.emit_samples && emitted_rejects < 16 {
                    if let Some(dir) = config.corpus_dir.as_deref() {
                        let name = format!("{}__reject__{emitted_rejects:03}.bin", seed.kind.tag());
                        if fs::write(dir.join(name), &mutant).is_ok() {
                            emitted_rejects += 1;
                        }
                    }
                }
            }
        }
        // A pathological campaign (every mutant failing) should not OOM the
        // harness collecting millions of artefacts.
        if outcome.failures.len() >= 64 {
            break;
        }
    }

    let recovery_cases = config.recovery_cases.unwrap_or(config.iters / 200);
    fuzz_recovery(&mut rng, recovery_cases, config.seed, &mut outcome);

    panic::set_hook(prev_hook);

    if let Some(dir) = config.corpus_dir.as_deref() {
        write_failures(dir, &outcome.failures);
    }
    outcome.elapsed = start.elapsed();
    outcome
}

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

/// Builds one valid artefact per encoder through the real construction
/// paths (never hand-rolled bytes, so format evolution cannot silently
/// desynchronise the fuzzer).
fn seed_inputs(seed: u64) -> pds_core::error::Result<Vec<SeedInput>> {
    let mut seeds = Vec::new();
    let workloads = test_workloads(32, 11);
    for (i, workload) in workloads.iter().take(3).enumerate() {
        let hist = build_histogram(&workload.relation, ErrorMetric::Sse, 4 + i)?;
        seeds.push(SeedInput::plain(Kind::Hist, hist.to_binary()?));
        seeds.push(SeedInput::plain(
            Kind::HistCompact,
            hist.to_binary_compact()?,
        ));
        let wav = build_sse_wavelet(&workload.relation, 8)?;
        seeds.push(SeedInput::plain(Kind::Wav, wav.to_binary()?));
        let seg = Segment::build(
            0,
            40 + i as u64,
            &workload.relation,
            SynopsisKind::Histogram(ErrorMetric::Sse),
            6,
        )?;
        seeds.push(SeedInput::plain(Kind::Seg, seg.to_binary()?));
        seeds.push(SeedInput::plain(Kind::Blob, seg.to_blob()?));
        seeds.push(SeedInput::plain(Kind::BlobMeta, seg.to_blob()?));
    }
    let wavelet_seg = Segment::build(0, 9, &workloads[0].relation, SynopsisKind::Wavelet, 8)?;
    seeds.push(SeedInput::plain(Kind::Seg, wavelet_seg.to_binary()?));
    seeds.push(SeedInput::plain(Kind::Blob, wavelet_seg.to_blob()?));
    seeds.push(SeedInput::plain(Kind::BlobMeta, wavelet_seg.to_blob()?));

    let store = SynopsisStore::new(store_config()?)?;
    store.ingest_all(recovery_workload())?;
    store.seal_all()?;
    seeds.push(SeedInput::plain(Kind::Store, store.to_binary()?));

    // A real MANIFEST with installs and a compaction-style replace, built
    // through the manifest's own API in a scratch directory.
    let dir = scratch_dir("manifest-seed", seed);
    {
        let (mut manifest, _) = Manifest::open(&dir, WalSync::Flush)?;
        manifest.install(0, 1)?;
        manifest.install(1, 1)?;
        manifest.install(0, 2)?;
        manifest.replace(0, &[1, 2], 3)?;
    }
    let bytes = fs::read(dir.join("MANIFEST")).map_err(|e| {
        pds_core::error::PdsError::InvalidParameter {
            message: format!("fuzz: cannot read seed MANIFEST: {e}"),
        }
    })?;
    let _ = fs::remove_dir_all(&dir);
    seeds.push(SeedInput::plain(Kind::ManifestBytes, bytes));

    for record in [
        StreamRecord::Basic {
            item: 3,
            prob: 0.625,
        },
        StreamRecord::Alternatives(vec![(1, 0.25), (7, 0.5)]),
        StreamRecord::ValueDistribution {
            item: 12,
            entries: vec![(2.0, 0.5), (5.0, 0.25)],
        },
    ] {
        seeds.push(SeedInput::frame(wal::frame_record(&record)?));
    }

    // Network command lines: one valid seed per verb so mutations explore
    // every arm of the server's decode surface.
    for line in [
        &b"PING\n"[..],
        b"EST 17\n",
        b"RANGE 3 250\n",
        b"STATS\n",
        b"MERGE 8\n",
        b"INGEST 1024\n",
        b"SEAL\n",
        b"FLUSH\n",
        b"SNAPSHOT\n",
        b"QUIT\n",
    ] {
        seeds.push(SeedInput::plain(Kind::Cmd, line.to_vec()));
    }
    Ok(seeds)
}

fn store_config() -> pds_core::error::Result<StoreConfig> {
    Ok(StoreConfig::new(
        PartitionSpec::uniform(32, 2)?,
        6,
        32,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    ))
}

/// Deterministic ingest workload (dyadic probabilities, both partitions,
/// enough records to seal several segments at threshold 6).
fn recovery_workload() -> Vec<StreamRecord> {
    const PROBS: [f64; 4] = [0.5, 0.25, 0.75, 0.125];
    (0..26)
        .map(|i| StreamRecord::Basic {
            item: if i % 3 == 0 { 16 + i % 8 } else { i % 8 },
            prob: PROBS[i % PROBS.len()],
        })
        .collect()
}

fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("pds-analyze-{tag}-{seed:x}-{}", std::process::id()))
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

/// Applies one structure-aware mutation.  Returns the mutation name, the
/// mutant, and whether the mutation provably corrupted CRC-protected bytes
/// (same length, at least one bit flipped inside the seed's strict range).
fn mutate(rng: &mut StdRng, seed: &SeedInput, other: &[u8]) -> (&'static str, Vec<u8>, bool) {
    let bytes = &seed.bytes;
    // Bit flips get double weight: they drive the strict CRC invariant.
    let op = match rng.gen_range(0..12u32) {
        0 | 1 => 0,
        n => n - 1,
    };
    match op {
        0 => {
            let (name, range) = match seed.strict_range {
                Some(range) => ("bit-flip(crc-protected)", range),
                None => ("bit-flip", (0, bytes.len())),
            };
            let (lo, hi) = range;
            if lo >= hi {
                return ("garbage", garbage(rng), false);
            }
            let mut out = bytes.clone();
            let pos = rng.gen_range(lo..hi);
            out[pos] ^= 1 << rng.gen_range(0..8u32);
            (name, out, seed.strict_range.is_some())
        }
        1 => {
            let cut = rng.gen_range(0..bytes.len().max(1));
            ("truncate", bytes[..cut.min(bytes.len())].to_vec(), false)
        }
        2 => {
            let mut out = bytes.clone();
            for _ in 0..rng.gen_range(1..33u32) {
                out.push(rng.gen_range(0..256u32) as u8);
            }
            ("extend", out, false)
        }
        3 => {
            // Magic skew: corrupt the 4-byte envelope tag.
            let mut out = bytes.clone();
            if out.len() >= 4 {
                let pos = rng.gen_range(0..4usize);
                out[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            ("magic-skew", out, false)
        }
        4 => {
            // Version skew: overwrite the u16 after the magic.
            let mut out = bytes.clone();
            if out.len() >= 6 {
                let v = rng.gen_range(0..65_536u32) as u16;
                out[4..6].copy_from_slice(&v.to_le_bytes());
            }
            ("version-skew", out, false)
        }
        5 => {
            // Length skew: saturate a 4-byte window, hitting the
            // length-prefix fields of the binio encodings.
            let mut out = bytes.clone();
            if !out.is_empty() {
                let pos = rng.gen_range(0..out.len());
                let end = (pos + 4).min(out.len());
                out[pos..end].fill(0xFF);
            }
            ("length-skew", out, false)
        }
        6 => {
            // CRC-region flip: a bit in the final 8 bytes (the trailer of
            // blob/manifest encodings).
            let mut out = bytes.clone();
            if !out.is_empty() {
                let lo = out.len().saturating_sub(8);
                let pos = rng.gen_range(lo..out.len());
                out[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            ("crc-region-flip", out, false)
        }
        7 => {
            // Splice: prefix of this seed + suffix of another valid input.
            let k = rng.gen_range(0..bytes.len().min(other.len()).max(1));
            let mut out = bytes[..k.min(bytes.len())].to_vec();
            out.extend_from_slice(&other[k.min(other.len())..]);
            ("splice", out, false)
        }
        8 => ("garbage", garbage(rng), false),
        9 => {
            let mut out = bytes.clone();
            if !out.is_empty() {
                let pos = rng.gen_range(0..out.len());
                let end = (pos + rng.gen_range(1..17usize)).min(out.len());
                out[pos..end].fill(0);
            }
            ("zero-window", out, false)
        }
        _ => {
            let mut out = bytes.clone();
            if !out.is_empty() {
                let pos = rng.gen_range(0..out.len());
                let end = (pos + rng.gen_range(1..17usize)).min(out.len());
                let window = out[pos..end].to_vec();
                let at = rng.gen_range(0..out.len() + 1);
                drop(out.splice(at..at, window));
            }
            ("dup-window", out, false)
        }
    }
}

fn garbage(rng: &mut StdRng) -> Vec<u8> {
    (0..rng.gen_range(0..200usize))
        .map(|_| rng.gen_range(0..256u32) as u8)
        .collect()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Valid,
    Rejected,
    Panicked,
}

/// Decodes under `catch_unwind`, timing the call.
fn decode_guarded(kind: Kind, bytes: &[u8]) -> (Verdict, Duration) {
    let start = Instant::now();
    let result = panic::catch_unwind(AssertUnwindSafe(|| decode_once(kind, bytes)));
    let spent = start.elapsed();
    let verdict = match result {
        Ok(true) => Verdict::Valid,
        Ok(false) => Verdict::Rejected,
        Err(_) => Verdict::Panicked,
    };
    (verdict, spent)
}

/// One decode; `true` iff the bytes were accepted as valid.  Accepted
/// values are exercised (re-encoded or queried) so "decodes but explodes on
/// first use" also counts as a failure.
fn decode_once(kind: Kind, bytes: &[u8]) -> bool {
    match kind {
        Kind::Hist | Kind::HistCompact => match Histogram::from_binary(bytes) {
            Ok(h) => {
                let _ = h.to_binary();
                true
            }
            Err(_) => false,
        },
        Kind::Wav => match WaveletSynopsis::from_binary(bytes) {
            Ok(w) => {
                let _ = w.to_binary();
                true
            }
            Err(_) => false,
        },
        Kind::Seg => match Segment::from_binary(bytes) {
            Ok(s) => {
                let _ = s.records();
                true
            }
            Err(_) => false,
        },
        Kind::Blob => match Segment::from_blob(bytes) {
            Ok(s) => {
                let _ = s.to_blob();
                true
            }
            Err(_) => false,
        },
        Kind::BlobMeta => match blob::decode_blob_meta(bytes) {
            Ok(meta) => {
                // Exercise the decoded value the way a pruned query would.
                let _ = meta.prune.may_overlap(meta.start, 0, usize::MAX);
                let _ = meta.records;
                true
            }
            Err(_) => false,
        },
        Kind::Store => match SynopsisStore::from_binary(bytes) {
            Ok(s) => {
                let _ = s.range_estimate(0, 0);
                true
            }
            Err(_) => false,
        },
        Kind::ManifestBytes => Manifest::parse_bytes(bytes).is_ok(),
        Kind::WalFrame => match std::str::from_utf8(bytes) {
            Ok(text) => matches!(
                wal::parse_frame_line(text.trim_end_matches(['\r', '\n'])),
                FrameOutcome::Record(_)
            ),
            // A byte mutation that breaks UTF-8 is rejected before framing.
            Err(_) => false,
        },
        // The server's command parser is total: arbitrary bytes must parse
        // or reject, never panic — the `ERR`-line-and-survive contract.
        Kind::Cmd => proto::parse_command_bytes(bytes).is_ok(),
    }
}

// ---------------------------------------------------------------------------
// Minimisation
// ---------------------------------------------------------------------------

/// Bounded minimisation: repeatedly truncate from the end (halving steps),
/// then zero single bytes, keeping any shrink that preserves the verdict.
/// Capped at 256 decode attempts so a hostile input cannot stall the run.
fn minimize(kind: Kind, input: &[u8], want: Verdict) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut attempts = 0usize;
    let reproduces = |candidate: &[u8], attempts: &mut usize| {
        *attempts += 1;
        decode_guarded(kind, candidate).0 == want
    };
    // Truncation: drop ever-smaller tails.
    let mut chunk = best.len() / 2;
    while chunk > 0 && attempts < 192 {
        let candidate = &best[..best.len() - chunk.min(best.len())];
        if reproduces(candidate, &mut attempts) {
            best = candidate.to_vec();
        } else {
            chunk /= 2;
        }
    }
    // Zeroing: normalise payload bytes that do not matter.
    let mut pos = 0usize;
    while pos < best.len() && attempts < 256 {
        if best[pos] != 0 {
            let saved = best[pos];
            best[pos] = 0;
            if !reproduces(&best.clone(), &mut attempts) {
                best[pos] = saved;
            }
        }
        pos += 1;
    }
    best
}

// ---------------------------------------------------------------------------
// Recovery fuzzing
// ---------------------------------------------------------------------------

/// Clones a real durable store directory per case, mutates (or deletes) one
/// on-disk file, and asserts `open_with_wal` returns without panicking,
/// never recovers more records than were ever acknowledged, and never
/// serves non-finite estimates.
fn fuzz_recovery(rng: &mut StdRng, cases: u64, seed: u64, outcome: &mut FuzzOutcome) {
    if cases == 0 {
        return;
    }
    let workload = recovery_workload();
    let base = scratch_dir("recovery-base", seed);
    let _ = fs::remove_dir_all(&base);
    let built = (|| -> pds_core::error::Result<()> {
        let store = SynopsisStore::open_with_wal(store_config()?, &base)?;
        store.ingest_all(workload.iter().cloned())?;
        store.flush()?;
        Ok(())
    })();
    if let Err(e) = built {
        outcome.failures.push(FuzzFailure {
            kind: "corpus",
            what: format!("building the recovery base store failed: {e}"),
            input: Vec::new(),
            minimized: Vec::new(),
        });
        return;
    }

    for case in 0..cases {
        let dir = std::env::temp_dir().join(format!(
            "pds-analyze-recovery-{seed:x}-{case}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        if copy_dir(&base, &dir).is_err() {
            break;
        }
        // Pick one durable file and damage it.
        let mut names: Vec<String> = match fs::read_dir(&dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect(),
            Err(_) => break,
        };
        names.sort();
        if names.is_empty() {
            break;
        }
        let victim = dir.join(&names[rng.gen_range(0..names.len())]);
        let describe;
        if rng.gen_range(0..8u32) == 0 {
            describe = format!("deleted {}", victim.display());
            let _ = fs::remove_file(&victim);
        } else {
            let original = fs::read(&victim).unwrap_or_default();
            let seed_input = SeedInput {
                kind: Kind::Store,
                bytes: original,
                strict_range: None,
            };
            let (mutation, mutant, _) = mutate(rng, &seed_input, &[]);
            describe = format!("mutation={mutation} on {}", victim.display());
            let _ = fs::write(&victim, &mutant);
        }
        outcome.recovery_cases += 1;

        let opened = panic::catch_unwind(AssertUnwindSafe(|| {
            SynopsisStore::open_with_wal(store_config()?, &dir)
        }));
        match opened {
            Err(_) => outcome.failures.push(FuzzFailure {
                kind: "recovery-panic",
                what: format!("open_with_wal panicked; case {case}: {describe}"),
                input: Vec::new(),
                minimized: Vec::new(),
            }),
            Ok(Err(_)) => outcome.rejected += 1,
            Ok(Ok(store)) => {
                outcome.accepted_valid += 1;
                let recovered = store.stats().ingested_records;
                if recovered as usize > workload.len() {
                    outcome.failures.push(FuzzFailure {
                        kind: "recovery-overcount",
                        what: format!(
                            "recovered {recovered} records, only {} acknowledged; \
                             case {case}: {describe}",
                            workload.len()
                        ),
                        input: Vec::new(),
                        minimized: Vec::new(),
                    });
                }
                let estimate = store.range_estimate(0, 31);
                if !estimate.is_finite() || estimate < 0.0 {
                    outcome.failures.push(FuzzFailure {
                        kind: "recovery-nonfinite",
                        what: format!(
                            "range_estimate(0, 31) = {estimate}; case {case}: {describe}"
                        ),
                        input: Vec::new(),
                        minimized: Vec::new(),
                    });
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
        if outcome.failures.len() >= 64 {
            break;
        }
    }
    let _ = fs::remove_dir_all(&base);
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

fn emit_valid_samples(seeds: &[SeedInput], dir: &Path) {
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut per_kind = std::collections::BTreeMap::new();
    for seed in seeds {
        let n = per_kind.entry(seed.kind.tag()).or_insert(0usize);
        let name = format!("{}__valid__{n:03}.bin", seed.kind.tag());
        if fs::write(dir.join(name), &seed.bytes).is_ok() {
            *n += 1;
        }
    }
}

fn write_failures(dir: &Path, failures: &[FuzzFailure]) {
    if failures.iter().all(|f| f.minimized.is_empty()) {
        return;
    }
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    for (i, f) in failures.iter().enumerate() {
        if f.minimized.is_empty() {
            continue;
        }
        let _ = fs::write(
            dir.join(format!("fail__{}__{i:03}.bin", f.kind)),
            &f.minimized,
        );
    }
}

/// Replays every checked-in corpus file.  File names encode the expectation:
/// `<kind>__valid__NNN.bin` must decode, `<kind>__reject__NNN.bin` must be
/// rejected, anything else (e.g. `fail__…`) only needs to neither panic nor
/// hang.  Returns the number of files replayed or the list of violations.
pub fn replay_corpus(dir: &Path) -> Result<usize, Vec<String>> {
    let _guard = FUZZ_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut names: Vec<String> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".bin"))
            .collect(),
        Err(e) => return Err(vec![format!("cannot read corpus {}: {e}", dir.display())]),
    };
    names.sort();
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut errors = Vec::new();
    let mut replayed = 0usize;
    for name in &names {
        let Ok(bytes) = fs::read(dir.join(name)) else {
            errors.push(format!("{name}: unreadable"));
            continue;
        };
        let mut parts = name.trim_end_matches(".bin").split("__");
        let (tag, expect) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        let kinds: Vec<Kind> = match Kind::from_tag(tag) {
            Some(kind) => vec![kind],
            // `fail__<kind>__NNN.bin`: the second field is the failure
            // class, not a decoder; replay against every decoder.
            None => vec![
                Kind::Hist,
                Kind::HistCompact,
                Kind::Wav,
                Kind::Seg,
                Kind::Blob,
                Kind::BlobMeta,
                Kind::Store,
                Kind::ManifestBytes,
                Kind::WalFrame,
                Kind::Cmd,
            ],
        };
        for kind in kinds {
            let (verdict, spent) = decode_guarded(kind, &bytes);
            replayed += 1;
            match verdict {
                Verdict::Panicked => {
                    errors.push(format!("{name}: panicked in {} decoder", kind.tag()));
                }
                Verdict::Valid if expect == "reject" => {
                    errors.push(format!("{name}: decoded valid, expected rejection"));
                }
                Verdict::Rejected if expect == "valid" => {
                    errors.push(format!("{name}: rejected, expected valid"));
                }
                _ => {}
            }
            if spent > Duration::from_secs(5) {
                errors.push(format!("{name}: decode took {spent:?}"));
            }
        }
    }
    panic::set_hook(prev_hook);
    if errors.is_empty() {
        Ok(replayed)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_valid_and_deterministic() {
        let a = seed_inputs(1).unwrap();
        let b = seed_inputs(1).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.bytes, y.bytes, "seed artefacts must be deterministic");
            let (verdict, _) = decode_guarded(x.kind, &x.bytes);
            assert!(
                matches!(verdict, Verdict::Valid),
                "unmutated {} seed must decode",
                x.kind.tag()
            );
        }
    }

    #[test]
    fn walframe_strict_range_covers_payload_only() {
        let line = wal::frame_record(&StreamRecord::Basic { item: 1, prob: 0.5 }).unwrap();
        let seed = SeedInput::frame(line.clone());
        let (lo, hi) = seed.strict_range.expect("frame has a payload");
        // Everything before the strict range is the "r <len> <crc> " header.
        let header = &line.as_bytes()[..lo];
        assert_eq!(header.iter().filter(|&&b| b == b' ').count(), 3);
        assert_eq!(hi, line.len() - 1, "trailing newline excluded");
    }

    #[test]
    fn single_bit_flips_in_crc_protected_bytes_reject() {
        // The strict invariant, checked exhaustively on small seeds rather
        // than statistically: every single-bit flip of a blob, manifest, or
        // WAL-frame payload must be rejected.
        let seeds = seed_inputs(2).unwrap();
        for seed in seeds.iter().filter(|s| s.kind.crc_protected()) {
            let (lo, hi) = seed.strict_range.unwrap();
            for pos in lo..hi {
                for bit in 0..8 {
                    let mut mutant = seed.bytes.clone();
                    mutant[pos] ^= 1 << bit;
                    let (verdict, _) = decode_guarded(seed.kind, &mutant);
                    assert!(
                        matches!(verdict, Verdict::Rejected),
                        "{}: flip at byte {pos} bit {bit} was not rejected",
                        seed.kind.tag()
                    );
                }
            }
        }
    }

    #[test]
    fn mutation_stream_is_deterministic() {
        let seeds = seed_inputs(3).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|_| {
                    let i = rng.gen_range(0..seeds.len());
                    let j = rng.gen_range(0..seeds.len());
                    mutate(&mut rng, &seeds[i], &seeds[j].bytes).1
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
