//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p pds-analyze -- check [--root <dir>]
//! cargo run -p pds-analyze -- fuzz [--iters N] [--seed S] [--corpus <dir>]
//! ```
//!
//! `check` exits non-zero when any rule fires; `fuzz` exits non-zero when
//! any mutation panics, hangs, or a corrupted CRC is accepted.

// Printing diagnostics to stdout is this binary's product; the workspace
// denies `print_stdout` for library code.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use pds_analyze::{fuzz, rules};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("fuzz") => run_fuzz(&args[1..]),
        _ => {
            eprintln!("usage: pds-analyze <check [--root DIR] | fuzz [--iters N] [--seed S] [--corpus DIR]>");
            ExitCode::from(2)
        }
    }
}

/// Default workspace root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let root = flag_value(args, "--root")
        .map(PathBuf::from)
        .unwrap_or_else(default_root);
    let report = match rules::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pds-analyze: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!(
            "{}:{}:{}: [{}] {}",
            d.file, d.line, d.col, d.rule, d.message
        );
    }
    if !report.allows.is_empty() {
        println!("recorded allows ({}):", report.allows.len());
        for a in &report.allows {
            println!(
                "  {}:{}: allow({}) used {}x — {}",
                a.file, a.line, a.rule, a.uses, a.justification
            );
        }
    }
    println!(
        "pds-analyze: {} file(s), {} finding(s), {} allow(s)",
        report.files_scanned,
        report.diagnostics.len(),
        report.allows.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let iters = flag_value(args, "--iters")
        .and_then(parse_u64)
        .unwrap_or(50_000);
    let seed = flag_value(args, "--seed")
        .and_then(parse_u64)
        .unwrap_or(0xC0DE);
    let corpus = flag_value(args, "--corpus")
        .map(PathBuf::from)
        .unwrap_or_else(|| default_root().join("crates/analyze/corpus"));
    let config = fuzz::FuzzConfig {
        iters,
        seed,
        corpus_dir: Some(corpus.clone()),
        emit_samples: args.iter().any(|a| a == "--emit-corpus"),
        ..fuzz::FuzzConfig::default()
    };
    println!(
        "pds-analyze fuzz: iters={iters} seed={seed:#x} corpus={}",
        corpus.display()
    );
    let outcome = fuzz::run(&config);
    let secs = outcome.elapsed.as_secs_f64().max(1e-9);
    println!(
        "pds-analyze fuzz: {} mutations in {:.2}s ({:.0} mutations/s); \
         {} rejected as PdsError, {} decoded valid, {} corrupted-CRC inputs \
         (all rejected: {}), {} recovery cases",
        outcome.mutations,
        secs,
        outcome.mutations as f64 / secs,
        outcome.rejected,
        outcome.accepted_valid,
        outcome.crc_mutations,
        outcome.crc_mutations == outcome.crc_rejected,
        outcome.recovery_cases,
    );
    if outcome.failures.is_empty() {
        println!("pds-analyze fuzz: no panics, no hangs, no silent CRC accepts");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            println!(
                "FAILURE [{}] {} (input {} bytes, minimised {} bytes)",
                f.kind,
                f.what,
                f.input.len(),
                f.minimized.len()
            );
        }
        ExitCode::FAILURE
    }
}
