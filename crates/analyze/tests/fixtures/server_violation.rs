//! Fixture: the whole `pds-server` crate is on the serving-path contract —
//! panics anywhere in non-test code, and I/O while the connection-queue
//! mutex is held, must fire.

pub fn reply(values: &[f64], idx: usize) -> f64 {
    values[idx]
}

pub fn drain(queue: &std::sync::Mutex<Vec<u8>>, out: &mut dyn std::io::Write) {
    let guard = queue.lock().unwrap();
    out.write_all(&guard).unwrap();
}
