//! Fixture: panic-freedom is scoped to the query-path functions of
//! `store.rs` — seeds inside `range_estimate` fire; the same shapes in
//! the write path (`ingest`) stay silent, as writers must panic on poison.

pub fn range_estimate(lo: usize, hi: usize) -> f64 {
    let v = vec![1.0, 2.0];
    let first = v[lo];
    let last = v.get(hi).copied().unwrap();
    first + last
}

pub fn ingest(item: usize) -> f64 {
    let v = vec![1.0, 2.0];
    let sum = v[item] + v.get(item).copied().unwrap();
    panic!("writers may panic on poisoned state: {sum}")
}
