// Fixture for the crash-coverage rule.  Analysed with the synthetic path
// `crates/store/src/crash_fixture.rs` alongside a miniature crash-matrix
// model; never compiled.

use pds_core::vfs;

pub fn publish_unlabelled(dir: &Path) -> Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    vfs::write("site", &tmp, b"x")?;
    vfs::rename("site", &tmp, dir.join("MANIFEST"))?; // VIOLATION: no crash point
    Ok(())
}

pub fn publish_labelled(dir: &Path) -> Result<()> {
    let tmp = dir.join("seg.tmp");
    vfs::write("site", &tmp, b"x")?;
    crate::crashpoint::reached("fixture-covered");
    vfs::rename("site", &tmp, dir.join("seg.bin"))?; // fine: labelled above
    Ok(())
}

pub fn stray_label() {
    // VIOLATION: this label is missing from the crash-matrix test.
    crate::crashpoint::reached("not-in-matrix");
}
