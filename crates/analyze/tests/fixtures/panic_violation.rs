// Fixture for the panic-freedom rule.  Analysed with the synthetic path
// `crates/core/src/binio.rs` (one of the rule's scoped files); never
// compiled.

pub fn decode(bytes: &[u8]) -> u8 {
    let first = bytes[0]; // VIOLATION: index without a visible guard
    let second = bytes.iter().next().unwrap(); // VIOLATION: unwrap
    panic!("boom"); // VIOLATION: panic macro
}

pub fn guarded(bytes: &[u8]) -> u8 {
    if bytes.len() > 2 {
        bytes[2] // fine: a length check is in scope
    } else {
        0
    }
}

pub fn masked(bytes: &[u8; 8], i: usize) -> u8 {
    bytes[i % 8] // fine: modulus bounds the index
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1).unwrap(); // fine: tests are exempt
    }
}
