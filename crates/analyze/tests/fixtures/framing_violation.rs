// Fixture for the binio-framing rule.  Analysed with the synthetic path
// `crates/core/src/framing_fixture.rs`; never compiled.

const ORPHAN_MAGIC: [u8; 4] = *b"ORPH";
const PAIRED_MAGIC: [u8; 4] = *b"PAIR";

pub fn write_orphan(n: u64) -> Result<Vec<u8>> {
    // VIOLATION: no ByteReader::envelope anywhere checks ORPHAN_MAGIC.
    let mut w = ByteWriter::envelope(ORPHAN_MAGIC, 1);
    w.put_varint(n);
    Ok(w.into_bytes())
}

pub fn write_paired(n: u64) -> Result<Vec<u8>> {
    let mut w = ByteWriter::envelope(PAIRED_MAGIC, 1);
    w.put_varint(n);
    Ok(w.into_bytes())
}

pub fn read_paired(bytes: &[u8]) -> Result<u64> {
    let (mut r, version) = ByteReader::envelope(bytes, "paired", PAIRED_MAGIC)?;
    // VIOLATION: a length-prefixed read happens before any version check.
    let n = r.get_varint()?;
    if version != 1 {
        return Err(bad_version());
    }
    Ok(n)
}

pub fn seal_payload(bytes: &mut Vec<u8>) {
    // VIOLATION: this crate appends a CRC but no function verifies one.
    append_crc32(bytes);
}
