// Fixture for allow suppression and the allow-discipline rule.  Analysed
// with the synthetic path `crates/store/src/wal.rs` (a panic-freedom
// scoped file); never compiled.

pub fn line_scoped(bytes: &[u8]) -> u8 {
    // analyze:allow(panic-freedom) fixture: the preceding parse guarantees one byte
    bytes[0]
}

// analyze:allow(panic-freedom) fixture: whole-function suppression
pub fn fn_scoped(bytes: &[u8]) -> u8 {
    bytes.iter().next().unwrap()
}

pub fn unjustified(x: u8) -> u8 {
    // analyze:allow(panic-freedom)
    x + 1
}
