// Fixture for the lock-discipline rule.  Analysed with the synthetic path
// `crates/store/src/lock_fixture.rs`; never compiled.

use pds_core::vfs;

pub fn bad_hold(store: &Store) {
    let mut shard = store.shards[0].write();
    vfs::rename("site", "a", "b").ok(); // VIOLATION: file I/O while `shard` is held
    shard.push(1);
}

pub fn bad_nested(store: &Store) {
    let a = store.shards[0].read();
    let b = store.shards[1].read(); // VIOLATION: nested lock acquisition
    a.len() + b.len()
}

pub fn good_scoped(store: &Store) {
    let task = {
        let mut shard = store.shards[0].write();
        shard.take()
    };
    // Guard dropped with the block: I/O here is fine.
    vfs::rename("site", "a", "b").ok();
    task
}

pub fn good_early_drop(store: &Store) {
    let shard = store.shards[0].read();
    let n = shard.len();
    drop(shard);
    vfs::rename("site", "a", "b").ok(); // fine: guard explicitly dropped
    n
}
