//! Fixture: telemetry-pairing.  `good_*` observations carry visible
//! start evidence; the seeded `.observe(` in `bad_observes_literal` has
//! none and must be the only finding.

fn good_observes_with_stopwatch(hist: &LatencyHistogram, sw: Stopwatch) {
    hist.observe(sw);
}

fn good_observes_after_maybe_start(tel: &Telemetry) {
    let sw = tel.maybe_start();
    if let Some(sw) = sw {
        tel.seconds.observe(sw);
    }
}

fn bad_observes_literal(hist: &LatencyHistogram) {
    hist.observe(42);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt(hist: &LatencyHistogram) {
        hist.observe(7);
    }
}
