//! Fixture: vfs-discipline.  Direct filesystem calls in non-test store
//! code are findings; vfs-routed calls, justified allows and test code
//! are clean.

use pds_core::vfs;
use std::fs::{self, File, OpenOptions};

pub fn bad_direct_write(path: &Path) -> io::Result<()> {
    fs::write(path, b"x") // VIOLATION: bypasses the vfs passthrough
}

pub fn bad_direct_create(path: &Path) -> io::Result<File> {
    File::create(path) // VIOLATION: invisible to the fault matrix
}

pub fn bad_direct_open(path: &Path) -> io::Result<File> {
    OpenOptions::new().append(true).open(path) // VIOLATION: skips retry
}

pub fn good_routed(path: &Path) -> io::Result<()> {
    vfs::write("blob-write", path, b"x")
}

pub fn good_allowed(path: &Path) -> u64 {
    // analyze:allow(vfs-discipline) fixture: metadata probe, no durable bytes move
    fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_stages_fixtures_directly() {
        std::fs::write("scratch", b"x").unwrap();
    }
}
