// Miniature crash-matrix model for the crash-coverage fixture.  Analysed
// with the synthetic path `crates/store/tests/store_crash_matrix.rs`;
// never compiled.

const MATRIX: [Row; 1] = [Row {
    label: "fixture-covered",
    at: 1,
    serial_count: 0,
}];
