//! Fuzz regression gates, run by plain `cargo test`:
//!
//! * every checked-in corpus file under `crates/analyze/corpus/` replays
//!   against its decoder — `__valid__` files must decode, `__reject__`
//!   files must be rejected, and nothing may panic or stall;
//! * a deterministic smoke campaign (a scaled-down version of the CI
//!   `fuzz --iters 50000` job) must finish with zero failures.

use std::path::Path;

use pds_analyze::fuzz::{self, FuzzConfig};

#[test]
fn corpus_replays_clean() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    match fuzz::replay_corpus(&corpus) {
        Ok(replayed) => assert!(
            replayed >= 54,
            "corpus shrank: only {replayed} replays ran — were files deleted?"
        ),
        Err(errors) => panic!("corpus regression:\n{}", errors.join("\n")),
    }
}

#[test]
fn fuzz_smoke_finds_nothing() {
    let outcome = fuzz::run(&FuzzConfig {
        iters: 2_000,
        seed: 0xC0DE,
        corpus_dir: None,
        recovery_cases: Some(8),
        ..FuzzConfig::default()
    });
    assert_eq!(outcome.mutations, 2_000);
    assert_eq!(outcome.recovery_cases, 8);
    assert!(
        outcome.crc_mutations > 0,
        "the campaign must exercise CRC-protected targets"
    );
    assert_eq!(
        outcome.crc_mutations, outcome.crc_rejected,
        "every corrupted-CRC input must be rejected"
    );
    let failures: Vec<&str> = outcome.failures.iter().map(|f| f.what.as_str()).collect();
    assert!(
        failures.is_empty(),
        "fuzz smoke found decoder misbehaviour:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fuzz_is_deterministic_per_seed() {
    let run = |seed| {
        let o = fuzz::run(&FuzzConfig {
            iters: 500,
            seed,
            corpus_dir: None,
            recovery_cases: Some(0),
            ..FuzzConfig::default()
        });
        (
            o.rejected,
            o.accepted_valid,
            o.crc_mutations,
            o.crc_rejected,
        )
    };
    assert_eq!(run(7), run(7), "identical seeds must replay identically");
    assert_ne!(run(7), run(8), "different seeds must diverge");
}
