//! Fixture tests: each file under `tests/fixtures/` seeds known violations
//! (and known-clean neighbours) for one rule; the analyzer must fire on
//! every seeded span — exact line and rule — and stay silent on the rest.
//!
//! Fixtures are lexed, never compiled: they are fed to the rule engine
//! under synthetic workspace-relative paths so the path-scoped rules
//! (lock-discipline, panic-freedom, crash-coverage) see them as the files
//! they impersonate.

use pds_analyze::rules::{
    self, Report, SourceModel, RULE_ALLOW, RULE_CRASH, RULE_FRAMING, RULE_LOCK, RULE_PANIC,
    RULE_TELEMETRY, RULE_VFS,
};

fn analyze(files: &[(&str, &str)]) -> Report {
    let models: Vec<SourceModel> = files
        .iter()
        .map(|(path, source)| SourceModel::new(*path, source))
        .collect();
    rules::analyze_sources(&models)
}

/// `(line, rule)` pairs of every finding, sorted as reported.
fn findings(report: &Report) -> Vec<(u32, &'static str)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn lock_discipline_fires_on_seeded_spans_only() {
    let report = analyze(&[(
        "crates/store/src/lock_fixture.rs",
        include_str!("fixtures/lock_violation.rs"),
    )]);
    assert_eq!(
        findings(&report),
        vec![(8, RULE_LOCK), (14, RULE_LOCK)],
        "expected exactly the I/O-under-guard and nested-acquisition seeds: {:#?}",
        report.diagnostics
    );
}

#[test]
fn panic_freedom_fires_on_seeded_spans_only() {
    let report = analyze(&[(
        "crates/core/src/binio.rs",
        include_str!("fixtures/panic_violation.rs"),
    )]);
    assert_eq!(
        findings(&report),
        vec![(6, RULE_PANIC), (7, RULE_PANIC), (8, RULE_PANIC)],
        "expected the unguarded index, unwrap, and panic! seeds: {:#?}",
        report.diagnostics
    );
}

#[test]
fn query_path_scoping_fires_inside_query_fns_only() {
    let report = analyze(&[(
        "crates/store/src/store.rs",
        include_str!("fixtures/query_path_violation.rs"),
    )]);
    assert_eq!(
        findings(&report),
        vec![(7, RULE_PANIC), (8, RULE_PANIC)],
        "expected the index and unwrap seeds inside `range_estimate` only \
         (the identical shapes in `ingest` are write-path): {:#?}",
        report.diagnostics
    );
}

#[test]
fn server_crate_is_wholly_on_the_serving_path_contract() {
    let report = analyze(&[(
        "crates/server/src/conn_fixture.rs",
        include_str!("fixtures/server_violation.rs"),
    )]);
    assert_eq!(
        findings(&report),
        vec![
            (6, RULE_PANIC),
            (10, RULE_PANIC),
            (11, RULE_LOCK),
            (11, RULE_PANIC),
        ],
        "expected write_all under the connection mutex plus the three \
         panic seeds: {:#?}",
        report.diagnostics
    );
}

#[test]
fn binio_framing_fires_on_seeded_spans_only() {
    let report = analyze(&[(
        "crates/core/src/framing_fixture.rs",
        include_str!("fixtures/framing_violation.rs"),
    )]);
    let got = findings(&report);
    assert_eq!(
        got,
        vec![(9, RULE_FRAMING), (23, RULE_FRAMING), (30, RULE_FRAMING)],
        "expected the orphan writer, version-unchecked reader, and \
         verifier-less CRC producer seeds: {:#?}",
        report.diagnostics
    );
}

#[test]
fn crash_coverage_fires_on_seeded_spans_only() {
    let report = analyze(&[
        (
            "crates/store/src/crash_fixture.rs",
            include_str!("fixtures/crash_violation.rs"),
        ),
        (
            "crates/store/tests/store_crash_matrix.rs",
            include_str!("fixtures/crash_matrix_fixture.rs"),
        ),
    ]);
    assert_eq!(
        findings(&report),
        vec![(10, RULE_CRASH), (24, RULE_CRASH)],
        "expected the unlabelled publish and the stray label seeds: {:#?}",
        report.diagnostics
    );
}

#[test]
fn telemetry_pairing_fires_on_seeded_spans_only() {
    let report = analyze(&[(
        "crates/store/src/telemetry_fixture.rs",
        include_str!("fixtures/telemetry_pairing.rs"),
    )]);
    assert_eq!(
        findings(&report),
        vec![(17, RULE_TELEMETRY)],
        "expected only the evidence-free `.observe(` seed (the Stopwatch \
         parameter, the maybe_start call, and the test mod are clean): {:#?}",
        report.diagnostics
    );
}

#[test]
fn vfs_discipline_fires_on_seeded_spans_only() {
    let report = analyze(&[(
        "crates/store/src/vfs_fixture.rs",
        include_str!("fixtures/vfs_violation.rs"),
    )]);
    assert_eq!(
        findings(&report),
        vec![(9, RULE_VFS), (13, RULE_VFS), (17, RULE_VFS)],
        "expected the direct fs::/File::/OpenOptions:: seeds only (the \
         vfs-routed call, the justified allow, and the test mod are \
         clean): {:#?}",
        report.diagnostics
    );
    let allow = report
        .allows
        .iter()
        .find(|a| a.rule == RULE_VFS)
        .expect("the vfs-discipline allow must be recorded");
    assert_eq!(allow.uses, 1, "the allow must suppress the metadata probe");
}

#[test]
fn allows_suppress_and_are_recorded() {
    let report = analyze(&[(
        "crates/store/src/wal.rs",
        include_str!("fixtures/allow_suppression.rs"),
    )]);
    // The two justified allows suppress their findings; the only remaining
    // diagnostics are allow-discipline complaints about the unjustified
    // (and therefore also unused) allow on line 16.
    for d in &report.diagnostics {
        assert_eq!(d.rule, RULE_ALLOW, "unexpected finding: {d:?}");
        assert_eq!(d.line, 16, "unexpected finding: {d:?}");
    }
    assert!(
        !report.diagnostics.is_empty(),
        "the empty-justification allow must be reported"
    );
    let used: Vec<(u32, usize)> = report.allows.iter().map(|a| (a.line, a.uses)).collect();
    assert!(
        used.contains(&(6, 1)) && used.contains(&(10, 1)),
        "both justified allows must be recorded with one use each: {used:?}"
    );
}

#[test]
fn live_workspace_is_clean() {
    // The canonical acceptance check, as a test: the real workspace must
    // analyse clean (every surviving finding is either fixed or carries a
    // justified allow).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let report = rules::check_workspace(root).expect("workspace walk");
    assert!(
        report.is_clean(),
        "the workspace must pass its own invariant checker: {:#?}",
        report.diagnostics
    );
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    for allow in &report.allows {
        assert!(
            !allow.justification.is_empty() && allow.uses > 0,
            "allow without justification or use survived: {allow:?}"
        );
    }
}
