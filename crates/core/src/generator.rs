//! Synthetic workload generators mirroring the data sets of the paper's
//! experimental evaluation (Section 5).
//!
//! The paper uses two data sets that are not redistributable:
//!
//! * the MystiQ movie-link data — ~127,000 basic-model tuples over ~27,700
//!   distinct items, where each item's tuples describe uncertain matches
//!   between a movie database and an e-commerce inventory;
//! * an uncertain TPC-H `lineitem-partkey` relation produced by the MayBMS
//!   generator, interpreted as tuple-pdf tuples with uniform probabilities
//!   over each tuple's alternatives.
//!
//! [`mystiq_like`] and [`tpch_like`] generate data with the same shape
//! (heavy-tailed per-item duplication, uniform-alternative x-tuples) and the
//! same scale parameters, as recorded in DESIGN.md.  Additional generators
//! produce value-pdf inputs and deterministic Zipf data used by unit tests,
//! examples and ablation benchmarks.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{BasicModel, ProbabilisticRelation, TuplePdfModel, ValuePdf, ValuePdfModel};

/// Parameters of the MystiQ-like basic-model generator.
#[derive(Debug, Clone, Copy)]
pub struct MystiqLikeConfig {
    /// Domain size (number of distinct items).
    pub n: usize,
    /// Average number of uncertain tuples (candidate matches) per item.
    pub avg_tuples_per_item: f64,
    /// Zipf-like skew of the per-item tuple counts (0 = uniform, larger =
    /// heavier tail).
    pub skew: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for MystiqLikeConfig {
    fn default() -> Self {
        // Defaults scaled to the paper: m ≈ 127k tuples over 27.7k items
        // gives ~4.6 tuples/item on average.
        MystiqLikeConfig {
            n: 27_700,
            avg_tuples_per_item: 4.6,
            skew: 0.8,
            seed: 42,
        }
    }
}

/// Generates a basic-model relation shaped like the MystiQ movie-link data:
/// every item has a heavy-tailed number of candidate-match tuples, each
/// present with an independent match probability.
pub fn mystiq_like(config: MystiqLikeConfig) -> BasicModel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n.max(1);
    let mut tuples = Vec::new();
    // Per-item tuple counts follow a truncated power law so that a few items
    // have many candidate matches while most have a handful, as in record
    // linkage outputs.
    let zipf_weights: Vec<f64> = (1..=n)
        .map(|r| 1.0 / (r as f64).powf(config.skew))
        .collect();
    let mean_weight: f64 = zipf_weights.iter().sum::<f64>() / n as f64;
    for item in 0..n {
        // Shuffle which rank each item gets so the heavy items are spread over
        // the domain rather than clustered at the start.
        let rank = rng.gen_range(0..n);
        let scaled = config.avg_tuples_per_item * zipf_weights[rank] / mean_weight;
        let count = sample_poisson(&mut rng, scaled.max(0.05)).min(64);
        for _ in 0..count {
            // Match probabilities cluster around moderate confidence.
            let prob: f64 = sample_beta_like(&mut rng, 2.0, 3.0);
            tuples.push((item, prob.clamp(0.01, 1.0)));
        }
    }
    BasicModel::from_pairs(n, tuples).expect("generated probabilities are valid")
}

/// Parameters of the TPC-H/MayBMS-like tuple-pdf generator.
#[derive(Debug, Clone, Copy)]
pub struct TpchLikeConfig {
    /// Domain size (number of distinct part keys).
    pub n: usize,
    /// Number of uncertain tuples (line items).
    pub tuples: usize,
    /// Maximum number of alternatives per tuple (each tuple draws between one
    /// and this many, uniform probability over the chosen alternatives).
    pub max_alternatives: usize,
    /// Locality of the alternatives: each tuple's alternatives are drawn from
    /// a window of this width around a random centre, mimicking the
    /// correlated key ranges of the MayBMS generator.  `0` means alternatives
    /// are spread over the whole domain.
    pub locality_window: usize,
    /// Zipf skew of the tuple centres over the domain.
    pub skew: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for TpchLikeConfig {
    fn default() -> Self {
        TpchLikeConfig {
            n: 10_000,
            tuples: 60_000,
            max_alternatives: 4,
            locality_window: 32,
            skew: 0.5,
            seed: 7,
        }
    }
}

/// Generates a tuple-pdf relation shaped like the MayBMS uncertain TPC-H
/// `lineitem-partkey` relation: each uncertain line item has a handful of
/// alternative part keys, all equally likely.
pub fn tpch_like(config: TpchLikeConfig) -> TuplePdfModel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n.max(1);
    let zipf = ZipfSampler::new(n, config.skew);
    let mut tuples = Vec::with_capacity(config.tuples);
    for _ in 0..config.tuples {
        let k = rng.gen_range(1..=config.max_alternatives.max(1));
        let centre = zipf.sample(&mut rng);
        let mut alternatives = Vec::with_capacity(k);
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..k {
            let item = if config.locality_window == 0 {
                rng.gen_range(0..n)
            } else {
                let w = config.locality_window as i64;
                let off = rng.gen_range(-w..=w);
                ((centre as i64 + off).rem_euclid(n as i64)) as usize
            };
            if used.insert(item) {
                alternatives.push(item);
            }
        }
        let p = 1.0 / alternatives.len() as f64;
        tuples.push(alternatives.into_iter().map(|i| (i, p)).collect::<Vec<_>>());
    }
    TuplePdfModel::from_alternatives(n, tuples).expect("generated probabilities are valid")
}

/// Parameters of the value-pdf generator.
#[derive(Debug, Clone, Copy)]
pub struct ValuePdfConfig {
    /// Domain size.
    pub n: usize,
    /// Maximum number of explicit `(frequency, probability)` entries per item.
    pub max_entries_per_item: usize,
    /// Largest frequency value generated.
    pub max_frequency: f64,
    /// Zipf skew of the per-item expected frequencies.
    pub skew: f64,
    /// Probability mass left implicit (assigned to frequency zero) on average.
    pub zero_mass: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for ValuePdfConfig {
    fn default() -> Self {
        ValuePdfConfig {
            n: 10_000,
            max_entries_per_item: 4,
            max_frequency: 16.0,
            skew: 1.0,
            zero_mass: 0.2,
            seed: 11,
        }
    }
}

/// Generates a value-pdf relation: sensor-style readings where each item's
/// frequency concentrates around a Zipf-decaying level with a few support
/// points.
pub fn zipf_value_pdf(config: ValuePdfConfig) -> ValuePdfModel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n.max(1);
    let mut items = Vec::with_capacity(n);
    for i in 0..n {
        let rank = (i + 1) as f64;
        let level = (config.max_frequency / rank.powf(config.skew)).max(0.5);
        let entries = rng.gen_range(1..=config.max_entries_per_item.max(1));
        let zero = (config.zero_mass * rng.gen::<f64>() * 2.0).min(0.95);
        let mut remaining = 1.0 - zero;
        let mut pairs = Vec::with_capacity(entries);
        for e in 0..entries {
            let p = if e + 1 == entries {
                remaining
            } else {
                let share = remaining * rng.gen_range(0.2..0.8);
                remaining -= share;
                share
            };
            // Frequencies jitter around the item's level; rounded to a small
            // grid so that |V| stays comparable to the integer-count models.
            let freq = (level * rng.gen_range(0.5..1.5) * 2.0).round() / 2.0;
            pairs.push((freq.max(0.0), p));
        }
        items.push(ValuePdf::new(pairs).expect("generated pdf is valid"));
    }
    ValuePdfModel::new(items)
}

/// Deterministic Zipf-distributed frequencies (useful for testing the
/// deterministic code paths and the wavelet transform on certain data).
pub fn deterministic_zipf(n: usize, max_frequency: f64, skew: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut freqs: Vec<f64> = (0..n)
        .map(|i| (max_frequency / ((i + 1) as f64).powf(skew)).round())
        .collect();
    // Random permutation so buckets are not trivially prefix-shaped.
    for i in (1..freqs.len()).rev() {
        let j = rng.gen_range(0..=i);
        freqs.swap(i, j);
    }
    freqs
}

/// A small named workload bundle used by examples, integration tests and the
/// benchmark harness.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable workload name.
    pub name: String,
    /// The generated relation.
    pub relation: ProbabilisticRelation,
}

/// Standard workloads at a reduced scale suitable for tests (small `n`).
pub fn test_workloads(n: usize, seed: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: format!("mystiq-like(n={n})"),
            relation: mystiq_like(MystiqLikeConfig {
                n,
                avg_tuples_per_item: 3.0,
                skew: 0.8,
                seed,
            })
            .into(),
        },
        Workload {
            name: format!("tpch-like(n={n})"),
            relation: tpch_like(TpchLikeConfig {
                n,
                tuples: n * 3,
                max_alternatives: 3,
                locality_window: 8,
                skew: 0.5,
                seed,
            })
            .into(),
        },
        Workload {
            name: format!("zipf-value-pdf(n={n})"),
            relation: zipf_value_pdf(ValuePdfConfig {
                n,
                max_entries_per_item: 3,
                max_frequency: 8.0,
                skew: 1.0,
                zero_mass: 0.3,
                seed,
            })
            .into(),
        },
    ]
}

fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    // Knuth's algorithm; lambda values here are small (< 100).
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

fn sample_beta_like<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    // Approximate Beta(alpha, beta) sampling via the ratio of Gamma-like
    // sums of exponentials; adequate for workload shaping.
    let a = sample_gamma_like(rng, alpha);
    let b = sample_gamma_like(rng, beta);
    if a + b == 0.0 {
        0.5
    } else {
        a / (a + b)
    }
}

fn sample_gamma_like<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    let whole = shape.floor() as usize;
    let frac = shape - whole as f64;
    let mut total = 0.0;
    for _ in 0..whole {
        total += -(rng.gen::<f64>().max(1e-12)).ln();
    }
    if frac > 0.0 {
        total += -(rng.gen::<f64>().max(1e-12)).ln() * frac;
    }
    total
}

/// Zipf-distributed index sampler with a precomputed cumulative distribution,
/// so drawing a sample is a binary search rather than a linear scan.
struct ZipfSampler {
    n: usize,
    skew: f64,
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, skew: f64) -> Self {
        let mut cdf = Vec::new();
        if skew > 0.0 {
            cdf.reserve(n);
            let mut acc = 0.0;
            for r in 1..=n {
                acc += 1.0 / (r as f64).powf(skew);
                cdf.push(acc);
            }
            let total = *cdf.last().unwrap_or(&1.0);
            for v in &mut cdf {
                *v /= total;
            }
        }
        ZipfSampler { n, skew, cdf }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.skew <= 0.0 || self.cdf.is_empty() {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        let rank = match self.cdf.binary_search_by(|v| v.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.n - 1),
        };
        // Spread ranks over the domain deterministically so the heavy items
        // are not clustered at the start.
        ((rank + 1) * (2654435761 % self.n.max(1))) % self.n
    }
}

impl Distribution<f64> for ValuePdf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_with(rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mystiq_like_has_expected_scale() {
        let config = MystiqLikeConfig {
            n: 500,
            avg_tuples_per_item: 4.0,
            skew: 0.8,
            seed: 1,
        };
        let data = mystiq_like(config);
        assert_eq!(data.n(), 500);
        // Average tuples per item within a factor of two of the target.
        let avg = data.m() as f64 / 500.0;
        assert!(avg > 1.0 && avg < 10.0, "avg tuples/item {avg}");
        for t in data.tuples() {
            assert!(t.prob > 0.0 && t.prob <= 1.0);
            assert!(t.item < 500);
        }
    }

    #[test]
    fn mystiq_like_is_deterministic_per_seed() {
        let c = MystiqLikeConfig {
            n: 200,
            avg_tuples_per_item: 2.0,
            skew: 0.5,
            seed: 99,
        };
        assert_eq!(mystiq_like(c), mystiq_like(c));
        let other = MystiqLikeConfig { seed: 100, ..c };
        assert_ne!(mystiq_like(c), mystiq_like(other));
    }

    #[test]
    fn tpch_like_tuples_are_uniform_and_local() {
        let config = TpchLikeConfig {
            n: 1000,
            tuples: 2000,
            max_alternatives: 4,
            locality_window: 16,
            skew: 0.5,
            seed: 3,
        };
        let data = tpch_like(config);
        assert_eq!(data.tuple_count(), 2000);
        for t in data.tuples() {
            let k = t.len();
            assert!((1..=4).contains(&k));
            for &(item, p) in t.alternatives() {
                assert!(item < 1000);
                assert!((p - 1.0 / k as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zipf_value_pdf_masses_are_valid() {
        let data = zipf_value_pdf(ValuePdfConfig {
            n: 300,
            max_entries_per_item: 4,
            max_frequency: 10.0,
            skew: 1.0,
            zero_mass: 0.3,
            seed: 5,
        });
        assert_eq!(data.n(), 300);
        for pdf in data.items() {
            assert!(pdf.explicit_mass() <= 1.0 + 1e-9);
            for &(v, p) in pdf.entries() {
                assert!(v >= 0.0);
                assert!(p > 0.0 && p <= 1.0);
            }
        }
        // Expected frequencies decay overall (first decile mean > last decile mean).
        let freqs = data.expected_frequencies();
        let head: f64 = freqs[..30].iter().sum::<f64>() / 30.0;
        let tail: f64 = freqs[270..].iter().sum::<f64>() / 30.0;
        assert!(head > tail);
    }

    #[test]
    fn deterministic_zipf_contains_expected_values() {
        let f = deterministic_zipf(64, 100.0, 1.0, 9);
        assert_eq!(f.len(), 64);
        assert!(f.contains(&100.0));
        assert!(f.iter().all(|&x| (0.0..=100.0).contains(&x)));
        // Deterministic per seed.
        assert_eq!(f, deterministic_zipf(64, 100.0, 1.0, 9));
    }

    #[test]
    fn test_workloads_cover_all_models() {
        let ws = test_workloads(64, 13);
        assert_eq!(ws.len(), 3);
        let names: Vec<&str> = ws.iter().map(|w| w.relation.model_name()).collect();
        assert!(names.contains(&"basic"));
        assert!(names.contains(&"tuple-pdf"));
        assert!(names.contains(&"value-pdf"));
        for w in &ws {
            assert_eq!(w.relation.n(), 64);
            assert!(w.relation.m() > 0);
        }
    }
}
