//! The frequency value domain `V` (Section 2.1 of the paper).
//!
//! Several of the histogram and wavelet algorithms search over the finite set
//! `V` of frequency values that any item can take with non-zero probability
//! (`|V| ≤ m`).  [`ValueDomain`] maintains that set sorted and deduplicated
//! and provides the index arithmetic used by the prefix-sum tables of the
//! SAE/SARE/MAE/MARE bucket-cost oracles.

use serde::{Deserialize, Serialize};

use crate::model::{ProbabilisticRelation, ValuePdfModel};

/// The sorted set of distinct frequency values appearing in a relation
/// (always containing zero, the implicit "absent" frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueDomain {
    values: Vec<f64>,
}

impl ValueDomain {
    /// Builds the value domain from per-item frequency pdfs.
    pub fn from_value_pdfs(pdfs: &ValuePdfModel) -> Self {
        let mut values: Vec<f64> = vec![0.0];
        for pdf in pdfs.items() {
            for &(v, p) in pdf.entries() {
                if p > 0.0 {
                    values.push(v);
                }
            }
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        values.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        ValueDomain { values }
    }

    /// Builds the value domain of any probabilistic relation (via its induced
    /// value pdfs).
    pub fn from_relation(relation: &ProbabilisticRelation) -> Self {
        Self::from_value_pdfs(&relation.induced_value_pdfs())
    }

    /// Builds a domain from an explicit list of values (zero is added if
    /// missing).
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut values: Vec<f64> = values.into_iter().collect();
        values.push(0.0);
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        values.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        ValueDomain { values }
    }

    /// The sorted distinct values `v_1 < v_2 < ... < v_{|V|}`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `|V|`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty (never true after construction — zero is
    /// always present).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at index `j` (0-based).
    pub fn value(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// Index of the given value, if it belongs to the domain.
    pub fn index_of(&self, value: f64) -> Option<usize> {
        self.values
            .binary_search_by(|v| v.partial_cmp(&value).expect("finite frequencies"))
            .ok()
            .or_else(|| self.values.iter().position(|&v| (v - value).abs() < 1e-12))
    }

    /// Index of the largest domain value that is `<= value`, or `None` when
    /// `value` is smaller than every domain value.
    pub fn floor_index(&self, value: f64) -> Option<usize> {
        match self
            .values
            .binary_search_by(|v| v.partial_cmp(&value).expect("finite frequencies"))
        {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// The largest value in the domain.
    pub fn max_value(&self) -> f64 {
        *self.values.last().expect("domain always contains zero")
    }

    /// Dense per-item probability rows: `rows[i][j] = Pr[g_i = v_j]`.
    ///
    /// Every row sums to one (the implicit zero mass is materialised).  This
    /// is the `O(n · |V|)` table underlying the SAE/SARE/MAE/MARE oracles.
    pub fn dense_probabilities(&self, pdfs: &ValuePdfModel) -> Vec<Vec<f64>> {
        pdfs.items()
            .iter()
            .map(|pdf| {
                let mut row = vec![0.0; self.values.len()];
                let full = pdf.with_explicit_zero();
                for &(v, p) in full.entries() {
                    let j = self
                        .index_of(v)
                        .expect("pdf value must belong to the value domain");
                    row[j] += p;
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BasicModel, ValuePdf};

    #[test]
    fn domain_of_paper_example_is_0_1_2() {
        let rel: ProbabilisticRelation =
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into();
        let dom = ValueDomain::from_relation(&rel);
        assert_eq!(dom.values(), &[0.0, 1.0, 2.0]);
        assert_eq!(dom.len(), 3);
        assert_eq!(dom.max_value(), 2.0);
    }

    #[test]
    fn index_arithmetic() {
        let dom = ValueDomain::from_values([3.0, 1.0, 2.0, 1.0]);
        assert_eq!(dom.values(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(dom.index_of(2.0), Some(2));
        assert_eq!(dom.index_of(2.5), None);
        assert_eq!(dom.floor_index(2.5), Some(2));
        assert_eq!(dom.floor_index(-0.5), None);
        assert_eq!(dom.floor_index(100.0), Some(3));
        assert_eq!(dom.floor_index(0.0), Some(0));
    }

    #[test]
    fn dense_probabilities_rows_sum_to_one() {
        let pdfs = ValuePdfModel::new(vec![
            ValuePdf::new([(1.0, 0.5)]).unwrap(),
            ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap(),
            ValuePdf::zero(),
        ]);
        let dom = ValueDomain::from_value_pdfs(&pdfs);
        let dense = dom.dense_probabilities(&pdfs);
        assert_eq!(dense.len(), 3);
        for row in &dense {
            assert_eq!(row.len(), dom.len());
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
        assert!((dense[1][dom.index_of(2.0).unwrap()] - 0.25).abs() < 1e-12);
        assert!((dense[2][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_is_always_present() {
        let dom = ValueDomain::from_values([5.0, 7.0]);
        assert_eq!(dom.values()[0], 0.0);
        let empty = ValueDomain::from_values(std::iter::empty());
        assert_eq!(empty.values(), &[0.0]);
        assert!(!empty.is_empty());
    }
}
