//! Possible-worlds semantics (Definition 4 and Example 1 of the paper).
//!
//! A probabilistic relation is a compact encoding of a probability
//! distribution over *possible worlds*, each of which is an ordinary
//! deterministic frequency vector `g ∈ R^n`.  This module provides
//!
//! * exhaustive enumeration of all possible worlds with their probabilities
//!   (feasible only for small inputs; used throughout the test suites to
//!   validate the closed-form cost expressions of the synopsis algorithms),
//! * Monte-Carlo sampling of a single possible world (the "Sampled World"
//!   baseline of the paper's experiments).

use rand::Rng;

use crate::error::{PdsError, Result};
use crate::model::ProbabilisticRelation;

/// Default cap on the number of enumerated worlds (not input size) —
/// enumeration beyond a few million worlds is pointless for testing.
pub const DEFAULT_WORLD_LIMIT: usize = 1 << 22;

/// The exhaustive set of possible worlds of a (small) probabilistic relation.
#[derive(Debug, Clone)]
pub struct PossibleWorlds {
    n: usize,
    worlds: Vec<(Vec<f64>, f64)>,
}

impl PossibleWorlds {
    /// Enumerates every possible world of `relation` together with its
    /// probability, failing if more than `limit` worlds would be produced.
    pub fn enumerate_with_limit(relation: &ProbabilisticRelation, limit: usize) -> Result<Self> {
        let n = relation.n();
        // Each "component" is an independent random choice with a small set of
        // outcomes; a world is one outcome per component.  Outcome = set of
        // (item, frequency increment) pairs.
        type Outcome = (Vec<(usize, f64)>, f64);
        let components: Vec<Vec<Outcome>> = match relation {
            ProbabilisticRelation::Basic(m) => m
                .tuples()
                .iter()
                .map(|t| vec![(vec![(t.item, 1.0)], t.prob), (vec![], 1.0 - t.prob)])
                .collect(),
            ProbabilisticRelation::TuplePdf(m) => m
                .tuples()
                .iter()
                .map(|t| {
                    let mut outcomes: Vec<(Vec<(usize, f64)>, f64)> = t
                        .alternatives()
                        .iter()
                        .map(|&(item, p)| (vec![(item, 1.0)], p))
                        .collect();
                    let null = t.null_probability();
                    if null > 0.0 {
                        outcomes.push((vec![], null));
                    }
                    outcomes
                })
                .collect(),
            ProbabilisticRelation::ValuePdf(m) => m
                .items()
                .iter()
                .enumerate()
                .map(|(i, pdf)| {
                    pdf.with_explicit_zero()
                        .entries()
                        .iter()
                        .map(|&(v, p)| (vec![(i, v)], p))
                        .collect()
                })
                .collect(),
        };

        // Estimate the number of worlds before materialising them.
        let mut estimate: usize = 1;
        for c in &components {
            estimate = estimate.saturating_mul(c.len().max(1));
            if estimate > limit {
                return Err(PdsError::TooManyWorlds {
                    components: components.len(),
                    limit,
                });
            }
        }

        let mut worlds: Vec<(Vec<f64>, f64)> = vec![(vec![0.0; n], 1.0)];
        for component in &components {
            let mut next = Vec::with_capacity(worlds.len() * component.len());
            for (freqs, prob) in &worlds {
                for (outcome, p) in component {
                    if *p <= 0.0 {
                        continue;
                    }
                    let mut f = freqs.clone();
                    for &(item, inc) in outcome {
                        f[item] += inc;
                    }
                    next.push((f, prob * p));
                }
            }
            worlds = next;
        }
        Ok(PossibleWorlds { n, worlds })
    }

    /// Enumerates with the [`DEFAULT_WORLD_LIMIT`].
    pub fn enumerate(relation: &ProbabilisticRelation) -> Result<Self> {
        Self::enumerate_with_limit(relation, DEFAULT_WORLD_LIMIT)
    }

    /// Domain size of the underlying relation.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All `(frequency vector, probability)` pairs.  Worlds produced by
    /// different component outcomes are *not* merged even when their
    /// frequency vectors coincide, mirroring the paper's remark that
    /// indistinguishable worlds are treated as identical (probabilities of
    /// identical vectors simply add up in every expectation).
    pub fn worlds(&self) -> &[(Vec<f64>, f64)] {
        &self.worlds
    }

    /// Number of enumerated worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether no world was enumerated (only possible for an empty relation).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Total probability mass — should always be 1 up to rounding.
    pub fn total_probability(&self) -> f64 {
        self.worlds.iter().map(|&(_, p)| p).sum()
    }

    /// The expectation `E_W[f]` of an arbitrary world functional (equation (1)
    /// of the paper).
    pub fn expectation<F: Fn(&[f64]) -> f64>(&self, f: F) -> f64 {
        self.worlds.iter().map(|(w, p)| p * f(w)).sum()
    }

    /// Per-item expected frequencies computed by brute force.
    pub fn expected_frequencies(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.expectation(|w| w[i])).collect()
    }

    /// Probability that the frequency vector equals `target` exactly (merging
    /// indistinguishable worlds).
    pub fn probability_of_world(&self, target: &[f64]) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| {
                w.len() == target.len() && w.iter().zip(target).all(|(a, b)| (a - b).abs() < 1e-12)
            })
            .map(|&(_, p)| p)
            .sum()
    }
}

/// Draws one possible world (a deterministic frequency vector) at random,
/// according to the relation's distribution.  This is the "Sampled World"
/// heuristic input of Section 5.
pub fn sample_world<R: Rng + ?Sized>(relation: &ProbabilisticRelation, rng: &mut R) -> Vec<f64> {
    let n = relation.n();
    let mut freqs = vec![0.0; n];
    match relation {
        ProbabilisticRelation::Basic(m) => {
            for t in m.tuples() {
                if rng.gen::<f64>() < t.prob {
                    freqs[t.item] += 1.0;
                }
            }
        }
        ProbabilisticRelation::TuplePdf(m) => {
            for t in m.tuples() {
                let mut u = rng.gen::<f64>();
                for &(item, p) in t.alternatives() {
                    if u < p {
                        freqs[item] += 1.0;
                        break;
                    }
                    u -= p;
                }
            }
        }
        ProbabilisticRelation::ValuePdf(m) => {
            for (i, pdf) in m.items().iter().enumerate() {
                freqs[i] = pdf.sample_with(rng.gen::<f64>());
            }
        }
    }
    freqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn basic_example() -> ProbabilisticRelation {
        BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
            .unwrap()
            .into()
    }

    fn tuple_example() -> ProbabilisticRelation {
        TuplePdfModel::from_alternatives(
            3,
            [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
        )
        .unwrap()
        .into()
    }

    fn value_example() -> ProbabilisticRelation {
        ValuePdfModel::from_sparse(
            3,
            [
                (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()),
                (2, ValuePdf::new([(1.0, 0.5)]).unwrap()),
            ],
        )
        .unwrap()
        .into()
    }

    #[test]
    fn basic_model_worlds_match_paper_example() {
        let worlds = PossibleWorlds::enumerate(&basic_example()).unwrap();
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        // Paper: Pr[∅] = 1/8, Pr[{1}] = 1/8, Pr[{1,2}] = 5/48, Pr[{1,2,2}] = 1/48.
        assert!((worlds.probability_of_world(&[0.0, 0.0, 0.0]) - 1.0 / 8.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 0.0, 0.0]) - 1.0 / 8.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 1.0, 0.0]) - 5.0 / 48.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 2.0, 0.0]) - 1.0 / 48.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[0.0, 1.0, 1.0]) - 5.0 / 48.0).abs() < 1e-12);
        // E[g1] = 1/2, E[g2] = 7/12 (paper notation; our items 0 and 1).
        let freqs = worlds.expected_frequencies();
        assert!((freqs[0] - 0.5).abs() < 1e-12);
        assert!((freqs[1] - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_model_worlds_match_paper_example() {
        let worlds = PossibleWorlds::enumerate(&tuple_example()).unwrap();
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        // Paper: Pr[∅] = 1/24, Pr[{1}] = 1/8, Pr[{2}] = 1/8, Pr[{3}] = 1/12,
        // Pr[{1,2}] = 1/8, Pr[{1,3}] = 1/4, Pr[{2,2}] = 1/12, Pr[{2,3}] = 1/6.
        assert!((worlds.probability_of_world(&[0.0, 0.0, 0.0]) - 1.0 / 24.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 0.0, 0.0]) - 1.0 / 8.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[0.0, 1.0, 0.0]) - 1.0 / 8.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[0.0, 0.0, 1.0]) - 1.0 / 12.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 1.0, 0.0]) - 1.0 / 8.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 0.0, 1.0]) - 1.0 / 4.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[0.0, 2.0, 0.0]) - 1.0 / 12.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[0.0, 1.0, 1.0]) - 1.0 / 6.0).abs() < 1e-12);
        let freqs = worlds.expected_frequencies();
        assert!((freqs[0] - 0.5).abs() < 1e-12);
        assert!((freqs[1] - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn value_model_worlds_match_paper_example() {
        let worlds = PossibleWorlds::enumerate(&value_example()).unwrap();
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        // Paper: Pr[∅] = 5/48, Pr[{1,2,2}] = 1/16, E[g2] = 5/6.
        assert!((worlds.probability_of_world(&[0.0, 0.0, 0.0]) - 5.0 / 48.0).abs() < 1e-12);
        assert!((worlds.probability_of_world(&[1.0, 2.0, 0.0]) - 1.0 / 16.0).abs() < 1e-12);
        let freqs = worlds.expected_frequencies();
        assert!((freqs[0] - 0.5).abs() < 1e-12);
        assert!((freqs[1] - 5.0 / 6.0).abs() < 1e-12);
        assert!((freqs[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn enumeration_respects_limit() {
        let big = BasicModel::from_pairs(4, (0..40).map(|i| (i % 4, 0.5))).unwrap();
        let res = PossibleWorlds::enumerate_with_limit(&big.into(), 1 << 10);
        assert!(matches!(res, Err(PdsError::TooManyWorlds { .. })));
    }

    #[test]
    fn expectation_matches_analytic_moments() {
        for rel in [basic_example(), tuple_example(), value_example()] {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let pdfs = rel.induced_value_pdfs();
            for i in 0..rel.n() {
                let brute_mean = worlds.expectation(|w| w[i]);
                let brute_ex2 = worlds.expectation(|w| w[i] * w[i]);
                assert!((brute_mean - pdfs.item(i).mean()).abs() < 1e-12);
                assert!((brute_ex2 - pdfs.item(i).second_moment()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sampled_worlds_have_unbiased_means() {
        let rel = tuple_example();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 40_000;
        let mut sums = vec![0.0; rel.n()];
        for _ in 0..trials {
            let w = sample_world(&rel, &mut rng);
            for (s, f) in sums.iter_mut().zip(&w) {
                *s += f;
            }
        }
        let expected = rel.expected_frequencies();
        for i in 0..rel.n() {
            let mean = sums[i] / trials as f64;
            assert!(
                (mean - expected[i]).abs() < 0.02,
                "item {i}: sampled mean {mean} vs expected {}",
                expected[i]
            );
        }
    }
}
