//! Tail bounds on item frequencies.
//!
//! Section 4.2 of the paper notes that, for the unrestricted non-SSE wavelet
//! problem, the range of candidate coefficient values can be bounded either
//! pessimistically (minimum/maximum possible frequencies) or with
//! high-probability ranges derived from Chernoff-style tail bounds, "since
//! tuples can be seen as binomial variables".  This module provides both:
//! per-item deterministic frequency ranges and Chernoff/Hoeffding bounds on
//! `Pr[g_i ≥ t]` for the basic and tuple-pdf models (where `g_i` is a sum of
//! independent Bernoulli contributions), together with high-probability
//! ranges usable to quantise coefficient search spaces.

use crate::model::ProbabilisticRelation;
use crate::moments::item_moments;

/// Deterministic (worst-case) frequency range of one item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyRange {
    /// Smallest frequency the item can take in any possible world.
    pub min: f64,
    /// Largest frequency the item can take in any possible world.
    pub max: f64,
}

/// The worst-case frequency range of every item (the "pessimistic" option of
/// Section 4.2).
pub fn frequency_ranges(relation: &ProbabilisticRelation) -> Vec<FrequencyRange> {
    let n = relation.n();
    match relation {
        ProbabilisticRelation::Basic(m) => {
            let mut max = vec![0.0f64; n];
            let mut min = vec![0.0f64; n];
            for t in m.tuples() {
                if t.prob > 0.0 {
                    max[t.item] += 1.0;
                }
                if t.prob >= 1.0 {
                    min[t.item] += 1.0;
                }
            }
            min.into_iter()
                .zip(max)
                .map(|(min, max)| FrequencyRange { min, max })
                .collect()
        }
        ProbabilisticRelation::TuplePdf(m) => {
            let mut max = vec![0.0f64; n];
            let mut min = vec![0.0f64; n];
            for t in m.tuples() {
                for &(item, p) in t.alternatives() {
                    if p > 0.0 {
                        max[item] += 1.0;
                    }
                    if p >= 1.0 {
                        min[item] += 1.0;
                    }
                }
            }
            min.into_iter()
                .zip(max)
                .map(|(min, max)| FrequencyRange { min, max })
                .collect()
        }
        ProbabilisticRelation::ValuePdf(m) => m
            .items()
            .iter()
            .map(|pdf| {
                let support = pdf.support();
                FrequencyRange {
                    min: support
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min)
                        .min(0.0),
                    max: support.iter().cloned().fold(0.0, f64::max),
                }
            })
            .collect(),
    }
}

/// A Chernoff upper bound on the upper tail `Pr[g_i ≥ t]` of a
/// Poisson-binomial frequency with mean `mu`: for `t > mu`,
/// `Pr[g ≥ t] ≤ exp(−mu) (e·mu / t)^t` (and 1 otherwise).
pub fn chernoff_upper_tail(mu: f64, t: f64) -> f64 {
    if t <= mu || t <= 0.0 {
        return 1.0;
    }
    if mu <= 0.0 {
        return 0.0;
    }
    // Standard multiplicative Chernoff bound written via the relative
    // deviation delta = t/mu - 1:
    // Pr[g >= (1+delta) mu] <= exp(-mu ((1+delta) ln(1+delta) - delta)).
    let ratio = t / mu;
    let exponent = mu * (ratio * ratio.ln() - (ratio - 1.0));
    (-exponent).exp().min(1.0)
}

/// A Hoeffding upper bound on `Pr[g_i ≥ t]` for a sum of `k` independent
/// `[0, 1]` contributions with mean `mu`: `exp(−2 (t − mu)² / k)`.
pub fn hoeffding_upper_tail(mu: f64, k: usize, t: f64) -> f64 {
    if t <= mu {
        return 1.0;
    }
    if k == 0 {
        return 0.0;
    }
    let d = t - mu;
    (-2.0 * d * d / k as f64).exp().min(1.0)
}

/// A per-item high-probability frequency range: the exact range for the value
/// pdf model, and the tighter of the worst-case and Chernoff-derived upper
/// limits for the Bernoulli-sum models, such that
/// `Pr[g_i outside the range] ≤ delta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HighProbabilityRange {
    /// Lower end of the range (zero for the Bernoulli-sum models).
    pub low: f64,
    /// Upper end of the range.
    pub high: f64,
    /// The failure probability the range was computed for.
    pub delta: f64,
}

/// Computes a high-probability frequency range for every item: the smallest
/// integer threshold whose Chernoff upper tail drops below `delta`, capped by
/// the worst-case range.
pub fn high_probability_ranges(
    relation: &ProbabilisticRelation,
    delta: f64,
) -> Vec<HighProbabilityRange> {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let worst_case = frequency_ranges(relation);
    let moments = item_moments(relation);
    worst_case
        .iter()
        .zip(&moments)
        .map(|(range, m)| {
            let mut high = range.max;
            // Walk integer thresholds upward from the mean until the tail
            // bound drops below delta.
            let mut t = m.mean.ceil().max(1.0);
            while t < range.max {
                if chernoff_upper_tail(m.mean, t) <= delta {
                    high = t;
                    break;
                }
                t += 1.0;
            }
            HighProbabilityRange {
                low: range.min,
                high,
                delta,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{mystiq_like, MystiqLikeConfig};
    use crate::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};
    use crate::worlds::PossibleWorlds;

    #[test]
    fn worst_case_ranges_cover_every_possible_world() {
        let relations: Vec<ProbabilisticRelation> = vec![
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into(),
            TuplePdfModel::from_alternatives(
                3,
                [vec![(0, 0.5), (1, 0.3)], vec![(1, 0.25), (2, 0.5)]],
            )
            .unwrap()
            .into(),
            ValuePdfModel::from_sparse(3, [(1, ValuePdf::new([(2.0, 0.4), (5.0, 0.1)]).unwrap())])
                .unwrap()
                .into(),
        ];
        for rel in relations {
            let ranges = frequency_ranges(&rel);
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            for (w, _) in worlds.worlds() {
                for (i, &g) in w.iter().enumerate() {
                    assert!(g >= ranges[i].min - 1e-12 && g <= ranges[i].max + 1e-12);
                }
            }
        }
    }

    #[test]
    fn certain_tuples_raise_the_minimum() {
        let rel: ProbabilisticRelation =
            BasicModel::from_pairs(2, [(0, 1.0), (0, 1.0), (0, 0.5), (1, 0.2)])
                .unwrap()
                .into();
        let ranges = frequency_ranges(&rel);
        assert_eq!(ranges[0].min, 2.0);
        assert_eq!(ranges[0].max, 3.0);
        assert_eq!(ranges[1].min, 0.0);
        assert_eq!(ranges[1].max, 1.0);
    }

    #[test]
    fn chernoff_bound_dominates_the_true_tail() {
        // Item with 6 tuples of probability 0.3: g ~ Binomial(6, 0.3).
        let rel: ProbabilisticRelation = BasicModel::from_pairs(1, (0..6).map(|_| (0usize, 0.3)))
            .unwrap()
            .into();
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        let mu = 1.8;
        for t in [2.0, 3.0, 4.0, 5.0, 6.0] {
            let true_tail = worlds.expectation(|w| if w[0] >= t { 1.0 } else { 0.0 });
            let bound = chernoff_upper_tail(mu, t);
            assert!(
                bound >= true_tail - 1e-12,
                "t={t}: bound {bound} < true {true_tail}"
            );
        }
        // The bound is trivial at or below the mean and shrinks with t.
        assert_eq!(chernoff_upper_tail(mu, 1.0), 1.0);
        assert!(chernoff_upper_tail(mu, 5.0) < chernoff_upper_tail(mu, 3.0));
        assert_eq!(chernoff_upper_tail(0.0, 3.0), 0.0);
    }

    #[test]
    fn hoeffding_bound_dominates_the_true_tail() {
        let rel: ProbabilisticRelation = BasicModel::from_pairs(1, (0..5).map(|_| (0usize, 0.4)))
            .unwrap()
            .into();
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        let mu = 2.0;
        for t in [3.0, 4.0, 5.0] {
            let true_tail = worlds.expectation(|w| if w[0] >= t { 1.0 } else { 0.0 });
            assert!(hoeffding_upper_tail(mu, 5, t) >= true_tail - 1e-12);
        }
        assert_eq!(hoeffding_upper_tail(2.0, 5, 1.0), 1.0);
        assert_eq!(hoeffding_upper_tail(2.0, 0, 3.0), 0.0);
    }

    #[test]
    fn high_probability_ranges_are_valid_and_tighter_than_worst_case() {
        // Item 0 has many low-probability tuples (the regime where Chernoff
        // ranges beat the worst case); item 1 has a handful.
        let mut pairs: Vec<(usize, f64)> = (0..30).map(|_| (0usize, 0.1)).collect();
        pairs.extend([(1, 0.6), (1, 0.3), (1, 0.8)]);
        let rel: ProbabilisticRelation = BasicModel::from_pairs(2, pairs).unwrap().into();
        let delta = 0.01;
        let hp = high_probability_ranges(&rel, delta);
        let worst = frequency_ranges(&rel);
        let pdfs = rel.induced_value_pdfs();
        for (i, r) in hp.iter().enumerate() {
            assert!(r.high <= worst[i].max + 1e-12);
            assert!(r.low >= worst[i].min - 1e-12);
            assert_eq!(r.delta, delta);
            // The exact (induced-pdf) probability of exceeding the range is
            // at most delta.
            let outside = pdfs.item(i).tail(r.high);
            assert!(outside <= delta + 1e-9, "item {i}: {outside} > {delta}");
        }
        // The heavy item gets a strictly tighter-than-worst-case high end.
        assert!(hp[0].high < worst[0].max - 1e-12);
        // The generated workload path also runs without panicking.
        let generated: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 12,
            avg_tuples_per_item: 6.0,
            skew: 0.3,
            seed: 5,
        })
        .into();
        assert_eq!(high_probability_ranges(&generated, 0.05).len(), 12);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        let rel: ProbabilisticRelation = BasicModel::from_pairs(1, [(0, 0.5)]).unwrap().into();
        let _ = high_probability_ranges(&rel, 0.0);
    }
}
