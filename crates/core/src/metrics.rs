//! Synopsis error metrics (Sections 2.2 and 2.3 of the paper).
//!
//! A synopsis approximates every item frequency `g_i` by an estimate `ĝ_i`.
//! The per-item *point error* `err(g_i, ĝ_i)` is combined either cumulatively
//! (`Σ_i E_W[err(g_i, ĝ_i)]`) or as a maximum (`max_i E_W[err(g_i, ĝ_i)]`).
//! The metrics considered by the paper are:
//!
//! | metric | point error |
//! |---|---|
//! | SSE  (sum squared error)           | `(g − ĝ)²` |
//! | SSRE (sum squared relative error)  | `(g − ĝ)² / max(c, |g|)²` |
//! | SAE  (sum absolute error)          | `|g − ĝ|` |
//! | SARE (sum absolute relative error) | `|g − ĝ| / max(c, |g|)` |
//! | MAE  (maximum absolute error)      | `|g − ĝ|`, combined with `max` |
//! | MARE (maximum absolute relative error) | `|g − ĝ| / max(c, |g|)`, combined with `max` |
//!
//! `c > 0` is the usual *sanity bound* preventing tiny frequencies from
//! dominating relative errors.

use serde::{Deserialize, Serialize};

use crate::model::ValuePdf;

/// Default sanity bound used when none is specified.
pub const DEFAULT_SANITY_BOUND: f64 = 1.0;

/// A synopsis error metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorMetric {
    /// Sum squared error.
    Sse,
    /// Sum squared relative error with sanity bound `c`.
    Ssre {
        /// Sanity bound.
        c: f64,
    },
    /// Sum absolute error.
    Sae,
    /// Sum absolute relative error with sanity bound `c`.
    Sare {
        /// Sanity bound.
        c: f64,
    },
    /// Maximum (over items) of the per-item expected absolute error.
    Mae,
    /// Maximum (over items) of the per-item expected absolute relative error.
    Mare {
        /// Sanity bound.
        c: f64,
    },
}

impl ErrorMetric {
    /// Whether per-item errors are combined by summation (`true`) or by
    /// taking the maximum (`false`).
    pub fn is_cumulative(&self) -> bool {
        !matches!(self, ErrorMetric::Mae | ErrorMetric::Mare { .. })
    }

    /// Whether the point error is relative (uses the sanity bound).
    pub fn is_relative(&self) -> bool {
        matches!(
            self,
            ErrorMetric::Ssre { .. } | ErrorMetric::Sare { .. } | ErrorMetric::Mare { .. }
        )
    }

    /// The sanity bound `c`, if the metric is relative.
    pub fn sanity_bound(&self) -> Option<f64> {
        match *self {
            ErrorMetric::Ssre { c } | ErrorMetric::Sare { c } | ErrorMetric::Mare { c } => Some(c),
            _ => None,
        }
    }

    /// The point error `err(actual, estimate)` of approximating frequency
    /// `actual` by `estimate`.
    pub fn point_error(&self, actual: f64, estimate: f64) -> f64 {
        let diff = actual - estimate;
        match *self {
            ErrorMetric::Sse => diff * diff,
            ErrorMetric::Ssre { c } => {
                let d = c.max(actual.abs());
                diff * diff / (d * d)
            }
            ErrorMetric::Sae | ErrorMetric::Mae => diff.abs(),
            ErrorMetric::Sare { c } | ErrorMetric::Mare { c } => diff.abs() / c.max(actual.abs()),
        }
    }

    /// The relative-error weight `w(g)` of the paper's Section 3.2/3.4:
    /// `1/max(c, |g|)²` for squared-relative metrics, `1/max(c, |g|)` for
    /// absolute-relative metrics and `1` otherwise.
    pub fn weight(&self, actual: f64) -> f64 {
        match *self {
            ErrorMetric::Sse | ErrorMetric::Sae | ErrorMetric::Mae => 1.0,
            ErrorMetric::Ssre { c } => {
                let d = c.max(actual.abs());
                1.0 / (d * d)
            }
            ErrorMetric::Sare { c } | ErrorMetric::Mare { c } => 1.0 / c.max(actual.abs()),
        }
    }

    /// The expected point error `E[err(g, estimate)]` of an item with
    /// frequency pdf `pdf`.
    pub fn expected_point_error(&self, pdf: &ValuePdf, estimate: f64) -> f64 {
        pdf.expect(|g| self.point_error(g, estimate))
    }

    /// Combines per-item (expected) errors into the overall synopsis error:
    /// summation for cumulative metrics, maximum for max-error metrics.
    pub fn combine(&self, per_item_errors: impl IntoIterator<Item = f64>) -> f64 {
        if self.is_cumulative() {
            per_item_errors.into_iter().sum()
        } else {
            per_item_errors.into_iter().fold(0.0, f64::max)
        }
    }

    /// Short machine-readable name (used in benchmark output and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorMetric::Sse => "sse",
            ErrorMetric::Ssre { .. } => "ssre",
            ErrorMetric::Sae => "sae",
            ErrorMetric::Sare { .. } => "sare",
            ErrorMetric::Mae => "mae",
            ErrorMetric::Mare { .. } => "mare",
        }
    }

    /// Parses a metric from its [`name`](ErrorMetric::name) plus a sanity
    /// bound (ignored for non-relative metrics).
    pub fn from_name(name: &str, c: f64) -> Option<ErrorMetric> {
        match name.to_ascii_lowercase().as_str() {
            "sse" => Some(ErrorMetric::Sse),
            "ssre" => Some(ErrorMetric::Ssre { c }),
            "sae" => Some(ErrorMetric::Sae),
            "sare" => Some(ErrorMetric::Sare { c }),
            "mae" => Some(ErrorMetric::Mae),
            "mare" => Some(ErrorMetric::Mare { c }),
            _ => None,
        }
    }

    /// All cumulative metrics with the given sanity bound, in the order used
    /// by Figure 2 of the paper.
    pub fn cumulative_metrics(c: f64) -> Vec<ErrorMetric> {
        vec![
            ErrorMetric::Ssre { c },
            ErrorMetric::Sse,
            ErrorMetric::Sare { c },
            ErrorMetric::Sae,
        ]
    }
}

impl std::fmt::Display for ErrorMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.sanity_bound() {
            Some(c) => write!(f, "{}(c={})", self.name(), c),
            None => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_errors_match_definitions() {
        assert_eq!(ErrorMetric::Sse.point_error(3.0, 1.0), 4.0);
        assert_eq!(ErrorMetric::Sae.point_error(3.0, 1.0), 2.0);
        assert_eq!(ErrorMetric::Mae.point_error(1.0, 3.0), 2.0);
        let ssre = ErrorMetric::Ssre { c: 0.5 };
        assert!((ssre.point_error(2.0, 1.0) - 0.25).abs() < 1e-12);
        // Sanity bound kicks in for small frequencies.
        assert!((ssre.point_error(0.0, 1.0) - 1.0 / 0.25).abs() < 1e-12);
        let sare = ErrorMetric::Sare { c: 1.0 };
        assert!((sare.point_error(4.0, 1.0) - 0.75).abs() < 1e-12);
        assert!((sare.point_error(0.5, 1.0) - 0.5).abs() < 1e-12);
        let mare = ErrorMetric::Mare { c: 2.0 };
        assert!((mare.point_error(1.0, 5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weights_match_point_errors() {
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 0.5 },
            ErrorMetric::Mae,
            ErrorMetric::Mare { c: 0.5 },
        ] {
            for actual in [0.0, 0.3, 1.0, 4.0] {
                for est in [0.0, 1.5, 3.0] {
                    let diff = match metric {
                        ErrorMetric::Sse | ErrorMetric::Ssre { .. } => {
                            (actual - est) * (actual - est)
                        }
                        _ => (actual - est_abs(est, actual)).abs(),
                    };
                    // weight * unweighted error == point error
                    let unweighted =
                        if matches!(metric, ErrorMetric::Sse | ErrorMetric::Ssre { .. }) {
                            diff
                        } else {
                            (actual - est).abs()
                        };
                    assert!(
                        (metric.weight(actual) * unweighted - metric.point_error(actual, est))
                            .abs()
                            < 1e-12
                    );
                }
            }
        }
        fn est_abs(est: f64, _actual: f64) -> f64 {
            est
        }
    }

    #[test]
    fn cumulative_vs_max_combination() {
        assert!(ErrorMetric::Sse.is_cumulative());
        assert!(ErrorMetric::Sare { c: 1.0 }.is_cumulative());
        assert!(!ErrorMetric::Mae.is_cumulative());
        assert!(!ErrorMetric::Mare { c: 1.0 }.is_cumulative());
        let errs = [1.0, 4.0, 2.0];
        assert_eq!(ErrorMetric::Sae.combine(errs), 7.0);
        assert_eq!(ErrorMetric::Mae.combine(errs), 4.0);
        assert_eq!(ErrorMetric::Mae.combine(std::iter::empty()), 0.0);
    }

    #[test]
    fn expected_point_error_uses_full_pdf() {
        let pdf = ValuePdf::new([(1.0, 0.5), (3.0, 0.25)]).unwrap();
        // Remaining 0.25 mass at zero.
        let expected_sae = 0.25 * 2.0 + 0.5 * 1.0 + 0.25 * 1.0;
        assert!((ErrorMetric::Sae.expected_point_error(&pdf, 2.0) - expected_sae).abs() < 1e-12);
        let expected_sse = 0.25 * 4.0 + 0.5 * 1.0 + 0.25 * 1.0;
        assert!((ErrorMetric::Sse.expected_point_error(&pdf, 2.0) - expected_sse).abs() < 1e-12);
    }

    #[test]
    fn names_round_trip() {
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 0.5 },
            ErrorMetric::Mae,
            ErrorMetric::Mare { c: 0.5 },
        ] {
            let parsed = ErrorMetric::from_name(metric.name(), 0.5).unwrap();
            assert_eq!(parsed, metric);
        }
        assert!(ErrorMetric::from_name("bogus", 1.0).is_none());
        assert_eq!(ErrorMetric::cumulative_metrics(1.0).len(), 4);
        assert_eq!(format!("{}", ErrorMetric::Ssre { c: 0.5 }), "ssre(c=0.5)");
        assert_eq!(format!("{}", ErrorMetric::Sse), "sse");
    }
}
