//! Per-item frequency moments used throughout the synopsis algorithms.
//!
//! For every model the mean, variance and second moment of each item's
//! frequency `g_i` admit closed forms computable in `O(m)` total time
//! (Section 3.1 of the paper):
//!
//! * value pdf model — directly from the per-item pdf;
//! * basic / tuple pdf model — `g_i` is a sum of independent Bernoulli
//!   contributions, so `E[g_i] = Σ_t Pr[t_j = i]`,
//!   `Var[g_i] = Σ_t Pr[t_j = i](1 − Pr[t_j = i])` and
//!   `E[g_i²] = Var[g_i] + E[g_i]²`.

use serde::{Deserialize, Serialize};

use crate::model::ProbabilisticRelation;

/// First and second moments of a single item's frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ItemMoments {
    /// `E[g_i]`.
    pub mean: f64,
    /// `Var[g_i]`.
    pub variance: f64,
    /// `E[g_i^2]`.
    pub second_moment: f64,
}

impl ItemMoments {
    /// Builds the moments from a mean and a variance.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Self {
        ItemMoments {
            mean,
            variance,
            second_moment: variance + mean * mean,
        }
    }
}

/// Computes the moments of every item's frequency in `O(m)` time using the
/// model-specific closed forms (no possible-world enumeration, no pdf
/// convolution).
pub fn item_moments(relation: &ProbabilisticRelation) -> Vec<ItemMoments> {
    let n = relation.n();
    match relation {
        ProbabilisticRelation::Basic(m) => {
            let mut mean = vec![0.0; n];
            let mut var = vec![0.0; n];
            for t in m.tuples() {
                mean[t.item] += t.prob;
                var[t.item] += t.prob * (1.0 - t.prob);
            }
            mean.into_iter()
                .zip(var)
                .map(|(mu, v)| ItemMoments::from_mean_variance(mu, v))
                .collect()
        }
        ProbabilisticRelation::TuplePdf(m) => {
            let mut mean = vec![0.0; n];
            let mut var = vec![0.0; n];
            for t in m.tuples() {
                for &(item, p) in t.alternatives() {
                    mean[item] += p;
                    var[item] += p * (1.0 - p);
                }
            }
            mean.into_iter()
                .zip(var)
                .map(|(mu, v)| ItemMoments::from_mean_variance(mu, v))
                .collect()
        }
        ProbabilisticRelation::ValuePdf(m) => m
            .items()
            .iter()
            .map(|pdf| ItemMoments {
                mean: pdf.mean(),
                variance: pdf.variance(),
                second_moment: pdf.second_moment(),
            })
            .collect(),
    }
}

/// The total expected "energy" of the data, `Σ_i E[g_i^2]`.  This is the
/// largest possible expected SSE of any synopsis (approximating everything by
/// zero) and a convenient normaliser for error percentages.
pub fn total_expected_energy(relation: &ProbabilisticRelation) -> f64 {
    item_moments(relation).iter().map(|m| m.second_moment).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};
    use crate::worlds::PossibleWorlds;

    fn relations() -> Vec<ProbabilisticRelation> {
        vec![
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into(),
            TuplePdfModel::from_alternatives(
                3,
                [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
            )
            .unwrap()
            .into(),
            ValuePdfModel::from_sparse(
                3,
                [
                    (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                    (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()),
                    (2, ValuePdf::new([(1.5, 0.5)]).unwrap()),
                ],
            )
            .unwrap()
            .into(),
        ]
    }

    #[test]
    fn closed_forms_match_brute_force_enumeration() {
        for rel in relations() {
            let moments = item_moments(&rel);
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            for i in 0..rel.n() {
                let mean = worlds.expectation(|w| w[i]);
                let ex2 = worlds.expectation(|w| w[i] * w[i]);
                assert!(
                    (moments[i].mean - mean).abs() < 1e-12,
                    "{} item {i} mean",
                    rel.model_name()
                );
                assert!(
                    (moments[i].second_moment - ex2).abs() < 1e-12,
                    "{} item {i} second moment",
                    rel.model_name()
                );
                assert!((moments[i].variance - (ex2 - mean * mean)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn closed_forms_match_induced_pdfs() {
        for rel in relations() {
            let moments = item_moments(&rel);
            let pdfs = rel.induced_value_pdfs();
            for (i, m) in moments.iter().enumerate() {
                assert!((m.mean - pdfs.item(i).mean()).abs() < 1e-12);
                assert!((m.second_moment - pdfs.item(i).second_moment()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tuple_pdf_example_matches_paper_section_3_1() {
        // The paper computes Σ E[g_i²] = 252/144 for the tuple pdf example.
        let rel = &relations()[1];
        let total: f64 = item_moments(rel).iter().map(|m| m.second_moment).sum();
        assert!((total - 252.0 / 144.0).abs() < 1e-12);
        assert!((total_expected_energy(rel) - 252.0 / 144.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_data_has_zero_variance() {
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&[2.0, 0.0, 3.0]).into();
        for m in item_moments(&rel) {
            assert_eq!(m.variance, 0.0);
        }
        assert!((total_expected_energy(&rel) - 13.0).abs() < 1e-12);
    }
}
