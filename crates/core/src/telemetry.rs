//! Lock-free observability primitives: counters, gauges, log₂-bucketed
//! latency histograms, a metric [`Registry`] rendering Prometheus-style
//! text exposition, and a bounded lock-free [`EventRing`] for structured
//! event tracing.
//!
//! ## Design constraints
//!
//! The recording path is what ingest, seal and query code touches while
//! holding shard guards, so it must be:
//!
//! * **lock-free** — every record operation is a handful of relaxed
//!   atomic adds on [`AtomicU64`]s; no `Mutex` is ever taken while
//!   recording, which keeps recording legal under the `pds-analyze`
//!   lock-discipline rule even inside shard-guard windows;
//! * **allocation-free** — counters, gauges and histograms never allocate
//!   after construction; the [`EventRing`] writes fixed-width slots in
//!   place.  Formatting happens only at scrape time ([`Registry::render`]
//!   / [`EventRing::dump`]);
//! * **panic-free** — this file is held to the analyzer's whole-file
//!   panic-freedom rule: indexing is masked or `get`-guarded, mutex
//!   poisoning (render path only) is recovered, and no arithmetic can
//!   panic on hostile values;
//! * **bit-invisible** — telemetry only ever *reads* the clock; no result
//!   of any query, seal or merge may depend on it.  The workspace pins
//!   this with on/off bit-identity tests.
//!
//! ## Timing discipline
//!
//! Durations are measured with a [`Stopwatch`]: `Stopwatch::start()` at
//! the top of the timed window, `histogram.observe(sw)` at the bottom.
//! The analyzer's `telemetry-pairing` rule enforces the pairing — every
//! `.observe(..)` call site must see a `start`/`Stopwatch` earlier in its
//! enclosing function.
//!
//! ## Exposition format
//!
//! [`Registry::render`] emits the Prometheus text format: one
//! `# TYPE name kind` line per metric name, then one
//! `name{labels} value` sample line per series.  Histograms render
//! cumulative `_bucket{le="..."}` series (upper bounds in seconds; the
//! last bucket is `+Inf`) plus `_sum` (seconds) and `_count`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as its IEEE-754 bits in an
/// [`AtomicU64`], so reads and writes are lock-free).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A started duration measurement, consumed by
/// [`LatencyHistogram::observe`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    at: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { at: Instant::now() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (≈ 584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        let nanos = self.at.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.at.elapsed().as_secs_f64()
    }
}

/// Number of histogram buckets: bucket `i < 36` counts samples shorter
/// than `2^i` nanoseconds (so the finite range tops out at `2^35` ns
/// ≈ 34 s); the last bucket is `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 37;

/// The bucket a sample of `nanos` nanoseconds lands in.
fn bucket_index(nanos: u64) -> usize {
    ((64 - nanos.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// A fixed-bucket, log₂-scaled latency histogram: one atomic add per
/// recorded sample, no locks, no allocation.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records the elapsed time of `sw` (consuming it: one stopwatch, one
    /// observation — the analyzer's `telemetry-pairing` rule checks the
    /// pairing at every call site).
    pub fn observe(&self, sw: Stopwatch) {
        self.observe_nanos(sw.elapsed_nanos());
    }

    /// Records a raw nanosecond sample (test and replay entry point).
    pub fn observe_nanos(&self, nanos: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(nanos)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum MetricKind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    /// Pre-rendered label pairs without braces, e.g. `partition="3"`;
    /// empty for an unlabeled series.
    labels: String,
    kind: MetricKind,
}

/// A registry of named metrics rendering Prometheus-style text
/// exposition.
///
/// The internal `Mutex` is taken only at registration and render time —
/// never on the record path, which goes straight to the `Arc`'d atomics
/// handed out by [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`].  Series sharing a metric name (label
/// variants) should be registered consecutively so the `# TYPE` header is
/// emitted once.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &'static str, labels: &str, kind: MetricKind) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(Entry {
            name,
            labels: labels.to_string(),
            kind,
        });
    }

    /// Registers and returns a counter series.  `labels` is either empty
    /// or pre-rendered pairs like `verb="est"`.
    pub fn counter(&self, name: &'static str, labels: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, labels, MetricKind::Counter(Arc::clone(&c)));
        c
    }

    /// Registers and returns a gauge series.
    pub fn gauge(&self, name: &'static str, labels: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, labels, MetricKind::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a latency-histogram series.
    pub fn histogram(&self, name: &'static str, labels: &str) -> Arc<LatencyHistogram> {
        let h = Arc::new(LatencyHistogram::new());
        self.register(name, labels, MetricKind::Histogram(Arc::clone(&h)));
        h
    }

    /// Renders every registered series into `out` in the Prometheus text
    /// format (see the module docs).
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut prev_name = "";
        for entry in entries.iter() {
            if entry.name != prev_name {
                let kind = match entry.kind {
                    MetricKind::Counter(_) => "counter",
                    MetricKind::Gauge(_) => "gauge",
                    MetricKind::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", entry.name);
                prev_name = entry.name;
            }
            let braced = |extra: &str| -> String {
                match (entry.labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{}}}", entry.labels),
                    (false, false) => format!("{{{},{extra}}}", entry.labels),
                }
            };
            match &entry.kind {
                MetricKind::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", entry.name, braced(""), c.get());
                }
                MetricKind::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", entry.name, braced(""), g.get());
                }
                MetricKind::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bucket) in h.buckets.iter().enumerate() {
                        cumulative += bucket.load(Ordering::Relaxed);
                        let le = if i + 1 == HISTOGRAM_BUCKETS {
                            "+Inf".to_string()
                        } else {
                            // Upper bound of bucket i is 2^i ns, in seconds.
                            format!("{}", (1u64 << i) as f64 / 1e9)
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            entry.name,
                            braced(&format!("le=\"{le}\""))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        entry.name,
                        braced(""),
                        h.sum_nanos() as f64 / 1e9
                    );
                    let _ = writeln!(out, "{}_count{} {}", entry.name, braced(""), h.count());
                }
            }
        }
    }

    /// [`Registry::render_into`] into a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// One event slot of the ring: a per-slot sequence word (seqlock style)
/// plus the fixed-width payload.
#[derive(Debug, Default)]
struct EventSlot {
    /// `2*claim + 1` while the writer fills the slot, `2*claim + 2` once
    /// the record for `claim` is complete; readers skip anything else.
    seq: AtomicU64,
    t_nanos: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

/// A bounded, lock-free ring of recent structured events.
///
/// Writers claim a global slot index with one `fetch_add` and stamp the
/// slot seqlock-style (odd while writing, even when complete); readers
/// ([`EventRing::dump`]) detect in-flight or overwritten slots by their
/// sequence word and skip them, so a dump taken concurrently with pushes
/// never blocks a writer and never reports a torn record.  Events carry a
/// kind tag and three `u64` arguments — the owner decides how to decode
/// them at dump time, so pushing never allocates or formats.
#[derive(Debug)]
pub struct EventRing {
    epoch: Instant,
    next: AtomicU64,
    slots: Box<[EventSlot]>,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<EventSlot> = (0..cap).map(|_| EventSlot::default()).collect();
        EventRing {
            epoch: Instant::now(),
            next: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Records one event (kind tag plus three argument words), displacing
    /// the oldest once the ring is full.
    pub fn push(&self, kind: u64, a: u64, b: u64, c: u64) {
        let claim = self.next.fetch_add(1, Ordering::Relaxed);
        let mask = self.slots.len().wrapping_sub(1);
        let Some(slot) = self.slots.get((claim as usize) & mask) else {
            return;
        };
        slot.seq
            .store(claim.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        let t = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        slot.t_nanos.store(t, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq
            .store(claim.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    /// Total events ever pushed (not the number retained).
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Renders the retained events oldest-first, one line per event:
    /// a `t=<seconds-since-ring-creation>s` prefix followed by
    /// `describe(kind, a, b, c)`.  Slots being written (or already
    /// overwritten) while dumping are skipped, never torn.
    pub fn dump(&self, describe: impl Fn(u64, u64, u64, u64) -> String) -> Vec<String> {
        let head = self.next.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mask = self.slots.len().wrapping_sub(1);
        let mut out = Vec::new();
        for claim in head.saturating_sub(cap)..head {
            let Some(slot) = self.slots.get((claim as usize) & mask) else {
                continue;
            };
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 != claim.wrapping_mul(2).wrapping_add(2) {
                continue;
            }
            let t = slot.t_nanos.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let c = slot.c.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq1 {
                continue;
            }
            out.push(format!(
                "t={:.6}s {}",
                t as f64 / 1e9,
                describe(kind, a, b, c)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.add(-0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_log2_nanoseconds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = LatencyHistogram::new();
        h.observe_nanos(3);
        h.observe_nanos(1024);
        h.observe_nanos(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets[2].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[11].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stopwatch_observe_records_a_sample() {
        let h = LatencyHistogram::new();
        let sw = Stopwatch::start();
        h.observe(sw);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let reg = Registry::new();
        let c0 = reg.counter("demo_requests_total", "verb=\"est\"");
        let c1 = reg.counter("demo_requests_total", "verb=\"range\"");
        let g = reg.gauge("demo_active", "");
        let h = reg.histogram("demo_latency_seconds", "");
        c0.add(3);
        c1.add(4);
        g.set(1.5);
        h.observe_nanos(1000);
        h.observe_nanos(2000);
        let text = reg.render();
        // One TYPE header per metric name, even with two labeled series.
        assert_eq!(
            text.matches("# TYPE demo_requests_total counter").count(),
            1
        );
        assert!(text.contains("demo_requests_total{verb=\"est\"} 3"));
        assert!(text.contains("demo_requests_total{verb=\"range\"} 4"));
        assert!(text.contains("# TYPE demo_active gauge"));
        assert!(text.contains("demo_active 1.5"));
        assert!(text.contains("# TYPE demo_latency_seconds histogram"));
        assert!(text.contains("demo_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("demo_latency_seconds_count 2"));
        // The cumulative +Inf bucket always equals the count.
        assert!(text.contains("demo_latency_seconds_sum 0.000003"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_the_exposition() {
        let reg = Registry::new();
        let h = reg.histogram("h", "");
        h.observe_nanos(1); // bucket 1
        h.observe_nanos(1_000_000); // bucket 20
        let text = reg.render();
        let value_of = |le: &str| -> u64 {
            let needle = format!("h_bucket{{le=\"{le}\"}} ");
            text.lines()
                .find_map(|l| l.strip_prefix(&needle))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        // 2^1 ns = 2e-9 s holds the first sample only.
        assert_eq!(value_of("0.000000002"), 1);
        assert_eq!(value_of("+Inf"), 2);
    }

    #[test]
    fn event_ring_retains_the_newest_events() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.push(1, i, 0, 0);
        }
        assert_eq!(ring.pushed(), 10);
        let lines = ring.dump(|kind, a, _, _| format!("k={kind} a={a}"));
        assert_eq!(lines.len(), 4);
        // Oldest-first, last four claims retained.
        for (line, want) in lines.iter().zip(6..10u64) {
            assert!(line.contains(&format!("a={want}")), "{line}");
            assert!(line.starts_with("t="), "{line}");
        }
    }

    #[test]
    fn event_ring_capacity_rounds_up() {
        let ring = EventRing::new(3);
        assert_eq!(ring.slots.len(), 4);
        let ring = EventRing::new(0);
        assert_eq!(ring.slots.len(), 2);
    }

    #[test]
    fn concurrent_pushes_and_dumps_stay_consistent() {
        let ring = std::sync::Arc::new(EventRing::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        ring.push(t, i, i * 2, i * 3);
                    }
                });
            }
            for _ in 0..50 {
                // Every dumped line decodes to a consistent record.
                for line in ring.dump(|k, a, b, c| {
                    assert!(k < 4);
                    assert_eq!(b, a * 2);
                    assert_eq!(c, a * 3);
                    format!("{k} {a}")
                }) {
                    assert!(line.starts_with("t="));
                }
            }
        });
        assert_eq!(ring.pushed(), 2000);
    }
}
