//! Streaming-ingest records: one arriving probabilistic tuple in any of the
//! three uncertainty models.
//!
//! The synopsis-construction crates consume whole
//! [`ProbabilisticRelation`]s; a production ingest path instead sees tuples
//! *arrive one at a time*.  A [`StreamRecord`] is the unit of arrival:
//!
//! * [`StreamRecord::Basic`] — one basic-model tuple `(item, probability)`;
//! * [`StreamRecord::Alternatives`] — one tuple-pdf x-tuple with
//!   mutually-exclusive alternatives;
//! * [`StreamRecord::ValueDistribution`] — one item's explicit frequency pdf
//!   (value-pdf model).
//!
//! [`records_of`] decomposes an existing relation into its stream of records
//! (so any relation can be replayed into an ingest path), and
//! [`BasicStreamConfig`]/[`basic_stream`] generate an unbounded seeded
//! synthetic stream directly, without materialising a relation first —
//! the shape matches [`crate::generator::mystiq_like`] (Zipf-skewed item
//! popularity, beta-like match confidences).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{PdsError, Result, PROB_TOLERANCE};
use crate::model::{ProbabilisticRelation, TupleAlternatives, ValuePdf};

/// One arriving probabilistic tuple, in any of the three uncertainty models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamRecord {
    /// A basic-model tuple: `item` is present with probability `prob`.
    Basic {
        /// The item the tuple contributes to.
        item: usize,
        /// Existence probability.
        prob: f64,
    },
    /// A tuple-pdf x-tuple: at most one of the `(item, probability)`
    /// alternatives materialises.
    Alternatives(Vec<(usize, f64)>),
    /// An explicit frequency pdf for one item (value-pdf model); remaining
    /// mass is implicit at frequency zero.
    ValueDistribution {
        /// The item the pdf describes.
        item: usize,
        /// `(frequency, probability)` entries.
        entries: Vec<(f64, f64)>,
    },
}

impl StreamRecord {
    /// Validates probabilities and returns the record's item span
    /// `(min_item, max_item)`.
    pub fn validate(&self) -> Result<(usize, usize)> {
        match self {
            StreamRecord::Basic { item, prob } => {
                if !(*prob > 0.0 && *prob <= 1.0 + PROB_TOLERANCE) {
                    return Err(PdsError::InvalidProbability {
                        context: format!("stream record for item {item}"),
                        value: *prob,
                    });
                }
                Ok((*item, *item))
            }
            StreamRecord::Alternatives(alts) => {
                // Delegate mass/probability validation to the model type.
                let t = TupleAlternatives::new(alts.iter().copied())?;
                let lo = t.alternatives().iter().map(|&(i, _)| i).min();
                let hi = t.alternatives().iter().map(|&(i, _)| i).max();
                match (lo, hi) {
                    (Some(lo), Some(hi)) => Ok((lo, hi)),
                    _ => Err(PdsError::InvalidParameter {
                        message: "an x-tuple record needs at least one alternative".into(),
                    }),
                }
            }
            StreamRecord::ValueDistribution { item, entries } => {
                ValuePdf::new(entries.iter().copied())?;
                Ok((*item, *item))
            }
        }
    }

    /// The total expected frequency mass this record contributes.
    pub fn expected_mass(&self) -> f64 {
        match self {
            StreamRecord::Basic { prob, .. } => *prob,
            StreamRecord::Alternatives(alts) => alts.iter().map(|&(_, p)| p).sum(),
            StreamRecord::ValueDistribution { entries, .. } => {
                entries.iter().map(|&(v, p)| v * p).sum()
            }
        }
    }
}

/// Decomposes a relation into the stream of records that reproduces it: the
/// arrival order is item order (basic/value pdf) or tuple order (tuple pdf).
pub fn records_of(relation: &ProbabilisticRelation) -> Vec<StreamRecord> {
    match relation {
        ProbabilisticRelation::Basic(m) => m
            .tuples()
            .iter()
            .map(|t| StreamRecord::Basic {
                item: t.item,
                prob: t.prob,
            })
            .collect(),
        ProbabilisticRelation::TuplePdf(m) => m
            .tuples()
            .iter()
            .map(|t| StreamRecord::Alternatives(t.alternatives().to_vec()))
            .collect(),
        ProbabilisticRelation::ValuePdf(m) => m
            .items()
            .iter()
            .enumerate()
            .filter(|(_, pdf)| !pdf.entries().is_empty())
            .map(|(item, pdf)| StreamRecord::ValueDistribution {
                item,
                entries: pdf.entries().to_vec(),
            })
            .collect(),
    }
}

/// Parameters of the seeded basic-model record stream.
#[derive(Debug, Clone, Copy)]
pub struct BasicStreamConfig {
    /// Domain size (items are drawn from `[0, n)`).
    pub n: usize,
    /// Zipf skew of item popularity (0 = uniform).
    pub skew: f64,
    /// Random seed.
    pub seed: u64,
}

/// An unbounded seeded iterator of basic-model stream records; take as many
/// as the experiment needs.  Item popularity is Zipf-skewed with the heavy
/// items spread over the domain, probabilities cluster around moderate
/// confidence like the MystiQ-shaped generator.
pub fn basic_stream(config: BasicStreamConfig) -> impl Iterator<Item = StreamRecord> {
    let n = config.n.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Inverse-CDF Zipf sampling over ranks, then a fixed multiplicative shuffle
    // so the popular items are not clustered at the start of the domain.
    let cdf: Vec<f64> = {
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = (1..=n)
            .map(|r| {
                acc += 1.0 / (r as f64).powf(config.skew.max(0.0));
                acc
            })
            .collect();
        let total = *cdf.last().unwrap_or(&1.0);
        for v in &mut cdf {
            *v /= total;
        }
        cdf
    };
    std::iter::from_fn(move || {
        let u: f64 = rng.gen();
        let rank = match cdf.binary_search_by(|v| v.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(n - 1),
        };
        let item = ((rank + 1) * (2654435761 % n)) % n;
        let prob: f64 = (0.05 + 0.9 * rng.gen::<f64>() * rng.gen::<f64>()).clamp(0.01, 1.0);
        Some(StreamRecord::Basic { item, prob })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::test_workloads;

    #[test]
    fn records_of_preserves_mass_and_span() {
        for w in test_workloads(24, 3) {
            let records = records_of(&w.relation);
            assert_eq!(
                records.len(),
                match &w.relation {
                    ProbabilisticRelation::TuplePdf(m) => m.tuple_count(),
                    _ => records.len(),
                }
            );
            let mass: f64 = records.iter().map(|r| r.expected_mass()).sum();
            let expected: f64 = w.relation.expected_frequencies().iter().sum();
            assert!((mass - expected).abs() < 1e-9, "{}", w.name);
            for r in &records {
                let (lo, hi) = r.validate().unwrap();
                assert!(lo <= hi && hi < 24);
            }
        }
    }

    #[test]
    fn invalid_records_are_rejected() {
        assert!(StreamRecord::Basic { item: 0, prob: 1.5 }
            .validate()
            .is_err());
        assert!(StreamRecord::Basic { item: 0, prob: 0.0 }
            .validate()
            .is_err());
        assert!(StreamRecord::Alternatives(vec![]).validate().is_err());
        assert!(
            StreamRecord::Alternatives(vec![(0, 0.7), (1, 0.7)]) // mass > 1
                .validate()
                .is_err()
        );
        assert!(StreamRecord::ValueDistribution {
            item: 2,
            entries: vec![(-1.0, 0.5)],
        }
        .validate()
        .is_err());
    }

    #[test]
    fn basic_stream_is_deterministic_and_valid() {
        let config = BasicStreamConfig {
            n: 64,
            skew: 0.8,
            seed: 11,
        };
        let a: Vec<StreamRecord> = basic_stream(config).take(500).collect();
        let b: Vec<StreamRecord> = basic_stream(config).take(500).collect();
        assert_eq!(a, b);
        for r in &a {
            let (lo, hi) = r.validate().unwrap();
            assert!(lo == hi && hi < 64);
        }
        // Skew shows: some item receives several records.
        let mut counts = vec![0usize; 64];
        for r in &a {
            if let StreamRecord::Basic { item, .. } = r {
                counts[*item] += 1;
            }
        }
        assert!(counts.iter().any(|&c| c > 10));
    }
}
