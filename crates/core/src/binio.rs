//! Byte-level reader/writer primitives for the compact binary synopsis
//! format.
//!
//! Every persistent artefact (histograms, wavelet synopses, store segments)
//! shares the same envelope discipline: a four-byte ASCII magic, a `u16`
//! format version, then a type-specific payload built from the primitives
//! here.  All integers are little-endian; lengths and indices use LEB128
//! varints so that delta-encoded bucket boundaries stay small.  The reader
//! never panics: truncation, bad magic and malformed varints surface as
//! [`PdsError::InvalidParameter`], mirroring the JSON envelope treatment.

use crate::error::{PdsError, Result};

/// Appends binary primitives to a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Starts an envelope: the four-byte magic followed by the format
    /// version.
    pub fn envelope(magic: [u8; 4], version: u16) -> Self {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(&magic);
        w.put_u16(version);
        w
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a raw byte slice (length must be conveyed separately, e.g.
    /// via a preceding varint).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes an unsigned LEB128 varint (1 byte for values below 128).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }
}

/// Reads binary primitives from a byte slice, turning truncation and
/// malformed input into [`PdsError`]s.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Human-readable artefact name used in error messages.
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice; `what` names the artefact for error messages.
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        ByteReader {
            bytes,
            pos: 0,
            what,
        }
    }

    /// Opens an envelope: checks the magic and returns the format version.
    pub fn envelope(bytes: &'a [u8], what: &'static str, magic: [u8; 4]) -> Result<(Self, u16)> {
        let mut r = ByteReader::new(bytes, what);
        let got = r.take(4)?;
        if got != magic {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "{what}: bad magic {got:?} (expected {:?})",
                    std::str::from_utf8(&magic).unwrap_or("?")
                ),
            });
        }
        let version = r.get_u16()?;
        Ok((r, version))
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn truncated(&self, needed: usize) -> PdsError {
        PdsError::InvalidParameter {
            message: format!(
                "{}: truncated input (need {needed} more bytes at offset {}, {} left)",
                self.what,
                self.pos,
                self.remaining()
            ),
        }
    }

    /// Errors unless every byte has been consumed (trailing garbage detector).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "{}: {} trailing bytes after the payload",
                    self.what,
                    self.remaining()
                ),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated(n - self.remaining()));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes exactly `N` bytes as a fixed-size array — the panic-free
    /// backbone of the integer readers ([`Self::take`] already bounds the
    /// slice, so the copy lengths always agree).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads `n` raw bytes (the counterpart of [`ByteWriter::put_bytes`]).
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f64` from its little-endian IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Reads an unsigned LEB128 varint, rejecting encodings longer than 10
    /// bytes and any final byte whose payload bits overflow a `u64` (so a
    /// malformed length can never silently truncate to a wrong value).
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            let payload = u64::from(byte & 0x7f);
            if shift > 0 && (payload >> (64 - shift)) != 0 {
                return Err(PdsError::InvalidParameter {
                    message: format!("{}: varint overflows 64 bits", self.what),
                });
            }
            v |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(PdsError::InvalidParameter {
            message: format!("{}: varint longer than 10 bytes", self.what),
        })
    }

    /// Reads a varint and converts it to `usize`, with an upper bound so a
    /// corrupted length cannot drive a huge allocation.
    pub fn get_len(&mut self, limit: usize) -> Result<usize> {
        let v = self.get_varint()?;
        if v > limit as u64 {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "{}: declared length {v} exceeds the sanity limit {limit}",
                    self.what
                ),
            });
        }
        Ok(v as usize)
    }
}

/// The CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup
/// table, computed at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // analyze:allow(panic-freedom) const-eval table fill: `i` is bounded by the enclosing `while i < 256`, and an out-of-range write would fail compilation, not runtime
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) checksum of a byte slice — the checksum used by every
/// crash-durable artefact (segment blobs, manifest records, WAL frames) to
/// tell torn or corrupted bytes from valid ones.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends a 4-byte little-endian [`crc32`] trailer covering everything
/// already in `bytes` — the writer half of the checksummed-blob discipline.
pub fn append_crc32(bytes: &mut Vec<u8>) {
    let crc = crc32(bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
}

/// Verifies and strips the 4-byte [`crc32`] trailer appended by
/// [`append_crc32`], returning the covered payload.  Truncation and
/// checksum mismatches surface as [`PdsError`]s naming `what`.
pub fn verify_crc32<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8]> {
    if bytes.len() < 4 {
        return Err(PdsError::InvalidParameter {
            message: format!(
                "{what}: {} bytes is too short to carry a crc32 trailer",
                bytes.len()
            ),
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let mut stored = [0u8; 4];
    stored.copy_from_slice(trailer);
    let stored = u32::from_le_bytes(stored);
    let computed = crc32(payload);
    if stored != computed {
        return Err(PdsError::InvalidParameter {
            message: format!(
                "{what}: crc32 mismatch (stored {stored:#010x}, computed {computed:#010x}) — \
                 the bytes are torn or corrupted"
            ),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_trailer_round_trips_and_rejects_corruption() {
        let mut blob = b"payload bytes".to_vec();
        append_crc32(&mut blob);
        assert_eq!(verify_crc32(&blob, "blob").unwrap(), b"payload bytes");
        // Every single-bit flip anywhere (payload or trailer) is caught.
        for pos in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[pos] ^= 1 << bit;
                assert!(verify_crc32(&bad, "blob").is_err(), "flip at {pos}.{bit}");
            }
        }
        // Truncation is caught (any strict prefix).
        for cut in 0..blob.len() {
            assert!(verify_crc32(&blob[..cut], "blob").is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::envelope(*b"TEST", 3);
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-1.5e300);
        w.put_varint(0);
        w.put_varint(127);
        w.put_varint(128);
        w.put_varint(u64::MAX);
        let bytes = w.into_bytes();

        let (mut r, version) = ByteReader::envelope(&bytes, "test blob", *b"TEST").unwrap();
        assert_eq!(version, 3);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -1.5e300);
        assert_eq!(r.get_varint().unwrap(), 0);
        assert_eq!(r.get_varint().unwrap(), 127);
        assert_eq!(r.get_varint().unwrap(), 128);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn varints_are_compact() {
        let mut w = ByteWriter::new();
        w.put_varint(100);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_varint(300);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn truncation_and_magic_errors() {
        let mut w = ByteWriter::envelope(*b"TEST", 1);
        w.put_u64(42);
        let bytes = w.into_bytes();
        // Every strict prefix fails with a PdsError, never a panic.
        for cut in 0..bytes.len() {
            let r = ByteReader::envelope(&bytes[..cut], "test blob", *b"TEST")
                .and_then(|(mut r, _)| r.get_u64());
            assert!(r.is_err(), "prefix of {cut} bytes should fail");
        }
        // Wrong magic.
        assert!(ByteReader::envelope(&bytes, "test blob", *b"NOPE").is_err());
        // Trailing garbage.
        let (mut r, _) = ByteReader::envelope(&bytes, "test blob", *b"TEST").unwrap();
        r.get_u16().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn unterminated_varint_is_rejected() {
        let bytes = [0x80u8; 11];
        let mut r = ByteReader::new(&bytes, "varint");
        assert!(r.get_varint().is_err());
        // Truncated continuation.
        let bytes = [0x80u8, 0x80];
        let mut r = ByteReader::new(&bytes, "varint");
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn varint_overflow_bits_are_rejected_not_truncated() {
        // Nine continuation bytes then 0x7e: the final payload would need
        // bits 64.. of the u64, which a silent shift would drop to zero.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x7e);
        let mut r = ByteReader::new(&bytes, "varint");
        assert!(r.get_varint().is_err());
        // The largest legal 10-byte encoding still decodes.
        let mut w = ByteWriter::new();
        w.put_varint(u64::MAX);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 10);
        let mut r = ByteReader::new(&bytes, "varint");
        assert_eq!(r.get_varint().unwrap(), u64::MAX);
    }

    #[test]
    fn raw_byte_slices_round_trip() {
        let mut w = ByteWriter::new();
        w.put_varint(3);
        w.put_bytes(&[7, 8, 9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "blob");
        let n = r.get_len(16).unwrap();
        assert_eq!(r.get_bytes(n).unwrap(), &[7, 8, 9]);
        r.finish().unwrap();
        assert!(r.get_bytes(1).is_err());
    }

    #[test]
    fn length_sanity_limit_blocks_huge_allocations() {
        let mut w = ByteWriter::new();
        w.put_varint(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "segment");
        let err = r.get_len(1 << 20).unwrap_err();
        assert!(err.to_string().contains("sanity limit"));
    }
}
