//! # pds-core
//!
//! Core data structures for building histogram and wavelet synopses on
//! probabilistic (uncertain) data, reproducing *Cormode & Garofalakis,
//! "Histograms and Wavelets on Probabilistic Data", ICDE 2009*.
//!
//! This crate provides the substrate shared by the synopsis crates:
//!
//! * the three uncertainty models of Section 2.1 ([`model::BasicModel`],
//!   [`model::TuplePdfModel`], [`model::ValuePdfModel`]) unified behind
//!   [`model::ProbabilisticRelation`];
//! * possible-worlds semantics: exhaustive enumeration for validation and
//!   world sampling for the paper's baselines ([`worlds`]);
//! * per-item frequency moments in closed form ([`moments`]);
//! * the frequency value domain `V` ([`values`]);
//! * the cumulative and maximum error metrics of Section 2.2 ([`metrics`]);
//! * synthetic workload generators standing in for the paper's MystiQ and
//!   MayBMS/TPC-H data sets ([`generator`]);
//! * streaming-ingest records in all three models plus seeded record streams
//!   ([`stream`]), and the binary envelope primitives behind the compact
//!   persistent synopsis format ([`binio`]);
//! * a scoped thread pool ([`pool`]) with `parallel_map`/`parallel_chunks`
//!   helpers — the single place where worker-thread policy (the
//!   `PDS_THREADS` environment variable, the programmatic override, the
//!   hardware default) is resolved for every parallel path in the
//!   workspace;
//! * lock-free observability primitives ([`telemetry`]): atomic counters,
//!   gauges, log₂-bucketed latency histograms, a Prometheus-style text
//!   exposition registry, and a bounded event ring — the recording path
//!   never locks or allocates, so the store and server instrument their
//!   hot paths (even inside shard-guard windows) at negligible cost.
//!   Named `telemetry` to avoid clashing with the paper's [`metrics`]
//!   (synopsis *error* metrics);
//! * the durable-path filesystem surface ([`vfs`]): a zero-cost
//!   passthrough over `std::fs` whose every call carries a site label, with
//!   a deterministic fault injector behind it (EIO, ENOSPC, short writes,
//!   fsync and rename failures at labeled sites) — the store's disk-error
//!   robustness matrix drives it the same way the crash matrix drives the
//!   store's crash points.
//!
//! Synopsis construction itself lives in the `pds-histogram` and
//! `pds-wavelet` crates; `probsyn` re-exports everything under one roof.
//!
//! ## Example
//!
//! ```
//! use pds_core::model::{BasicModel, ProbabilisticRelation};
//! use pds_core::worlds::PossibleWorlds;
//!
//! // Example 1 of the paper: four uncertain tuples over a three-item domain.
//! let relation: ProbabilisticRelation =
//!     BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
//!         .unwrap()
//!         .into();
//!
//! let worlds = PossibleWorlds::enumerate(&relation).unwrap();
//! assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
//! assert!((relation.expected_frequencies()[0] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binio;
pub mod bounds;
pub mod error;
pub mod generator;
pub mod io;
pub mod metrics;
pub mod model;
pub mod moments;
pub mod pool;
pub mod stream;
pub mod telemetry;
pub mod values;
pub mod vfs;
pub mod worlds;

pub use error::{PdsError, Result};
pub use metrics::ErrorMetric;
pub use model::{
    BasicModel, BasicTuple, ProbabilisticRelation, TupleAlternatives, TuplePdfModel, ValuePdf,
    ValuePdfModel,
};
pub use moments::{item_moments, ItemMoments};
pub use stream::{basic_stream, records_of, BasicStreamConfig, StreamRecord};
pub use values::ValueDomain;
pub use worlds::{sample_world, PossibleWorlds};
