//! Error types shared by all probabilistic-synopsis crates.

use std::fmt;

/// Errors raised while constructing or validating probabilistic relations and
/// synopses.
#[derive(Debug, Clone, PartialEq)]
pub enum PdsError {
    /// A probability was outside `[0, 1]` or a per-tuple/per-item pdf summed to
    /// more than one (beyond numerical tolerance).
    InvalidProbability {
        /// Human-readable location of the offending value (tuple index, item id ...).
        context: String,
        /// The offending probability mass.
        value: f64,
    },
    /// An item identifier was outside the declared domain `[0, n)`.
    ItemOutOfDomain {
        /// The offending item identifier.
        item: usize,
        /// The declared domain size.
        domain: usize,
    },
    /// The requested domain size, bucket count, or coefficient budget is
    /// invalid (e.g. zero buckets, `B > n` for wavelets).
    InvalidParameter {
        /// Description of the parameter and the constraint it violates.
        message: String,
    },
    /// An operation required exhaustive possible-world enumeration but the
    /// input is too large for that to be feasible.
    TooManyWorlds {
        /// Number of random components in the input.
        components: usize,
        /// The enumeration limit that was exceeded.
        limit: usize,
    },
    /// A frequency value was negative or not finite.
    InvalidFrequency {
        /// Human-readable location of the offending value.
        context: String,
        /// The offending frequency value.
        value: f64,
    },
    /// The durable substrate failed persistently and the store has entered
    /// its sticky degraded read-only mode: every mutating operation returns
    /// this error while queries keep serving the acknowledged prefix.  Only
    /// reopening the store clears it.
    Degraded {
        /// The durable-path failure that tripped degradation.
        cause: String,
    },
}

impl fmt::Display for PdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdsError::InvalidProbability { context, value } => {
                write!(f, "invalid probability {value} ({context})")
            }
            PdsError::ItemOutOfDomain { item, domain } => {
                write!(f, "item {item} outside domain [0, {domain})")
            }
            PdsError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            PdsError::TooManyWorlds { components, limit } => write!(
                f,
                "possible-world enumeration over {components} components exceeds limit {limit}"
            ),
            PdsError::InvalidFrequency { context, value } => {
                write!(f, "invalid frequency {value} ({context})")
            }
            PdsError::Degraded { cause } => {
                write!(f, "store is degraded (read-only): {cause}")
            }
        }
    }
}

impl std::error::Error for PdsError {}

/// Convenience result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, PdsError>;

/// Absolute tolerance used when validating probability masses.
pub const PROB_TOLERANCE: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PdsError::InvalidProbability {
            context: "tuple 3".into(),
            value: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("tuple 3"));

        let e = PdsError::ItemOutOfDomain { item: 9, domain: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = PdsError::TooManyWorlds {
            components: 64,
            limit: 24,
        };
        assert!(e.to_string().contains("64"));

        let e = PdsError::InvalidFrequency {
            context: "item 2".into(),
            value: -1.0,
        };
        assert!(e.to_string().contains("-1"));

        let e = PdsError::InvalidParameter {
            message: "B must be >= 1".into(),
        };
        assert!(e.to_string().contains("B must be"));

        let e = PdsError::Degraded {
            cause: "wal-append: injected EIO".into(),
        };
        assert!(e.to_string().contains("degraded"));
        assert!(e.to_string().contains("wal-append"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PdsError::InvalidParameter {
            message: "x".into(),
        });
    }
}
