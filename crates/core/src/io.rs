//! A small line-oriented text format for probabilistic relations, so that
//! relations can be exchanged with external tools (or dumped for inspection)
//! without going through JSON.
//!
//! The format is one record per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # header: model and domain size
//! model basic|tuple-pdf|value-pdf
//! domain <n>
//!
//! # basic model: one tuple per line
//! t <item> <probability>
//!
//! # tuple pdf model: one tuple per line, alternatives as item:prob pairs
//! t <item>:<prob> <item>:<prob> ...
//!
//! # value pdf model: one item per line, entries as frequency:prob pairs
//! v <item> <frequency>:<prob> <frequency>:<prob> ...
//! ```
//!
//! The MystiQ movie-link data used by the paper is distributed as
//! tab-separated `(item, probability)` pairs; [`read_basic_pairs`] accepts
//! exactly that shape so real data can be dropped in for the synthetic
//! generator.

use std::io::{BufRead, Write};

use crate::error::{PdsError, Result};
use crate::model::{BasicModel, ProbabilisticRelation, TuplePdfModel, ValuePdf, ValuePdfModel};
use crate::stream::StreamRecord;

/// Serialises a relation into the text format.
pub fn write_relation<W: Write>(relation: &ProbabilisticRelation, mut out: W) -> Result<()> {
    let io_err = |e: std::io::Error| PdsError::InvalidParameter {
        message: format!("i/o error while writing relation: {e}"),
    };
    writeln!(out, "model {}", relation.model_name()).map_err(io_err)?;
    writeln!(out, "domain {}", relation.n()).map_err(io_err)?;
    match relation {
        ProbabilisticRelation::Basic(m) => {
            for t in m.tuples() {
                writeln!(out, "t {} {}", t.item, t.prob).map_err(io_err)?;
            }
        }
        ProbabilisticRelation::TuplePdf(m) => {
            for t in m.tuples() {
                let alts: Vec<String> = t
                    .alternatives()
                    .iter()
                    .map(|(i, p)| format!("{i}:{p}"))
                    .collect();
                writeln!(out, "t {}", alts.join(" ")).map_err(io_err)?;
            }
        }
        ProbabilisticRelation::ValuePdf(m) => {
            for (i, pdf) in m.items().iter().enumerate() {
                if pdf.entries().is_empty() {
                    continue;
                }
                let entries: Vec<String> = pdf
                    .entries()
                    .iter()
                    .map(|(v, p)| format!("{v}:{p}"))
                    .collect();
                writeln!(out, "v {i} {}", entries.join(" ")).map_err(io_err)?;
            }
        }
    }
    Ok(())
}

/// Serialises a relation into a string in the text format.
pub fn relation_to_string(relation: &ProbabilisticRelation) -> Result<String> {
    let mut buf = Vec::new();
    write_relation(relation, &mut buf)?;
    String::from_utf8(buf).map_err(|e| PdsError::InvalidParameter {
        message: format!("relation serialisation produced invalid utf-8: {e}"),
    })
}

/// Parses a relation from the text format.
pub fn read_relation<R: BufRead>(input: R) -> Result<ProbabilisticRelation> {
    let mut model: Option<String> = None;
    let mut domain: Option<usize> = None;
    let mut basic_tuples: Vec<(usize, f64)> = Vec::new();
    let mut tuple_tuples: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut value_items: Vec<(usize, ValuePdf)> = Vec::new();

    for (line_no, line) in input.lines().enumerate() {
        let line = line.map_err(|e| PdsError::InvalidParameter {
            message: format!("i/o error while reading relation: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let tag = fields.next().unwrap_or_default();
        let parse_err = |what: &str| PdsError::InvalidParameter {
            message: format!("line {}: could not parse {what}: {line}", line_no + 1),
        };
        match tag {
            "model" => model = Some(fields.next().ok_or_else(|| parse_err("model"))?.to_string()),
            "domain" => {
                domain = Some(
                    fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| parse_err("domain size"))?,
                )
            }
            "t" => match model.as_deref() {
                Some("basic") => {
                    let item: usize = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| parse_err("item"))?;
                    let prob: f64 = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| parse_err("probability"))?;
                    basic_tuples.push((item, prob));
                }
                Some("tuple-pdf") => {
                    let mut alts = Vec::new();
                    for field in fields {
                        let (i, p) = field
                            .split_once(':')
                            .ok_or_else(|| parse_err("alternative"))?;
                        alts.push((
                            i.parse().map_err(|_| parse_err("alternative item"))?,
                            p.parse()
                                .map_err(|_| parse_err("alternative probability"))?,
                        ));
                    }
                    tuple_tuples.push(alts);
                }
                other => {
                    return Err(PdsError::InvalidParameter {
                        message: format!(
                            "line {}: tuple record but model is {:?}",
                            line_no + 1,
                            other
                        ),
                    })
                }
            },
            "v" => {
                let item: usize = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err("item"))?;
                let mut entries = Vec::new();
                for field in fields {
                    let (v, p) = field.split_once(':').ok_or_else(|| parse_err("entry"))?;
                    entries.push((
                        v.parse().map_err(|_| parse_err("entry frequency"))?,
                        p.parse().map_err(|_| parse_err("entry probability"))?,
                    ));
                }
                value_items.push((item, ValuePdf::new(entries)?));
            }
            _ => {
                return Err(PdsError::InvalidParameter {
                    message: format!("line {}: unknown record tag {tag:?}", line_no + 1),
                })
            }
        }
    }

    let n = domain.ok_or(PdsError::InvalidParameter {
        message: "missing `domain <n>` header".into(),
    })?;
    match model.as_deref() {
        Some("basic") => Ok(BasicModel::from_pairs(n, basic_tuples)?.into()),
        Some("tuple-pdf") => Ok(TuplePdfModel::from_alternatives(n, tuple_tuples)?.into()),
        Some("value-pdf") => Ok(ValuePdfModel::from_sparse(n, value_items)?.into()),
        other => Err(PdsError::InvalidParameter {
            message: format!("missing or unknown `model` header: {other:?}"),
        }),
    }
}

/// Parses a relation from a string in the text format.
pub fn relation_from_str(text: &str) -> Result<ProbabilisticRelation> {
    read_relation(text.as_bytes())
}

/// Reads whitespace- or comma-separated `(item, probability)` pairs — the
/// shape of the MystiQ movie-link dump used in the paper's experiments — into
/// a basic-model relation over the smallest domain containing every item.
pub fn read_basic_pairs<R: BufRead>(input: R) -> Result<BasicModel> {
    let mut pairs: Vec<(usize, f64)> = Vec::new();
    let mut max_item = 0usize;
    for (line_no, line) in input.lines().enumerate() {
        let line = line.map_err(|e| PdsError::InvalidParameter {
            message: format!("i/o error while reading pairs: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cleaned = line.replace(',', " ");
        let mut fields = cleaned.split_whitespace();
        let parse_err = || PdsError::InvalidParameter {
            message: format!(
                "line {}: expected `<item> <probability>`: {line}",
                line_no + 1
            ),
        };
        let item: usize = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(parse_err)?;
        let prob: f64 = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(parse_err)?;
        max_item = max_item.max(item);
        pairs.push((item, prob));
    }
    BasicModel::from_pairs(max_item + 1, pairs)
}

/// Serialises a sequence of stream records in a self-describing line format
/// (one record per line, no header — streams are unbounded and model-mixed):
///
/// ```text
/// b <item> <probability>            # basic tuple
/// x <item>:<prob> <item>:<prob> ... # x-tuple alternatives
/// v <item> <frequency>:<prob> ...   # value pdf for one item
/// ```
pub fn write_stream<'a, W: Write>(
    records: impl IntoIterator<Item = &'a StreamRecord>,
    mut out: W,
) -> Result<()> {
    let io_err = |e: std::io::Error| PdsError::InvalidParameter {
        message: format!("i/o error while writing stream: {e}"),
    };
    for record in records {
        match record {
            StreamRecord::Basic { item, prob } => {
                writeln!(out, "b {item} {prob}").map_err(io_err)?;
            }
            StreamRecord::Alternatives(alts) => {
                let alts: Vec<String> = alts.iter().map(|(i, p)| format!("{i}:{p}")).collect();
                writeln!(out, "x {}", alts.join(" ")).map_err(io_err)?;
            }
            StreamRecord::ValueDistribution { item, entries } => {
                let entries: Vec<String> =
                    entries.iter().map(|(v, p)| format!("{v}:{p}")).collect();
                writeln!(out, "v {item} {}", entries.join(" ")).map_err(io_err)?;
            }
        }
    }
    Ok(())
}

/// Parses a stream of records from the line format written by
/// [`write_stream`]; `#` comments and blank lines are ignored and every
/// record is validated on the way in.
pub fn read_stream<R: BufRead>(input: R) -> Result<Vec<StreamRecord>> {
    let mut records = Vec::new();
    for (line_no, line) in input.lines().enumerate() {
        let line = line.map_err(|e| PdsError::InvalidParameter {
            message: format!("i/o error while reading stream: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let tag = fields.next().unwrap_or_default();
        let parse_err = |what: &str| PdsError::InvalidParameter {
            message: format!("line {}: could not parse {what}: {line}", line_no + 1),
        };
        let record = match tag {
            "b" => {
                let record = StreamRecord::Basic {
                    item: fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| parse_err("item"))?,
                    prob: fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| parse_err("probability"))?,
                };
                if fields.next().is_some() {
                    // Merged lines or shifted columns must not drop data
                    // silently.
                    return Err(parse_err("record (unexpected trailing fields)"));
                }
                record
            }
            "x" => {
                let mut alts = Vec::new();
                for field in fields {
                    let (i, p) = field
                        .split_once(':')
                        .ok_or_else(|| parse_err("alternative"))?;
                    alts.push((
                        i.parse().map_err(|_| parse_err("alternative item"))?,
                        p.parse()
                            .map_err(|_| parse_err("alternative probability"))?,
                    ));
                }
                StreamRecord::Alternatives(alts)
            }
            "v" => {
                let item = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err("item"))?;
                let mut entries = Vec::new();
                for field in fields {
                    let (v, p) = field.split_once(':').ok_or_else(|| parse_err("entry"))?;
                    entries.push((
                        v.parse().map_err(|_| parse_err("entry frequency"))?,
                        p.parse().map_err(|_| parse_err("entry probability"))?,
                    ));
                }
                StreamRecord::ValueDistribution { item, entries }
            }
            _ => {
                return Err(PdsError::InvalidParameter {
                    message: format!("line {}: unknown stream record tag {tag:?}", line_no + 1),
                })
            }
        };
        record.validate()?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{test_workloads, tpch_like, TpchLikeConfig};

    #[test]
    fn round_trip_every_model_through_the_text_format() {
        for w in test_workloads(24, 9) {
            let text = relation_to_string(&w.relation).unwrap();
            let back = relation_from_str(&text).unwrap();
            assert_eq!(back.n(), w.relation.n(), "{}", w.name);
            assert_eq!(back.model_name(), w.relation.model_name());
            // Semantics preserved: identical induced pdfs.
            let a = w.relation.induced_value_pdfs();
            let b = back.induced_value_pdfs();
            for i in 0..w.relation.n() {
                for v in a.item(i).support() {
                    assert!(
                        (a.item(i).probability_of(v) - b.item(i).probability_of(v)).abs() < 1e-9,
                        "{} item {i} value {v}",
                        w.name
                    );
                }
            }
        }
    }

    #[test]
    fn tuple_pdf_round_trip_preserves_alternative_grouping() {
        let rel: ProbabilisticRelation = tpch_like(TpchLikeConfig {
            n: 16,
            tuples: 20,
            max_alternatives: 3,
            locality_window: 4,
            skew: 0.5,
            seed: 1,
        })
        .into();
        let text = relation_to_string(&rel).unwrap();
        let back = relation_from_str(&text).unwrap();
        match (&rel, &back) {
            (ProbabilisticRelation::TuplePdf(a), ProbabilisticRelation::TuplePdf(b)) => {
                assert_eq!(a.tuple_count(), b.tuple_count());
                for (ta, tb) in a.tuples().iter().zip(b.tuples()) {
                    assert_eq!(ta.len(), tb.len());
                    for (&(ia, pa), &(ib, pb)) in ta.alternatives().iter().zip(tb.alternatives()) {
                        assert_eq!(ia, ib);
                        assert!((pa - pb).abs() < 1e-12);
                    }
                }
            }
            _ => panic!("model kind changed in round trip"),
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\nmodel basic\ndomain 4\n# tuples\nt 0 0.5\nt 2 0.25\n";
        let rel = relation_from_str(text).unwrap();
        assert_eq!(rel.n(), 4);
        assert_eq!(rel.m(), 2);
        assert!((rel.expected_frequencies()[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        assert!(relation_from_str("model basic\nt 0 0.5\n").is_err()); // no domain
        assert!(relation_from_str("domain 4\nt 0 0.5\n").is_err()); // no model
        assert!(relation_from_str("model basic\ndomain 4\nt x 0.5\n").is_err());
        assert!(relation_from_str("model basic\ndomain 4\nt 0 1.5\n").is_err());
        assert!(relation_from_str("model value-pdf\ndomain 4\nv 0 1.0\n").is_err()); // missing :p
        assert!(relation_from_str("model tuple-pdf\ndomain 4\nz 0\n").is_err()); // unknown tag
        let err = relation_from_str("model nosuch\ndomain 4\n").unwrap_err();
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn stream_records_round_trip_through_the_line_format() {
        use crate::stream::records_of;
        for w in test_workloads(16, 4) {
            let records = records_of(&w.relation);
            let mut buf = Vec::new();
            write_stream(&records, &mut buf).unwrap();
            let back = read_stream(buf.as_slice()).unwrap();
            assert_eq!(records, back, "{}", w.name);
        }
    }

    #[test]
    fn malformed_stream_records_are_rejected() {
        assert!(read_stream("b 0\n".as_bytes()).is_err()); // missing prob
        assert!(read_stream("b 3 0.5 0.9\n".as_bytes()).is_err()); // trailing field
        assert!(read_stream("b 0 2.0\n".as_bytes()).is_err()); // invalid prob
        assert!(read_stream("x 1 0.5\n".as_bytes()).is_err()); // missing `:`
        assert!(read_stream("v 0 1.0\n".as_bytes()).is_err()); // missing `:p`
        assert!(read_stream("q 0 0.5\n".as_bytes()).is_err()); // unknown tag
        assert!(read_stream("# ok\n\nb 3 0.5\n".as_bytes()).is_ok());
    }

    #[test]
    fn mystiq_style_pair_files_are_accepted() {
        let text = "# item  probability\n3 0.5\n3,0.25\n7\t0.9\n";
        let basic = read_basic_pairs(text.as_bytes()).unwrap();
        assert_eq!(basic.n(), 8);
        assert_eq!(basic.m(), 3);
        assert!((basic.expected_frequencies()[3] - 0.75).abs() < 1e-12);
        assert!(read_basic_pairs("3 oops\n".as_bytes()).is_err());
    }
}
