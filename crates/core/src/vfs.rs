//! The durable-path filesystem surface: a zero-cost passthrough over
//! `std::fs` with a deterministic, labeled **fault injector** behind it.
//!
//! Every filesystem operation the store's durable paths perform (WAL
//! appends and commits, manifest installs and publishes, segment-blob
//! writes and renames, recovery reads, cleanup removals) is routed through
//! the free functions of this module instead of calling `std::fs`
//! directly.  Each call carries a **site label** (`"wal-append"`,
//! `"blob-publish"`, …) naming the durable-path step it implements — the
//! same idea as the store's `crashpoint` labels, but for *I/O errors while
//! the process lives* rather than process death.
//!
//! With no fault armed, every function is a direct passthrough: the only
//! overhead is one inlined relaxed atomic load per call (the injector's
//! folded state word), so the production binary and the tested binary are
//! the same binary.
//!
//! ## Fault injection
//!
//! The [`fault`] submodule arms **one deterministic fault at a time**:
//! a site label, an [`fault::ErrorClass`] (EIO, ENOSPC, short write,
//! fsync failure, rename failure), an nth-op trigger, a failure count
//! (one failing op simulates a *transient* fault that a retry survives;
//! `u64::MAX` simulates a *persistently* failing disk), and an optional
//! path scope so concurrent tests in one process never see each other's
//! faults.  Arming happens either programmatically
//! ([`fault::arm`], which also serialises fault-armed tests through a
//! process-wide lock) or through the environment
//! (`PDS_FAULT_SITE` / `PDS_FAULT_CLASS` / `PDS_FAULT_AT` /
//! `PDS_FAULT_COUNT`), mirroring the crash-point arming protocol.
//!
//! A short write is injected *honestly*: a real prefix of the payload
//! reaches the destination before the error surfaces, so the torn-frame
//! tolerance of the WAL/manifest decoders is exercised with genuine torn
//! bytes, not simulated ones.  Injected errors are distinguishable from
//! real disk errors ([`fault::is_injected`]) so telemetry can count the
//! two separately.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Creates `path` and any missing parents.
pub fn create_dir_all(site: &str, path: &Path) -> io::Result<()> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::create_dir_all(path)
}

/// Reads the entire file at `path` into bytes.
pub fn read(site: &str, path: &Path) -> io::Result<Vec<u8>> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::read(path)
}

/// Reads exactly `len` bytes starting at byte `offset` of the file at
/// `path` — the lazy-block primitive: a blob footer or a single synopsis
/// block is loaded without pulling the rest of the file into memory.  A
/// file shorter than `offset + len` surfaces as
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_range(site: &str, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    let mut file = fs::File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// The length in bytes of the file at `path` — the other half of the
/// lazy-block protocol: a footer sits at a fixed offset from the *end* of
/// its blob, so the reader must learn the length before the first
/// [`read_range`].
pub fn path_len(site: &str, path: &Path) -> io::Result<u64> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    Ok(fs::metadata(path)?.len())
}

/// Reads the entire file at `path` into a string.
pub fn read_to_string(site: &str, path: &Path) -> io::Result<String> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::read_to_string(path)
}

/// Writes `contents` as the whole file at `path` (create or truncate).
///
/// An armed short-write fault writes a real prefix of `contents` before
/// surfacing the error, leaving a genuinely torn file behind.
pub fn write(site: &str, path: &Path, contents: &[u8]) -> io::Result<()> {
    match fault::check_write(site, path, contents.len()) {
        fault::Injection::None => fs::write(path, contents),
        fault::Injection::Fail(e) => Err(e),
        fault::Injection::Short(n, e) => {
            let _ = fs::write(path, &contents[..n]);
            Err(e)
        }
    }
}

/// Creates (or truncates) the file at `path` for writing.
pub fn create(site: &str, path: &Path) -> io::Result<fs::File> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::File::create(path)
}

/// Opens `path` in append mode, creating it when `create` is set.
pub fn open_append(site: &str, path: &Path, create: bool) -> io::Result<fs::File> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::OpenOptions::new()
        .append(true)
        .create(create)
        .open(path)
}

/// Writes all of `buf` through `writer` (whose backing file is `path`,
/// used for fault scoping only).
///
/// An armed short-write fault pushes a real prefix of `buf` into the
/// writer before surfacing the error, so buffered writers genuinely carry
/// a torn frame afterwards.
pub fn write_all(site: &str, path: &Path, writer: &mut impl Write, buf: &[u8]) -> io::Result<()> {
    match fault::check_write(site, path, buf.len()) {
        fault::Injection::None => writer.write_all(buf),
        fault::Injection::Fail(e) => Err(e),
        fault::Injection::Short(n, e) => {
            let _ = writer.write_all(&buf[..n]);
            Err(e)
        }
    }
}

/// Flushes `writer` (backing file `path`).
pub fn flush(site: &str, path: &Path, writer: &mut impl Write) -> io::Result<()> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    writer.flush()
}

/// `fdatasync`s `file` (at `path`).
pub fn sync_data(site: &str, path: &Path, file: &fs::File) -> io::Result<()> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    file.sync_data()
}

/// Opens the file at `path` read-only and `fdatasync`s it — the
/// "sync a freshly staged file before renaming it live" idiom.
pub fn sync_path(site: &str, path: &Path) -> io::Result<()> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::File::open(path)?.sync_data()
}

/// Opens the directory at `dir` and `fsync`s it — the durability step
/// that makes a rename inside it survive power loss.
pub fn sync_dir(site: &str, dir: &Path) -> io::Result<()> {
    if let Some(e) = fault::check(site, dir) {
        return Err(e);
    }
    fs::File::open(dir)?.sync_all()
}

/// Truncates (or extends) `file` (at `path`) to `len` bytes.
pub fn set_len(site: &str, path: &Path, file: &fs::File, len: u64) -> io::Result<()> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    file.set_len(len)
}

/// The current length of `file` (at `path`) in bytes.
pub fn file_len(site: &str, path: &Path, file: &fs::File) -> io::Result<u64> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    Ok(file.metadata()?.len())
}

/// Renames `from` to `to` — the atomic-publish primitive.
pub fn rename(site: &str, from: &Path, to: &Path) -> io::Result<()> {
    if let Some(e) = fault::check(site, from) {
        return Err(e);
    }
    fs::rename(from, to)
}

/// Removes the file at `path`.
pub fn remove_file(site: &str, path: &Path) -> io::Result<()> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::remove_file(path)
}

/// Lists the directory at `path`.
pub fn read_dir(site: &str, path: &Path) -> io::Result<fs::ReadDir> {
    if let Some(e) = fault::check(site, path) {
        return Err(e);
    }
    fs::read_dir(path)
}

pub mod fault {
    //! The deterministic fault injector behind the [`vfs`](super)
    //! passthrough: at most one armed fault per process, matched by site
    //! label (and optional path scope), triggered on the nth matching
    //! operation or by a seeded schedule.

    use std::io;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    /// The injectable error classes — the disk-misbehaviour matrix.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ErrorClass {
        /// A generic I/O error (`EIO`): the device-level failure.
        Eio,
        /// Out of space (`ENOSPC`), surfaced as
        /// [`io::ErrorKind::StorageFull`].
        Enospc,
        /// A short write: a real prefix of the payload lands before the
        /// error surfaces, leaving genuinely torn bytes behind.  On
        /// non-write operations this class degenerates to a plain error.
        ShortWrite,
        /// A failing `fsync`/`fdatasync`: durability cannot be promised.
        FsyncFail,
        /// A failing rename: an atomic publish that never happens.
        RenameFail,
    }

    impl ErrorClass {
        /// Every class, in matrix order.
        pub const ALL: [ErrorClass; 5] = [
            ErrorClass::Eio,
            ErrorClass::Enospc,
            ErrorClass::ShortWrite,
            ErrorClass::FsyncFail,
            ErrorClass::RenameFail,
        ];

        /// The stable text name (used by `PDS_FAULT_CLASS` and telemetry).
        pub fn name(self) -> &'static str {
            match self {
                ErrorClass::Eio => "eio",
                ErrorClass::Enospc => "enospc",
                ErrorClass::ShortWrite => "short-write",
                ErrorClass::FsyncFail => "fsync-fail",
                ErrorClass::RenameFail => "rename-fail",
            }
        }

        /// Parses a class name (as produced by [`ErrorClass::name`]).
        pub fn parse(text: &str) -> Option<ErrorClass> {
            ErrorClass::ALL.into_iter().find(|c| c.name() == text)
        }
    }

    /// One armed fault: what fails, where, and for how long.
    #[derive(Debug, Clone)]
    pub struct FaultSpec {
        /// The site label the fault matches (e.g. `"wal-append"`).
        pub site: String,
        /// The error class to inject.
        pub class: ErrorClass,
        /// Trigger on the `at`-th matching operation (1-based).
        pub at: u64,
        /// How many matching operations fail once triggered: `1` is a
        /// transient fault a retry survives, [`u64::MAX`] a persistently
        /// failing disk.
        pub count: u64,
        /// Only operations on paths under this directory match; `None`
        /// matches every path.  In-process tests must scope their fault
        /// to their own temp directory.
        pub scope: Option<PathBuf>,
        /// Seeded-schedule mode: when `Some((seed, one_in))`, each
        /// matching operation fails with deterministic pseudo-probability
        /// `1/one_in` (the nth-op trigger is ignored).
        pub schedule: Option<(u64, u64)>,
    }

    impl FaultSpec {
        /// A persistent fault at `site`, triggering on the first matching
        /// operation — the common matrix row.
        pub fn persistent(site: &str, class: ErrorClass) -> FaultSpec {
            FaultSpec {
                site: site.to_string(),
                class,
                at: 1,
                count: u64::MAX,
                scope: None,
                schedule: None,
            }
        }

        /// A transient fault at `site`: exactly `count` matching
        /// operations fail starting at the `at`-th, then the disk
        /// "recovers".
        pub fn transient(site: &str, class: ErrorClass, at: u64, count: u64) -> FaultSpec {
            FaultSpec {
                site: site.to_string(),
                class,
                at,
                count,
                scope: None,
                schedule: None,
            }
        }

        /// Restricts the fault to paths under `dir`.
        pub fn scoped(mut self, dir: &Path) -> FaultSpec {
            self.scope = Some(dir.to_path_buf());
            self
        }
    }

    struct Armed {
        spec: FaultSpec,
        /// Matching operations until the trigger (counts down to 1).
        countdown: AtomicI64,
        /// Failing operations remaining once triggered.
        remaining: AtomicI64,
        /// xorshift state for the seeded-schedule mode.
        prng: AtomicU64,
    }

    /// Injector state, folded into **one** atomic so the disabled fast
    /// path — taken by every durable-path operation of every production
    /// store — is a single relaxed load and a predicted branch.  A
    /// separate env-init latch plus an enabled flag measurably taxed
    /// buffered WAL appends (caught by `pds_store_pipeline --vfs-gate`).
    static STATE: AtomicU8 = AtomicU8::new(UNINIT);
    /// [`STATE`]: the environment has not been consulted yet.
    const UNINIT: u8 = 0;
    /// [`STATE`]: no fault armed; every operation passes through.
    const CLEAR: u8 = 1;
    /// [`STATE`]: a fault is armed; operations consult [`ACTIVE`].
    const ARMED: u8 = 2;
    static ACTIVE: Mutex<Option<Arc<Armed>>> = Mutex::new(None);
    static INJECTED: AtomicU64 = AtomicU64::new(0);
    /// Serialises fault-armed tests within one process: only one fault
    /// can be armed at a time, and a concurrently running fault test
    /// would otherwise race on the global injector state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn clamp_i64(n: u64) -> i64 {
        i64::try_from(n).unwrap_or(i64::MAX)
    }

    fn install(spec: FaultSpec) {
        let armed = Armed {
            countdown: AtomicI64::new(clamp_i64(spec.at.max(1))),
            remaining: AtomicI64::new(clamp_i64(spec.count)),
            prng: AtomicU64::new(spec.schedule.map(|(seed, _)| seed | 1).unwrap_or(1)),
            spec,
        };
        let mut active = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
        *active = Some(Arc::new(armed));
        drop(active);
        STATE.store(ARMED, Ordering::SeqCst);
    }

    fn disarm() {
        // Keep the state armed when the process was env-armed: the armed
        // spec is reinstalled from the parsed environment.
        let env = env_spec();
        let mut active = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
        match env {
            Some(spec) => {
                *active = Some(Arc::new(Armed {
                    countdown: AtomicI64::new(clamp_i64(spec.at.max(1))),
                    remaining: AtomicI64::new(clamp_i64(spec.count)),
                    prng: AtomicU64::new(1),
                    spec,
                }));
            }
            None => {
                *active = None;
                drop(active);
                STATE.store(CLEAR, Ordering::SeqCst);
            }
        }
    }

    fn env_spec() -> Option<FaultSpec> {
        static ENV: OnceLock<Option<FaultSpec>> = OnceLock::new();
        ENV.get_or_init(|| {
            let site = std::env::var("PDS_FAULT_SITE").ok()?;
            if site.is_empty() {
                return None;
            }
            let class = std::env::var("PDS_FAULT_CLASS")
                .ok()
                .and_then(|c| ErrorClass::parse(&c))
                .unwrap_or(ErrorClass::Eio);
            let at = std::env::var("PDS_FAULT_AT")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            let count = std::env::var("PDS_FAULT_COUNT")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(u64::MAX);
            Some(FaultSpec {
                site,
                class,
                at,
                count,
                scope: std::env::var("PDS_FAULT_SCOPE").ok().map(PathBuf::from),
                schedule: None,
            })
        })
        .clone()
    }

    #[inline]
    fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            CLEAR => false,
            ARMED => true,
            _ => init_state(),
        }
    }

    /// First-operation slow path: consult the environment arming protocol
    /// exactly once, then settle [`STATE`].
    #[cold]
    fn init_state() -> bool {
        static ENV_INIT: OnceLock<()> = OnceLock::new();
        ENV_INIT.get_or_init(|| match env_spec() {
            Some(spec) => install(spec),
            // compare_exchange, not store: a programmatic `arm` racing
            // with another thread's first operation must not be clobbered
            // back to CLEAR.
            None => {
                let _ = STATE.compare_exchange(UNINIT, CLEAR, Ordering::SeqCst, Ordering::SeqCst);
            }
        });
        STATE.load(Ordering::Relaxed) == ARMED
    }

    /// A programmatically armed fault; dropping it disarms the injector
    /// (and releases the process-wide fault-test lock).
    pub struct FaultGuard {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            disarm();
        }
    }

    /// Arms `spec` for the lifetime of the returned guard.  Blocks until
    /// any other armed fault in this process is dropped, so fault tests
    /// serialise instead of interfering.
    pub fn arm(spec: FaultSpec) -> FaultGuard {
        let lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(spec);
        FaultGuard { _lock: lock }
    }

    /// Total faults injected by this process so far.
    pub fn injected_total() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    /// Whether `e` was produced by the injector (as opposed to the real
    /// disk) — telemetry counts the two separately.
    pub fn is_injected(e: &io::Error) -> bool {
        e.to_string().starts_with("injected ")
    }

    /// The injector's verdict for a write-class operation.
    pub enum Injection {
        /// No fault: perform the operation.
        None,
        /// Fail without touching the destination.
        Fail(io::Error),
        /// Write exactly this real prefix length, then fail.
        Short(usize, io::Error),
    }

    fn make_error(class: ErrorClass, site: &str) -> io::Error {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        let message = format!("injected {} at {site}", class.name());
        match class {
            ErrorClass::Enospc => io::Error::new(io::ErrorKind::StorageFull, message),
            _ => io::Error::other(message),
        }
    }

    /// True when the armed fault fires for this (site, path) operation.
    fn fires(armed: &Armed, site: &str, path: &Path) -> bool {
        if armed.spec.site != site {
            return false;
        }
        if let Some(scope) = &armed.spec.scope {
            if !path.starts_with(scope) {
                return false;
            }
        }
        if let Some((_, one_in)) = armed.spec.schedule {
            // xorshift64*: deterministic per armed seed and op order.
            let mut fired = false;
            let _ = armed
                .prng
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |mut x| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    fired = one_in <= 1 || x % one_in == 0;
                    Some(x)
                });
            return fired;
        }
        let n = armed.countdown.fetch_sub(1, Ordering::SeqCst);
        if n > 1 {
            return false;
        }
        armed.remaining.fetch_sub(1, Ordering::SeqCst) > 0
    }

    fn active() -> Option<Arc<Armed>> {
        let guard = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
        guard.clone()
    }

    /// Fault check for a non-write operation at `site` on `path`.
    ///
    /// `#[inline]` (here, on [`check_write`] and on [`enabled`]) is what
    /// makes the passthrough's disabled fast path genuinely cost two
    /// relaxed atomic loads: the vfs wrappers are instantiated in caller
    /// crates, and without it every buffered WAL append would pay a
    /// cross-crate call chain (pinned by `pds_store_pipeline --vfs-gate`).
    #[inline]
    pub(super) fn check(site: &str, path: &Path) -> Option<io::Error> {
        if !enabled() {
            return None;
        }
        let armed = active()?;
        if fires(&armed, site, path) {
            Some(make_error(armed.spec.class, site))
        } else {
            None
        }
    }

    /// Fault check for a write of `len` bytes at `site` on `path`.
    #[inline]
    pub(super) fn check_write(site: &str, path: &Path, len: usize) -> Injection {
        if !enabled() {
            return Injection::None;
        }
        let Some(armed) = active() else {
            return Injection::None;
        };
        if !fires(&armed, site, path) {
            return Injection::None;
        }
        let e = make_error(armed.spec.class, site);
        if armed.spec.class == ErrorClass::ShortWrite && len > 1 {
            Injection::Short(len / 2, e)
        } else {
            Injection::Fail(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fault::{ErrorClass, FaultSpec};
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pds-vfs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn passthrough_roundtrips_without_faults() {
        let dir = tmp_dir("pass");
        let path = dir.join("a.bin");
        write("test-site", &path, b"hello").unwrap();
        assert_eq!(read("test-site", &path).unwrap(), b"hello");
        assert_eq!(read_to_string("test-site", &path).unwrap(), "hello");
        let renamed = dir.join("b.bin");
        rename("test-site", &path, &renamed).unwrap();
        assert!(read_dir("test-site", &dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name() == "b.bin"));
        remove_file("test-site", &renamed).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_range_slices_measures_and_respects_faults() {
        let dir = tmp_dir("range");
        let path = dir.join("blocks.bin");
        write("t-range", &path, b"0123456789").unwrap();
        assert_eq!(path_len("t-range", &path).unwrap(), 10);
        assert_eq!(read_range("t-range", &path, 0, 4).unwrap(), b"0123");
        assert_eq!(read_range("t-range", &path, 6, 4).unwrap(), b"6789");
        assert_eq!(read_range("t-range", &path, 10, 0).unwrap(), b"");
        // Past-the-end reads surface as UnexpectedEof, never a short buffer.
        let eof = read_range("t-range", &path, 8, 4).unwrap_err();
        assert_eq!(eof.kind(), std::io::ErrorKind::UnexpectedEof);
        // An armed fault at the site fails both primitives before any I/O.
        let guard = fault::arm(FaultSpec::persistent("t-range", ErrorClass::Eio).scoped(&dir));
        assert!(fault::is_injected(
            &read_range("t-range", &path, 0, 4).unwrap_err()
        ));
        assert!(fault::is_injected(&path_len("t-range", &path).unwrap_err()));
        drop(guard);
        assert_eq!(read_range("t-range", &path, 2, 3).unwrap(), b"234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_fault_fires_on_nth_op_then_expires() {
        let dir = tmp_dir("nth");
        let path = dir.join("x.bin");
        let before = fault::injected_total();
        let guard = fault::arm(FaultSpec::transient("t-nth", ErrorClass::Eio, 2, 1).scoped(&dir));
        write("t-nth", &path, b"one").unwrap(); // op 1: below trigger
        let err = write("t-nth", &path, b"two").unwrap_err(); // op 2: fires
        assert!(fault::is_injected(&err), "{err}");
        write("t-nth", &path, b"three").unwrap(); // count exhausted
        drop(guard);
        write("t-nth", &path, b"four").unwrap(); // disarmed
        assert_eq!(fault::injected_total() - before, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_leaves_a_real_prefix() {
        let dir = tmp_dir("short");
        let path = dir.join("torn.bin");
        let guard =
            fault::arm(FaultSpec::persistent("t-short", ErrorClass::ShortWrite).scoped(&dir));
        let err = write("t-short", &path, b"0123456789").unwrap_err();
        assert!(fault::is_injected(&err));
        drop(guard);
        assert_eq!(read("t-short", &path).unwrap(), b"01234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scope_and_site_filters_isolate_faults() {
        let dir = tmp_dir("scope");
        let other = tmp_dir("scope-other");
        let guard = fault::arm(FaultSpec::persistent("t-scope", ErrorClass::Eio).scoped(&dir));
        // Same site, other directory: passthrough.
        write("t-scope", &other.join("ok.bin"), b"ok").unwrap();
        // Other site, scoped directory: passthrough.
        write("t-elsewhere", &dir.join("ok.bin"), b"ok").unwrap();
        // Site and scope both match: fails.
        assert!(write("t-scope", &dir.join("bad.bin"), b"no").is_err());
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other);
    }

    #[test]
    fn enospc_class_surfaces_storage_full() {
        let dir = tmp_dir("enospc");
        let guard = fault::arm(FaultSpec::persistent("t-nospc", ErrorClass::Enospc).scoped(&dir));
        let err = write("t-nospc", &dir.join("f.bin"), b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert!(fault::is_injected(&err));
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let run = |seed: u64| {
            let dir = tmp_dir("sched");
            let mut spec = FaultSpec::persistent("t-sched", ErrorClass::Eio).scoped(&dir);
            spec.schedule = Some((seed, 3));
            let guard = fault::arm(spec);
            let pattern: Vec<bool> = (0..32)
                .map(|i| write("t-sched", &dir.join(format!("{i}.bin")), b"x").is_err())
                .collect();
            drop(guard);
            let _ = std::fs::remove_dir_all(&dir);
            pattern
        };
        let a = run(0xC0DE);
        assert_eq!(a, run(0xC0DE), "same seed, same schedule");
        assert!(
            a.iter().any(|&f| f),
            "a 1-in-3 schedule fires within 32 ops"
        );
        assert!(!a.iter().all(|&f| f), "and does not fire every time");
    }

    #[test]
    fn class_names_roundtrip() {
        for class in ErrorClass::ALL {
            assert_eq!(ErrorClass::parse(class.name()), Some(class));
        }
        assert_eq!(ErrorClass::parse("bogus"), None);
    }

    #[test]
    fn sync_helpers_pass_through() {
        let dir = tmp_dir("sync");
        let path = dir.join("s.bin");
        let mut file = create("t-sync", &path).unwrap();
        write_all("t-sync", &path, &mut file, b"payload").unwrap();
        flush("t-sync", &path, &mut file).unwrap();
        sync_data("t-sync", &path, &file).unwrap();
        set_len("t-sync", &path, &file, 3).unwrap();
        assert_eq!(file_len("t-sync", &path, &file).unwrap(), 3);
        sync_dir("t-sync", &dir).unwrap();
        let appended = open_append("t-sync", &path, false).unwrap();
        drop(appended);
        drop(file);
        create_dir_all("t-sync", &dir.join("sub")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
