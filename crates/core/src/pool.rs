//! A small scoped thread pool for data-parallel construction work.
//!
//! Every parallel path in the workspace (the exact-DP endpoint sweeps, the
//! store's batch ingest, per-partition seals and compactions) funnels
//! through the two helpers here, so thread-count policy lives in exactly one
//! place:
//!
//! * [`parallel_map`] — apply a function to every element of an owned `Vec`,
//!   returning results in input order;
//! * [`parallel_chunks`] — split an index range `[0, len)` into contiguous
//!   chunks and apply a function to each, returning per-chunk results in
//!   chunk order.
//!
//! ## Thread-count resolution
//!
//! [`num_threads`] resolves, in priority order: the process-wide programmatic
//! override ([`set_num_threads`]), the `PDS_THREADS` environment variable
//! (read once, at first use), and finally
//! [`std::thread::available_parallelism`].  Each helper also has a `*_with`
//! variant taking an explicit thread count, which is what deterministic
//! serial-vs-parallel equivalence tests use (the global override would leak
//! between concurrently running tests).
//!
//! ## Scoping and panic-propagation contract
//!
//! Both helpers are built on [`std::thread::scope`]:
//!
//! * **Scoping.**  Worker threads never outlive the call: every borrow passed
//!   in lives at least as long as the helper invocation, so closures may
//!   capture `&T` of the caller's locals without `'static` bounds or `Arc`s.
//!   No threads are pooled between calls — spawn cost is a few microseconds
//!   per worker and the helpers are meant for coarse-grained work (whole DP
//!   levels, whole partition batches), where that cost is noise.
//! * **Panic propagation.**  If a worker closure panics, the panic payload is
//!   re-raised on the calling thread when the scope joins (the behaviour of
//!   `std::thread::scope` itself); no result is returned and no panic is
//!   swallowed.  Helpers never unwind while holding internal locks other
//!   than the work-distribution mutex, whose poisoning cannot outlive the
//!   call.
//! * **Determinism.**  Work is distributed dynamically (an atomic cursor over
//!   fixed chunk boundaries) for load balance, but results are reassembled
//!   in input order, so the output is independent of scheduling.  Callers
//!   whose per-element work is itself deterministic therefore get identical
//!   results at every thread count — the property the serial-vs-concurrent
//!   store equivalence suite pins.
//!
//! With a resolved thread count of 1 (or trivially small inputs) the helpers
//! degenerate to a plain serial loop on the calling thread — no threads are
//! spawned, so single-thread performance matches hand-written serial code.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide programmatic override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `PDS_THREADS` environment variable, parsed once.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Sets the process-wide worker-thread count used by [`num_threads`].
/// `Some(n)` forces `n` (clamped to at least 1); `None` restores the
/// environment/hardware default.  Prefer the explicit `*_with` helpers in
/// tests — this override is global.
pub fn set_num_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::SeqCst);
}

/// The worker-thread count parallel helpers use by default: the
/// [`set_num_threads`] override if set, else the `PDS_THREADS` environment
/// variable (read once at first use), else
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    let env = ENV_THREADS.get_or_init(|| {
        std::env::var("PDS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    });
    if let Some(n) = env {
        return *n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every element of `items` using [`num_threads`] workers,
/// returning results in input order.  See the module docs for the scoping,
/// panic and determinism contract.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(num_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker-thread count (1 runs serially on
/// the calling thread).
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Hand out elements by index through an atomic cursor; each worker
    // returns (index, result) pairs which are reassembled in input order.
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("pool slot lock poisoned")
                            .take()
                            .expect("pool slot taken twice");
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise the worker's own panic payload so the original
                // message survives (the module-level contract).
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut ordered: Vec<Option<R>> = (0..slots.len()).map(|_| None).collect();
    for (i, r) in collected.drain(..).flatten() {
        ordered[i] = Some(r);
    }
    ordered
        .into_iter()
        .map(|r| r.expect("every index produced exactly one result"))
        .collect()
}

/// Splits `[0, len)` into contiguous chunks of at least `min_chunk` indices
/// (the final chunk may be smaller) and applies `f` to each chunk range on
/// [`num_threads`] workers, returning per-chunk results in chunk order.
pub fn parallel_chunks<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    parallel_chunks_with(num_threads(), len, min_chunk, f)
}

/// [`parallel_chunks`] with an explicit worker-thread count (1 runs serially
/// on the calling thread).
pub fn parallel_chunks_with<R, F>(threads: usize, len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let threads = threads.max(1);
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    if threads == 1 || len <= min_chunk {
        return vec![f(0..len)];
    }
    // At most 4 chunks per worker keeps dynamic balancing useful without
    // drowning small inputs in chunk overhead.
    let max_chunks = threads * 4;
    let chunk = min_chunk.max(len.div_ceil(max_chunks));
    let num_chunks = len.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(num_chunks))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let range = c * chunk..((c + 1) * chunk).min(len);
                        out.push((c, f(range)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise the worker's own panic payload so the original
                // message survives (the module-level contract).
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut ordered: Vec<Option<R>> = (0..num_chunks).map(|_| None).collect();
    for (c, r) in collected.drain(..).flatten() {
        ordered[c] = Some(r);
    }
    ordered
        .into_iter()
        .map(|r| r.expect("every chunk produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let items: Vec<usize> = (0..101).collect();
            let out = parallel_map_with(threads, items, |i| i * 3);
            assert_eq!(out, (0..101).map(|i| i * 3).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map_with(4, empty, |i| i).is_empty());
    }

    #[test]
    fn parallel_map_results_are_thread_count_independent() {
        let serial = parallel_map_with(1, (0..500).collect(), |i: usize| (i as f64).sqrt());
        for threads in [2, 3, 8] {
            let parallel =
                parallel_map_with(threads, (0..500).collect(), |i: usize| (i as f64).sqrt());
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn parallel_chunks_tile_the_range_exactly_once() {
        for (threads, len, min_chunk) in [(1, 10, 1), (4, 1000, 16), (3, 17, 5), (8, 64, 64)] {
            let chunks = parallel_chunks_with(threads, len, min_chunk, |r| r);
            let mut next = 0usize;
            for r in &chunks {
                assert_eq!(r.start, next, "threads={threads} len={len}");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, len);
        }
        assert!(parallel_chunks_with(4, 0, 8, |r| r).is_empty());
    }

    #[test]
    fn parallel_chunks_respect_min_chunk() {
        let chunks = parallel_chunks_with(8, 100, 40, |r| r.len());
        for (i, &len) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                assert!(len >= 40);
            }
        }
    }

    #[test]
    fn worker_panics_propagate_to_the_caller_with_their_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(2, (0..64).collect::<Vec<usize>>(), |i| {
                assert!(i != 13, "boom at {i}");
                i
            })
        });
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(message.contains("boom at 13"), "payload lost: {message:?}");
    }

    #[test]
    fn thread_count_resolution_prefers_the_override() {
        // Serialised against other tests by touching only the override.
        set_num_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_num_threads(Some(0)); // clamps to 1
        assert_eq!(num_threads(), 1);
        set_num_threads(None);
        assert!(num_threads() >= 1);
    }
}
