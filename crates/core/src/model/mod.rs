//! Probabilistic data models (Section 2.1 of the paper).
//!
//! Three models are provided, mirroring Definitions 1–3:
//!
//! * [`BasicModel`] — independent `(item, probability)` tuples;
//! * [`TuplePdfModel`] — independent tuples, each with mutually-exclusive
//!   alternatives (Trio-style x-tuples);
//! * [`ValuePdfModel`] — an independent frequency pdf per item.
//!
//! [`ProbabilisticRelation`] wraps the three behind a single interface used by
//! the synopsis construction algorithms.

pub mod basic;
pub mod tuple_pdf;
pub mod value_pdf;

pub use basic::{BasicModel, BasicTuple};
pub use tuple_pdf::{TupleAlternatives, TuplePdfModel};
pub use value_pdf::{ValuePdf, ValuePdfModel};

use serde::{Deserialize, Serialize};

/// A probabilistic relation in any of the three uncertainty models.
///
/// All synopsis algorithms take a `ProbabilisticRelation`; model-specific fast
/// paths (e.g. the tuple-pdf SSE prefix arrays) downcast through the enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProbabilisticRelation {
    /// Basic model (Definition 1).
    Basic(BasicModel),
    /// Tuple pdf model (Definition 2).
    TuplePdf(TuplePdfModel),
    /// Value pdf model (Definition 3).
    ValuePdf(ValuePdfModel),
}

impl ProbabilisticRelation {
    /// Domain size `n`.
    pub fn n(&self) -> usize {
        match self {
            ProbabilisticRelation::Basic(m) => m.n(),
            ProbabilisticRelation::TuplePdf(m) => m.n(),
            ProbabilisticRelation::ValuePdf(m) => m.n(),
        }
    }

    /// Number of `(item/value, probability)` pairs in the input (the paper's
    /// `m`).
    pub fn m(&self) -> usize {
        match self {
            ProbabilisticRelation::Basic(m) => m.m(),
            ProbabilisticRelation::TuplePdf(m) => m.m(),
            ProbabilisticRelation::ValuePdf(m) => m.m(),
        }
    }

    /// Expected frequency `E[g_i]` of every item.
    pub fn expected_frequencies(&self) -> Vec<f64> {
        match self {
            ProbabilisticRelation::Basic(m) => m.expected_frequencies(),
            ProbabilisticRelation::TuplePdf(m) => m.expected_frequencies(),
            ProbabilisticRelation::ValuePdf(m) => m.expected_frequencies(),
        }
    }

    /// The exact per-item marginal frequency pdfs (the *induced value pdf* of
    /// Section 2.1).  For a relation already in the value pdf model this is a
    /// clone of the per-item pdfs.
    pub fn induced_value_pdfs(&self) -> ValuePdfModel {
        match self {
            ProbabilisticRelation::Basic(m) => m.induced_value_pdfs(),
            ProbabilisticRelation::TuplePdf(m) => m.induced_value_pdfs(),
            ProbabilisticRelation::ValuePdf(m) => m.clone(),
        }
    }

    /// Returns the relation viewed in the tuple pdf model if it is a basic or
    /// tuple pdf relation (the basic model is a special case); `None` for the
    /// value pdf model, which is not contained in the tuple pdf model.
    pub fn as_tuple_pdf(&self) -> Option<TuplePdfModel> {
        match self {
            ProbabilisticRelation::Basic(m) => Some(TuplePdfModel::from_basic(m)),
            ProbabilisticRelation::TuplePdf(m) => Some(m.clone()),
            ProbabilisticRelation::ValuePdf(_) => None,
        }
    }

    /// Whether the per-item frequencies are mutually independent.  True for
    /// the basic and value pdf models; false in general for the tuple pdf
    /// model (alternatives of a tuple are exclusive).
    pub fn items_independent(&self) -> bool {
        match self {
            ProbabilisticRelation::Basic(_) | ProbabilisticRelation::ValuePdf(_) => true,
            ProbabilisticRelation::TuplePdf(m) => m.tuples().iter().all(|t| t.len() <= 1),
        }
    }

    /// Short human-readable name of the model, used in benchmark reports.
    pub fn model_name(&self) -> &'static str {
        match self {
            ProbabilisticRelation::Basic(_) => "basic",
            ProbabilisticRelation::TuplePdf(_) => "tuple-pdf",
            ProbabilisticRelation::ValuePdf(_) => "value-pdf",
        }
    }
}

impl From<BasicModel> for ProbabilisticRelation {
    fn from(m: BasicModel) -> Self {
        ProbabilisticRelation::Basic(m)
    }
}

impl From<TuplePdfModel> for ProbabilisticRelation {
    fn from(m: TuplePdfModel) -> Self {
        ProbabilisticRelation::TuplePdf(m)
    }
}

impl From<ValuePdfModel> for ProbabilisticRelation {
    fn from(m: ValuePdfModel) -> Self {
        ProbabilisticRelation::ValuePdf(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic_example() -> BasicModel {
        BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)]).unwrap()
    }

    fn value_example() -> ValuePdfModel {
        ValuePdfModel::from_sparse(
            3,
            [
                (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()),
                (2, ValuePdf::new([(1.0, 0.5)]).unwrap()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn wrapper_delegates_sizes_and_expectations() {
        let rel: ProbabilisticRelation = basic_example().into();
        assert_eq!(rel.n(), 3);
        assert_eq!(rel.m(), 4);
        assert_eq!(rel.model_name(), "basic");
        assert!((rel.expected_frequencies()[1] - 7.0 / 12.0).abs() < 1e-12);

        let rel: ProbabilisticRelation = value_example().into();
        assert_eq!(rel.n(), 3);
        assert_eq!(rel.m(), 4);
        assert_eq!(rel.model_name(), "value-pdf");
        assert!((rel.expected_frequencies()[1] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn induced_pdfs_agree_with_model_specific_paths() {
        let basic = basic_example();
        let rel: ProbabilisticRelation = basic.clone().into();
        let a = basic.induced_value_pdfs();
        let b = rel.induced_value_pdfs();
        for i in 0..3 {
            assert_eq!(a.item(i), b.item(i));
        }
    }

    #[test]
    fn independence_flag() {
        let rel: ProbabilisticRelation = basic_example().into();
        assert!(rel.items_independent());
        let rel: ProbabilisticRelation = value_example().into();
        assert!(rel.items_independent());
        let tuple = TuplePdfModel::from_alternatives(
            3,
            [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
        )
        .unwrap();
        let rel: ProbabilisticRelation = tuple.into();
        assert!(!rel.items_independent());
    }

    #[test]
    fn as_tuple_pdf_conversion() {
        let rel: ProbabilisticRelation = basic_example().into();
        let t = rel.as_tuple_pdf().unwrap();
        assert_eq!(t.tuple_count(), 4);
        let rel: ProbabilisticRelation = value_example().into();
        assert!(rel.as_tuple_pdf().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let rel: ProbabilisticRelation = value_example().into();
        let json = serde_json::to_string(&rel).unwrap();
        let back: ProbabilisticRelation = serde_json::from_str(&json).unwrap();
        assert_eq!(rel, back);
    }
}
