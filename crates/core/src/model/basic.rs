//! The *basic* uncertainty model (Definition 1 of the paper).
//!
//! The input is a sequence of `m` tuples `<t_j, p_j>`: item `t_j` (drawn from
//! the ordered domain `[0, n)`) appears in a possible world independently with
//! probability `p_j`.  Several tuples may refer to the same item, in which
//! case the item's frequency is the number of its tuples that materialise.

use serde::{Deserialize, Serialize};

use crate::error::{PdsError, Result, PROB_TOLERANCE};
use crate::model::value_pdf::{ValuePdf, ValuePdfModel};

/// A single uncertain tuple of the basic model: `item` exists with
/// probability `prob`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BasicTuple {
    /// The item of the ordered domain this tuple refers to.
    pub item: usize,
    /// The probability that the tuple is present in a possible world.
    pub prob: f64,
}

/// A probabilistic relation in the basic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicModel {
    n: usize,
    tuples: Vec<BasicTuple>,
}

impl BasicModel {
    /// Builds a basic-model relation over the domain `[0, n)`.
    ///
    /// Returns an error if any tuple references an item outside the domain or
    /// carries an invalid probability.
    pub fn new(n: usize, tuples: Vec<BasicTuple>) -> Result<Self> {
        for (idx, t) in tuples.iter().enumerate() {
            if t.item >= n {
                return Err(PdsError::ItemOutOfDomain {
                    item: t.item,
                    domain: n,
                });
            }
            if !(0.0..=1.0 + PROB_TOLERANCE).contains(&t.prob) || !t.prob.is_finite() {
                return Err(PdsError::InvalidProbability {
                    context: format!("basic tuple {idx}"),
                    value: t.prob,
                });
            }
        }
        Ok(BasicModel { n, tuples })
    }

    /// Convenience constructor from `(item, probability)` pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, f64)>) -> Result<Self> {
        Self::new(
            n,
            pairs
                .into_iter()
                .map(|(item, prob)| BasicTuple { item, prob })
                .collect(),
        )
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of uncertain tuples `m`.
    pub fn m(&self) -> usize {
        self.tuples.len()
    }

    /// The uncertain tuples.
    pub fn tuples(&self) -> &[BasicTuple] {
        &self.tuples
    }

    /// Expected frequency `E[g_i]` for every item: the sum of the presence
    /// probabilities of the tuples referring to it.
    pub fn expected_frequencies(&self) -> Vec<f64> {
        let mut freqs = vec![0.0; self.n];
        for t in &self.tuples {
            freqs[t.item] += t.prob;
        }
        freqs
    }

    /// The exact per-item frequency distribution (a Poisson-binomial pdf per
    /// item).  Tuples are independent, so the induced pdfs are independent as
    /// well and the result is an equivalent relation in the value pdf model.
    pub fn induced_value_pdfs(&self) -> ValuePdfModel {
        let mut pdfs = vec![ValuePdf::zero(); self.n];
        for t in &self.tuples {
            pdfs[t.item] = pdfs[t.item].convolve_bernoulli(t.prob);
        }
        ValuePdfModel::new(pdfs)
    }

    /// Groups tuple probabilities by item (`item -> [p_j]`), useful for exact
    /// per-item moment computations.
    pub fn probabilities_by_item(&self) -> Vec<Vec<f64>> {
        let mut by_item = vec![Vec::new(); self.n];
        for t in &self.tuples {
            by_item[t.item].push(t.prob);
        }
        by_item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The basic-model input of Example 1 in the paper:
    /// `<1, 1/2>, <2, 1/3>, <2, 1/4>, <3, 1/2>` over domain {1, 2, 3},
    /// re-indexed here to {0, 1, 2}.
    pub fn paper_example() -> BasicModel {
        BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)]).unwrap()
    }

    #[test]
    fn expected_frequencies_match_paper_example() {
        let model = paper_example();
        let freqs = model.expected_frequencies();
        assert!((freqs[0] - 0.5).abs() < 1e-12);
        // E[g2] = 1/3 + 1/4 = 7/12 in the basic model example.
        assert!((freqs[1] - 7.0 / 12.0).abs() < 1e-12);
        assert!((freqs[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn induced_pdf_is_poisson_binomial() {
        let model = paper_example();
        let pdfs = model.induced_value_pdfs();
        let item1 = pdfs.item(1);
        // Pr[g=0] = (2/3)(3/4) = 1/2, Pr[g=1] = 1/3*3/4 + 2/3*1/4 = 5/12,
        // Pr[g=2] = 1/12.
        assert!((item1.probability_of(0.0) - 0.5).abs() < 1e-12);
        assert!((item1.probability_of(1.0) - 5.0 / 12.0).abs() < 1e-12);
        assert!((item1.probability_of(2.0) - 1.0 / 12.0).abs() < 1e-12);
        assert!((item1.mean() - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_domain_items_and_bad_probabilities() {
        assert!(BasicModel::from_pairs(2, [(2, 0.5)]).is_err());
        assert!(BasicModel::from_pairs(2, [(0, 1.5)]).is_err());
        assert!(BasicModel::from_pairs(2, [(0, -0.1)]).is_err());
        assert!(BasicModel::from_pairs(2, [(0, f64::NAN)]).is_err());
    }

    #[test]
    fn probabilities_by_item_groups_correctly() {
        let model = paper_example();
        let by_item = model.probabilities_by_item();
        assert_eq!(by_item[0], vec![0.5]);
        assert_eq!(by_item[1].len(), 2);
        assert_eq!(by_item[2], vec![0.5]);
    }

    #[test]
    fn counts_are_consistent() {
        let model = paper_example();
        assert_eq!(model.n(), 3);
        assert_eq!(model.m(), 4);
        assert_eq!(model.tuples().len(), 4);
    }
}
