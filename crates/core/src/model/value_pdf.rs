//! The *value pdf* model (Definition 3 of the paper) and the per-item
//! frequency distribution type shared by all models.
//!
//! In the value pdf model every item `i` of the ordered domain `[0, n)` comes
//! with a small discrete probability density function over its frequency
//! `g_i`: a list of `(frequency, probability)` pairs whose probabilities sum
//! to at most one.  Any missing probability mass is implicitly assigned to
//! frequency zero, which makes the model a strict generalisation of the basic
//! model.  Items are mutually independent.

use serde::{Deserialize, Serialize};

use crate::error::{PdsError, Result, PROB_TOLERANCE};

/// A discrete probability density function over the frequency of a single
/// item.
///
/// Entries are kept sorted by frequency value and deduplicated; the implicit
/// probability of frequency zero is *not* stored unless it was given
/// explicitly (use [`ValuePdf::zero_probability`] or
/// [`ValuePdf::with_explicit_zero`] to materialise it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ValuePdf {
    entries: Vec<(f64, f64)>,
}

impl ValuePdf {
    /// Builds a pdf from `(frequency, probability)` pairs.
    ///
    /// Pairs with the same frequency are merged.  Returns an error if any
    /// probability is outside `[0, 1]`, any frequency is negative or not
    /// finite, or the total mass exceeds one (beyond tolerance).
    pub fn new(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self> {
        let mut entries: Vec<(f64, f64)> = Vec::new();
        for (value, prob) in pairs {
            if !value.is_finite() || value < 0.0 {
                return Err(PdsError::InvalidFrequency {
                    context: "value pdf entry".into(),
                    value,
                });
            }
            if !(0.0..=1.0 + PROB_TOLERANCE).contains(&prob) || !prob.is_finite() {
                return Err(PdsError::InvalidProbability {
                    context: format!("value pdf entry for frequency {value}"),
                    value: prob,
                });
            }
            if prob > 0.0 {
                entries.push((value, prob.min(1.0)));
            }
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite frequencies"));
        // Merge duplicate frequency values.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(entries.len());
        for (value, prob) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == value => last.1 += prob,
                _ => merged.push((value, prob)),
            }
        }
        let total: f64 = merged.iter().map(|&(_, p)| p).sum();
        if total > 1.0 + PROB_TOLERANCE {
            return Err(PdsError::InvalidProbability {
                context: "value pdf total mass".into(),
                value: total,
            });
        }
        Ok(ValuePdf { entries: merged })
    }

    /// A pdf that is deterministically equal to `value` (probability one).
    pub fn deterministic(value: f64) -> Self {
        if value == 0.0 {
            return ValuePdf { entries: vec![] };
        }
        ValuePdf {
            entries: vec![(value, 1.0)],
        }
    }

    /// A pdf describing a certainly-absent item (frequency zero with
    /// probability one).
    pub fn zero() -> Self {
        ValuePdf { entries: vec![] }
    }

    /// The explicit `(frequency, probability)` entries, sorted by frequency.
    /// The implicit zero-frequency remainder is not included.
    pub fn entries(&self) -> &[(f64, f64)] {
        &self.entries
    }

    /// Total probability mass of the explicit entries.
    pub fn explicit_mass(&self) -> f64 {
        self.entries.iter().map(|&(_, p)| p).sum()
    }

    /// Probability that the frequency is zero, including the implicit
    /// remainder mass.
    pub fn zero_probability(&self) -> f64 {
        let explicit_zero: f64 = self
            .entries
            .iter()
            .filter(|&&(v, _)| v == 0.0)
            .map(|&(_, p)| p)
            .sum();
        let remainder = (1.0 - self.explicit_mass()).max(0.0);
        explicit_zero + remainder
    }

    /// Returns a copy whose entries explicitly include frequency zero with the
    /// full remainder mass, so that the entries sum to exactly one.
    pub fn with_explicit_zero(&self) -> Self {
        let zero = self.zero_probability();
        let mut entries: Vec<(f64, f64)> = Vec::with_capacity(self.entries.len() + 1);
        if zero > 0.0 {
            entries.push((0.0, zero));
        }
        for &(v, p) in &self.entries {
            if v != 0.0 {
                entries.push((v, p));
            }
        }
        ValuePdf { entries }
    }

    /// `Pr[g = value]`, including the implicit zero mass when `value == 0`.
    pub fn probability_of(&self, value: f64) -> f64 {
        if value == 0.0 {
            return self.zero_probability();
        }
        self.entries
            .iter()
            .find(|&&(v, _)| v == value)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// `Pr[g <= value]`.
    pub fn cdf(&self, value: f64) -> f64 {
        let mut total = if value >= 0.0 {
            (1.0 - self.explicit_mass()).max(0.0)
        } else {
            0.0
        };
        for &(v, p) in &self.entries {
            if v <= value {
                total += p;
            } else {
                break;
            }
        }
        total.min(1.0)
    }

    /// `Pr[g > value]`.
    pub fn tail(&self, value: f64) -> f64 {
        (1.0 - self.cdf(value)).max(0.0)
    }

    /// Expected frequency `E[g]`.
    pub fn mean(&self) -> f64 {
        self.entries.iter().map(|&(v, p)| v * p).sum()
    }

    /// Second moment `E[g^2]`.
    pub fn second_moment(&self) -> f64 {
        self.entries.iter().map(|&(v, p)| v * v * p).sum()
    }

    /// Variance `Var[g] = E[g^2] - E[g]^2`.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        (self.second_moment() - mean * mean).max(0.0)
    }

    /// Expected value of an arbitrary point function of the frequency,
    /// `E[f(g)]`, evaluated over the full support including the implicit zero.
    pub fn expect<F: Fn(f64) -> f64>(&self, f: F) -> f64 {
        let mut total = self.zero_probability() * f(0.0);
        for &(v, p) in &self.entries {
            if v != 0.0 {
                total += p * f(v);
            }
        }
        total
    }

    /// Draws a frequency according to this pdf using the supplied uniform
    /// random number in `[0, 1)`.
    pub fn sample_with(&self, mut u: f64) -> f64 {
        for &(v, p) in &self.entries {
            if u < p {
                return v;
            }
            u -= p;
        }
        0.0
    }

    /// The set of frequency values this item can take with non-zero
    /// probability (always includes zero when any mass is implicit).
    pub fn support(&self) -> Vec<f64> {
        self.with_explicit_zero()
            .entries
            .iter()
            .map(|&(v, _)| v)
            .collect()
    }

    /// Convolution with another independent pdf: the distribution of the sum
    /// of the two frequencies.  Used to build induced value pdfs from the
    /// basic and tuple pdf models.
    pub fn convolve(&self, other: &ValuePdf) -> ValuePdf {
        let a = self.with_explicit_zero();
        let b = other.with_explicit_zero();
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(a.entries.len() * b.entries.len());
        for &(va, pa) in &a.entries {
            for &(vb, pb) in &b.entries {
                out.push((va + vb, pa * pb));
            }
        }
        out.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite frequencies"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(out.len());
        for (v, p) in out {
            match merged.last_mut() {
                Some(last) if (last.0 - v).abs() < 1e-12 => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        ValuePdf { entries: merged }
    }

    /// Convolution with an independent Bernoulli contribution: with
    /// probability `prob` the frequency increases by one.  This is the basic
    /// building block of the Poisson-binomial induced pdf of the basic and
    /// tuple pdf models and is much faster than a general [`convolve`].
    ///
    /// [`convolve`]: ValuePdf::convolve
    pub fn convolve_bernoulli(&self, prob: f64) -> ValuePdf {
        if prob <= 0.0 {
            return self.clone();
        }
        let full = self.with_explicit_zero();
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(full.entries.len() + 1);
        for &(v, p) in &full.entries {
            // stays
            push_merge(&mut out, v, p * (1.0 - prob));
            // increments
            push_merge(&mut out, v + 1.0, p * prob);
        }
        out.retain(|&(_, p)| p > 0.0);
        out.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite frequencies"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(out.len());
        for (v, p) in out {
            match merged.last_mut() {
                Some(last) if (last.0 - v).abs() < 1e-12 => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        ValuePdf { entries: merged }
    }
}

fn push_merge(out: &mut Vec<(f64, f64)>, value: f64, prob: f64) {
    if prob <= 0.0 {
        return;
    }
    if let Some(entry) = out.iter_mut().find(|e| (e.0 - value).abs() < 1e-12) {
        entry.1 += prob;
    } else {
        out.push((value, prob));
    }
}

/// A probabilistic relation in the value pdf model: one independent frequency
/// pdf per item of the ordered domain `[0, n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValuePdfModel {
    items: Vec<ValuePdf>,
}

impl ValuePdfModel {
    /// Builds a value pdf relation from one pdf per item.
    pub fn new(items: Vec<ValuePdf>) -> Self {
        ValuePdfModel { items }
    }

    /// Builds the relation from sparse input: the domain size and a list of
    /// `(item, pdf)` pairs.  Unlisted items are certainly absent.
    pub fn from_sparse(
        n: usize,
        pairs: impl IntoIterator<Item = (usize, ValuePdf)>,
    ) -> Result<Self> {
        let mut items = vec![ValuePdf::zero(); n];
        for (item, pdf) in pairs {
            if item >= n {
                return Err(PdsError::ItemOutOfDomain { item, domain: n });
            }
            items[item] = pdf;
        }
        Ok(ValuePdfModel { items })
    }

    /// Builds a deterministic relation (probability one for each frequency),
    /// used to run the very same synopsis code on certain data.
    pub fn deterministic(frequencies: &[f64]) -> Self {
        ValuePdfModel {
            items: frequencies
                .iter()
                .map(|&f| ValuePdf::deterministic(f))
                .collect(),
        }
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.items.len()
    }

    /// Number of `(frequency, probability)` pairs in the input (the paper's
    /// parameter `m`).
    pub fn m(&self) -> usize {
        self.items.iter().map(|p| p.entries().len()).sum()
    }

    /// The per-item pdfs.
    pub fn items(&self) -> &[ValuePdf] {
        &self.items
    }

    /// The pdf of item `i`.
    pub fn item(&self, i: usize) -> &ValuePdf {
        &self.items[i]
    }

    /// Expected frequency of every item.
    pub fn expected_frequencies(&self) -> Vec<f64> {
        self.items.iter().map(|p| p.mean()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_pdf() -> ValuePdf {
        // Item 2 of Example 1 in the paper: Pr[g=1]=1/3, Pr[g=2]=1/4, rest 0.
        ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()
    }

    #[test]
    fn zero_probability_accounts_for_remainder() {
        let pdf = example_pdf();
        assert!((pdf.zero_probability() - 5.0 / 12.0).abs() < 1e-12);
        assert!((pdf.explicit_mass() - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_paper_example() {
        // E[g2] = 5/6 in the value pdf example of the paper.
        let pdf = example_pdf();
        assert!((pdf.mean() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn second_moment_and_variance() {
        let pdf = example_pdf();
        let ex2 = 1.0 / 3.0 + 4.0 * 0.25;
        assert!((pdf.second_moment() - ex2).abs() < 1e-12);
        assert!((pdf.variance() - (ex2 - (5.0f64 / 6.0).powi(2))).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_tail_are_complementary() {
        let pdf = example_pdf();
        for v in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            assert!((pdf.cdf(v) + pdf.tail(v) - 1.0).abs() < 1e-12);
        }
        assert!((pdf.cdf(0.0) - 5.0 / 12.0).abs() < 1e-12);
        assert!((pdf.cdf(1.0) - 0.75).abs() < 1e-12);
        assert!((pdf.cdf(2.0) - 1.0).abs() < 1e-12);
        assert_eq!(pdf.cdf(-1.0), 0.0);
    }

    #[test]
    fn duplicate_values_are_merged() {
        let pdf = ValuePdf::new([(1.0, 0.25), (1.0, 0.25), (2.0, 0.1)]).unwrap();
        assert_eq!(pdf.entries().len(), 2);
        assert!((pdf.probability_of(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(ValuePdf::new([(1.0, 1.2)]).is_err());
        assert!(ValuePdf::new([(-1.0, 0.2)]).is_err());
        assert!(ValuePdf::new([(f64::NAN, 0.2)]).is_err());
        assert!(ValuePdf::new([(1.0, 0.7), (2.0, 0.7)]).is_err());
    }

    #[test]
    fn deterministic_pdf_has_unit_mass() {
        let pdf = ValuePdf::deterministic(3.5);
        assert!((pdf.mean() - 3.5).abs() < 1e-12);
        assert_eq!(pdf.zero_probability(), 0.0);
        let zero = ValuePdf::deterministic(0.0);
        assert_eq!(zero.zero_probability(), 1.0);
    }

    #[test]
    fn expect_covers_implicit_zero() {
        let pdf = example_pdf();
        // E[|g - 1|] = Pr[0]*1 + Pr[1]*0 + Pr[2]*1
        let expected = 5.0 / 12.0 + 0.25;
        assert!((pdf.expect(|g| (g - 1.0).abs()) - expected).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_masses() {
        let pdf = example_pdf();
        assert_eq!(pdf.sample_with(0.0), 1.0);
        assert_eq!(pdf.sample_with(0.34), 2.0);
        assert_eq!(pdf.sample_with(0.99), 0.0);
    }

    #[test]
    fn convolve_bernoulli_matches_general_convolution() {
        let pdf = example_pdf();
        let bern = ValuePdf::new([(1.0, 0.3)]).unwrap();
        let a = pdf.convolve(&bern);
        let b = pdf.convolve_bernoulli(0.3);
        assert_eq!(a.support(), b.support());
        for v in a.support() {
            assert!((a.probability_of(v) - b.probability_of(v)).abs() < 1e-12);
        }
        // Mass still sums to one.
        let total: f64 = b
            .with_explicit_zero()
            .entries()
            .iter()
            .map(|&(_, p)| p)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_constructor_validates_domain() {
        assert!(ValuePdfModel::from_sparse(3, [(5, ValuePdf::deterministic(1.0))]).is_err());
        let m = ValuePdfModel::from_sparse(3, [(1, example_pdf())]).unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(m.item(0).zero_probability(), 1.0);
        assert!((m.expected_frequencies()[1] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_model_round_trips_frequencies() {
        let freqs = [2.0, 0.0, 3.0, 1.0];
        let m = ValuePdfModel::deterministic(&freqs);
        assert_eq!(m.expected_frequencies(), freqs.to_vec());
        assert_eq!(m.m(), 3); // zero entries are implicit
    }
}
