//! The *tuple pdf* model (Definition 2 of the paper).
//!
//! Each input tuple carries a small pdf over mutually-exclusive alternative
//! items: `<(t_{j1}, p_{j1}), ..., (t_{jl}, p_{jl})>` with the probabilities
//! summing to at most one (any remainder is the probability that the tuple
//! contributes no item at all).  Different tuples are independent, but the
//! alternatives *within* a tuple are exclusive, which introduces negative
//! correlations between item frequencies.  This is the model used by Trio and
//! by the MayBMS TPC-H generator in the paper's experiments.

use serde::{Deserialize, Serialize};

use crate::error::{PdsError, Result, PROB_TOLERANCE};
use crate::model::basic::{BasicModel, BasicTuple};
use crate::model::value_pdf::{ValuePdf, ValuePdfModel};

/// One uncertain tuple: a set of mutually-exclusive `(item, probability)`
/// alternatives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TupleAlternatives {
    alternatives: Vec<(usize, f64)>,
}

impl TupleAlternatives {
    /// Builds a tuple from its alternatives.  Alternatives for the same item
    /// are merged.  Returns an error for invalid probabilities or a total
    /// mass above one.
    pub fn new(alternatives: impl IntoIterator<Item = (usize, f64)>) -> Result<Self> {
        let mut alts: Vec<(usize, f64)> = Vec::new();
        for (item, prob) in alternatives {
            if !(0.0..=1.0 + PROB_TOLERANCE).contains(&prob) || !prob.is_finite() {
                return Err(PdsError::InvalidProbability {
                    context: format!("tuple alternative for item {item}"),
                    value: prob,
                });
            }
            if prob > 0.0 {
                if let Some(existing) = alts.iter_mut().find(|(i, _)| *i == item) {
                    existing.1 += prob;
                } else {
                    alts.push((item, prob.min(1.0)));
                }
            }
        }
        let total: f64 = alts.iter().map(|&(_, p)| p).sum();
        if total > 1.0 + PROB_TOLERANCE {
            return Err(PdsError::InvalidProbability {
                context: "tuple alternatives total mass".into(),
                value: total,
            });
        }
        alts.sort_by_key(|&(item, _)| item);
        Ok(TupleAlternatives { alternatives: alts })
    }

    /// The `(item, probability)` alternatives, sorted by item.
    pub fn alternatives(&self) -> &[(usize, f64)] {
        &self.alternatives
    }

    /// Probability that this tuple realises item `item`.
    pub fn probability_of(&self, item: usize) -> f64 {
        self.alternatives
            .iter()
            .find(|&&(i, _)| i == item)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Probability that this tuple realises an item in the inclusive range
    /// `[start, end]`.
    pub fn probability_in_range(&self, start: usize, end: usize) -> f64 {
        self.alternatives
            .iter()
            .filter(|&&(i, _)| i >= start && i <= end)
            .map(|&(_, p)| p)
            .sum()
    }

    /// Probability that this tuple realises no item at all.
    pub fn null_probability(&self) -> f64 {
        (1.0 - self.alternatives.iter().map(|&(_, p)| p).sum::<f64>()).max(0.0)
    }

    /// Number of explicit alternatives.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// Whether the tuple has no explicit alternatives.
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }
}

/// A probabilistic relation in the tuple pdf model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuplePdfModel {
    n: usize,
    tuples: Vec<TupleAlternatives>,
}

impl TuplePdfModel {
    /// Builds a tuple-pdf relation over the domain `[0, n)`.
    pub fn new(n: usize, tuples: Vec<TupleAlternatives>) -> Result<Self> {
        for (idx, t) in tuples.iter().enumerate() {
            for &(item, _) in t.alternatives() {
                if item >= n {
                    return Err(PdsError::ItemOutOfDomain { item, domain: n });
                }
            }
            let _ = idx;
        }
        Ok(TuplePdfModel { n, tuples })
    }

    /// Convenience constructor: each inner vector is one tuple's alternatives.
    pub fn from_alternatives(
        n: usize,
        tuples: impl IntoIterator<Item = Vec<(usize, f64)>>,
    ) -> Result<Self> {
        let tuples = tuples
            .into_iter()
            .map(TupleAlternatives::new)
            .collect::<Result<Vec<_>>>()?;
        Self::new(n, tuples)
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of `(item, probability)` pairs in the input (the paper's
    /// parameter `m`).
    pub fn m(&self) -> usize {
        self.tuples.iter().map(|t| t.len()).sum()
    }

    /// Number of uncertain tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// The uncertain tuples.
    pub fn tuples(&self) -> &[TupleAlternatives] {
        &self.tuples
    }

    /// Expected frequency `E[g_i]` for every item.
    pub fn expected_frequencies(&self) -> Vec<f64> {
        let mut freqs = vec![0.0; self.n];
        for t in &self.tuples {
            for &(item, prob) in t.alternatives() {
                freqs[item] += prob;
            }
        }
        freqs
    }

    /// The *induced value pdf* of every item (Section 2.1 of the paper): the
    /// exact marginal distribution of each item's frequency.
    ///
    /// Note that, unlike in the genuine value pdf model, these marginals are
    /// **not** independent (alternatives of the same tuple are exclusive);
    /// the induced pdfs are nevertheless sufficient for every per-item-linear
    /// error objective (SSRE, SAE, SARE, MAE, MARE) and for per-item moments.
    pub fn induced_value_pdfs(&self) -> ValuePdfModel {
        let mut pdfs = vec![ValuePdf::zero(); self.n];
        for t in &self.tuples {
            for &(item, prob) in t.alternatives() {
                pdfs[item] = pdfs[item].convolve_bernoulli(prob);
            }
        }
        ValuePdfModel::new(pdfs)
    }

    /// Groups, for every item, the probabilities with which each input tuple
    /// realises that item (`item -> [(tuple index, probability)]`).
    pub fn tuple_probabilities_by_item(&self) -> Vec<Vec<(usize, f64)>> {
        let mut by_item = vec![Vec::new(); self.n];
        for (j, t) in self.tuples.iter().enumerate() {
            for &(item, prob) in t.alternatives() {
                by_item[item].push((j, prob));
            }
        }
        by_item
    }

    /// Interprets a basic-model relation as a tuple-pdf relation with a single
    /// alternative per tuple (the basic model is a special case of this model).
    pub fn from_basic(basic: &BasicModel) -> Self {
        let tuples = basic
            .tuples()
            .iter()
            .map(|&BasicTuple { item, prob }| TupleAlternatives {
                alternatives: vec![(item, prob)],
            })
            .collect();
        TuplePdfModel {
            n: basic.n(),
            tuples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tuple pdf input of Example 1 in the paper:
    /// `<(1, 1/2), (2, 1/3)>, <(2, 1/4), (3, 1/2)>`, re-indexed to `{0,1,2}`.
    pub fn paper_example() -> TuplePdfModel {
        TuplePdfModel::from_alternatives(
            3,
            [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
        )
        .unwrap()
    }

    #[test]
    fn expected_frequencies_match_paper_example() {
        let model = paper_example();
        let freqs = model.expected_frequencies();
        assert!((freqs[0] - 0.5).abs() < 1e-12);
        assert!((freqs[1] - 7.0 / 12.0).abs() < 1e-12);
        assert!((freqs[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn induced_pdfs_match_hand_computation() {
        let model = paper_example();
        let pdfs = model.induced_value_pdfs();
        let item1 = pdfs.item(1);
        // g_1 = Bernoulli(1/3) + Bernoulli(1/4) marginally.
        assert!((item1.probability_of(0.0) - (2.0 / 3.0) * 0.75).abs() < 1e-12);
        assert!((item1.probability_of(2.0) - (1.0 / 3.0) * 0.25).abs() < 1e-12);
        assert!((item1.mean() - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn range_and_null_probabilities() {
        let model = paper_example();
        let t0 = &model.tuples()[0];
        assert!((t0.probability_in_range(0, 2) - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((t0.probability_in_range(1, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((t0.null_probability() - (1.0 - 0.5 - 1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(t0.probability_of(2), 0.0);
    }

    #[test]
    fn duplicate_alternatives_merge_and_invalid_masses_reject() {
        let t = TupleAlternatives::new([(0, 0.2), (0, 0.3)]).unwrap();
        assert!((t.probability_of(0) - 0.5).abs() < 1e-12);
        assert!(TupleAlternatives::new([(0, 0.7), (1, 0.6)]).is_err());
        assert!(TupleAlternatives::new([(0, -0.1)]).is_err());
        assert!(TuplePdfModel::from_alternatives(2, [vec![(5, 0.5)]]).is_err());
    }

    #[test]
    fn from_basic_preserves_marginals() {
        let basic =
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)]).unwrap();
        let tuple = TuplePdfModel::from_basic(&basic);
        assert_eq!(tuple.tuple_count(), 4);
        assert_eq!(tuple.m(), 4);
        let a = basic.induced_value_pdfs();
        let b = tuple.induced_value_pdfs();
        for i in 0..3 {
            for v in a.item(i).support() {
                assert!((a.item(i).probability_of(v) - b.item(i).probability_of(v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn by_item_index_is_consistent() {
        let model = paper_example();
        let by_item = model.tuple_probabilities_by_item();
        assert_eq!(by_item[0], vec![(0, 0.5)]);
        assert_eq!(by_item[1], vec![(0, 1.0 / 3.0), (1, 0.25)]);
        assert_eq!(by_item[2], vec![(1, 0.5)]);
    }
}
