//! The mutable ingest buffer of one partition.

use pds_core::error::{PdsError, Result};
use pds_core::model::{BasicModel, ProbabilisticRelation, TuplePdfModel, ValuePdf, ValuePdfModel};
use pds_core::stream::StreamRecord;

/// The in-memory write buffer of one item-range partition: arriving records
/// are appended (with their global item ids localised to the partition) and
/// the exact per-item expected frequencies are maintained incrementally, so
/// live un-sealed data answers range queries without scanning the buffer.
#[derive(Debug, Clone)]
pub struct Memtable {
    /// First global item of the partition.
    start: usize,
    /// Buffered records, item ids localised to `[0, width)`.
    records: Vec<StreamRecord>,
    /// Exact expected frequency per local item (expectation is linear, so
    /// every record kind contributes a closed-form increment).
    expected: Vec<f64>,
}

impl Memtable {
    /// Creates an empty memtable for the partition covering the global item
    /// range `[start, start + width)`.
    pub fn new(start: usize, width: usize) -> Self {
        Memtable {
            start,
            records: Vec::new(),
            expected: vec![0.0; width],
        }
    }

    /// First global item of the partition.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of items in the partition.
    pub fn width(&self) -> usize {
        self.expected.len()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The exact expected frequency of every item in the partition (local
    /// indexing).
    pub fn expected_frequencies(&self) -> &[f64] {
        &self.expected
    }

    /// The buffered records in arrival order (item ids localised to the
    /// partition) — what a WAL replay must reproduce exactly, which the
    /// durability suites assert against.
    pub fn records(&self) -> &[StreamRecord] {
        &self.records
    }

    /// Appends a record.  The record is validated and every item it touches
    /// must fall inside this partition's range (the store splits
    /// cross-partition x-tuples before routing).
    pub fn insert(&mut self, record: StreamRecord) -> Result<()> {
        let (lo, hi) = record.validate()?;
        let end = self.start + self.width();
        if lo < self.start || hi >= end {
            return Err(PdsError::ItemOutOfDomain {
                item: if lo < self.start { lo } else { hi },
                domain: end,
            });
        }
        // Localise and fold the expectation increment.
        let local = match record {
            StreamRecord::Basic { item, prob } => {
                self.expected[item - self.start] += prob;
                StreamRecord::Basic {
                    item: item - self.start,
                    prob,
                }
            }
            StreamRecord::Alternatives(alts) => {
                let alts: Vec<(usize, f64)> = alts
                    .into_iter()
                    .map(|(i, p)| {
                        self.expected[i - self.start] += p;
                        (i - self.start, p)
                    })
                    .collect();
                StreamRecord::Alternatives(alts)
            }
            StreamRecord::ValueDistribution { item, entries } => {
                self.expected[item - self.start] +=
                    entries.iter().map(|&(v, p)| v * p).sum::<f64>();
                StreamRecord::ValueDistribution {
                    item: item - self.start,
                    entries,
                }
            }
        };
        self.records.push(local);
        Ok(())
    }

    /// Exact expected total frequency over the **global** inclusive item
    /// range `[lo, hi]`, counting only this partition's overlap.
    pub fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        let end = self.start + self.width();
        if hi < self.start || lo >= end {
            return 0.0;
        }
        let from = lo.max(self.start) - self.start;
        let to = hi.min(end - 1) - self.start;
        self.expected[from..=to].iter().sum()
    }

    /// Materialises the buffered records as a probabilistic relation over
    /// the partition's local domain, picking the tightest of the three
    /// uncertainty models that can represent the buffer:
    ///
    /// * only basic records → basic model;
    /// * basic and/or x-tuple records → tuple pdf model;
    /// * any value-pdf record → value pdf model, folding every contribution
    ///   into per-item pdfs by convolution (x-tuple alternatives are folded
    ///   as independent Bernoullis — the same within-tuple boundary
    ///   approximation as cross-partition splitting, documented at the
    ///   crate level).
    pub fn to_relation(&self) -> Result<ProbabilisticRelation> {
        let n = self.width();
        let has_value = self
            .records
            .iter()
            .any(|r| matches!(r, StreamRecord::ValueDistribution { .. }));
        let has_tuple = self
            .records
            .iter()
            .any(|r| matches!(r, StreamRecord::Alternatives(_)));
        if has_value {
            let mut pdfs = vec![ValuePdf::zero(); n];
            for record in &self.records {
                match record {
                    StreamRecord::Basic { item, prob } => {
                        pdfs[*item] = pdfs[*item].convolve_bernoulli(*prob);
                    }
                    StreamRecord::Alternatives(alts) => {
                        for &(item, prob) in alts {
                            pdfs[item] = pdfs[item].convolve_bernoulli(prob);
                        }
                    }
                    StreamRecord::ValueDistribution { item, entries } => {
                        pdfs[*item] = pdfs[*item].convolve(&ValuePdf::new(entries.clone())?);
                    }
                }
            }
            Ok(ValuePdfModel::new(pdfs).into())
        } else if has_tuple {
            let tuples = self.records.iter().map(|record| match record {
                StreamRecord::Basic { item, prob } => vec![(*item, *prob)],
                StreamRecord::Alternatives(alts) => alts.clone(),
                StreamRecord::ValueDistribution { .. } => unreachable!("handled above"),
            });
            Ok(TuplePdfModel::from_alternatives(n, tuples)?.into())
        } else {
            let pairs = self.records.iter().map(|record| match record {
                StreamRecord::Basic { item, prob } => (*item, *prob),
                _ => unreachable!("handled above"),
            });
            Ok(BasicModel::from_pairs(n, pairs)?.into())
        }
    }

    /// Empties the buffer (called after the records were sealed into a
    /// segment), keeping the partition range.
    pub fn clear(&mut self) {
        self.records.clear();
        self.expected.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Prepends an `older` buffer of the same partition (its records come
    /// first, as they arrived first) — the undo path when a frozen memtable
    /// could not be sealed and its records must rejoin the live buffer.
    ///
    /// # Panics
    ///
    /// Panics when the two memtables cover different partition ranges.
    pub fn absorb_front(&mut self, mut older: Memtable) {
        assert_eq!(
            (self.start, self.width()),
            (older.start, older.width()),
            "absorb_front requires matching partition ranges"
        );
        std::mem::swap(&mut self.records, &mut older.records);
        self.records.append(&mut older.records);
        for (mine, theirs) in self.expected.iter_mut().zip(&older.expected) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_frequencies_track_all_record_kinds() {
        let mut m = Memtable::new(10, 4);
        m.insert(StreamRecord::Basic {
            item: 10,
            prob: 0.5,
        })
        .unwrap();
        m.insert(StreamRecord::Alternatives(vec![(11, 0.25), (13, 0.75)]))
            .unwrap();
        m.insert(StreamRecord::ValueDistribution {
            item: 11,
            entries: vec![(2.0, 0.5), (4.0, 0.25)],
        })
        .unwrap();
        assert_eq!(m.len(), 3);
        let e = m.expected_frequencies();
        assert!((e[0] - 0.5).abs() < 1e-12);
        assert!((e[1] - (0.25 + 2.0)).abs() < 1e-12);
        assert!((e[3] - 0.75).abs() < 1e-12);
        // Global range sums clip to the partition.
        assert!((m.range_sum(0, 100) - 3.5).abs() < 1e-12);
        assert!((m.range_sum(11, 11) - 2.25).abs() < 1e-12);
        assert_eq!(m.range_sum(0, 9), 0.0);
        assert_eq!(m.range_sum(14, 20), 0.0);
    }

    #[test]
    fn out_of_range_and_invalid_records_are_rejected() {
        let mut m = Memtable::new(10, 4);
        assert!(m
            .insert(StreamRecord::Basic { item: 9, prob: 0.5 })
            .is_err());
        assert!(m
            .insert(StreamRecord::Basic {
                item: 14,
                prob: 0.5
            })
            .is_err());
        assert!(m
            .insert(StreamRecord::Basic {
                item: 10,
                prob: 1.5
            })
            .is_err());
        assert!(m
            .insert(StreamRecord::Alternatives(vec![(10, 0.2), (14, 0.2)]))
            .is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn relation_model_matches_buffer_contents() {
        // Basic only.
        let mut m = Memtable::new(0, 3);
        m.insert(StreamRecord::Basic { item: 0, prob: 0.5 })
            .unwrap();
        assert_eq!(m.to_relation().unwrap().model_name(), "basic");
        // Adding an x-tuple upgrades to tuple pdf.
        m.insert(StreamRecord::Alternatives(vec![(1, 0.5), (2, 0.5)]))
            .unwrap();
        let rel = m.to_relation().unwrap();
        assert_eq!(rel.model_name(), "tuple-pdf");
        assert!((rel.expected_frequencies()[1] - 0.5).abs() < 1e-12);
        // Adding a value pdf upgrades to value pdf and keeps expectations.
        m.insert(StreamRecord::ValueDistribution {
            item: 2,
            entries: vec![(3.0, 0.5)],
        })
        .unwrap();
        let rel = m.to_relation().unwrap();
        assert_eq!(rel.model_name(), "value-pdf");
        for (i, &e) in m.expected_frequencies().iter().enumerate() {
            assert!((rel.expected_frequencies()[i] - e).abs() < 1e-9, "item {i}");
        }
    }

    #[test]
    fn absorb_front_prepends_records_and_sums_expectations() {
        let mut older = Memtable::new(4, 4);
        older
            .insert(StreamRecord::Basic { item: 4, prob: 0.5 })
            .unwrap();
        let mut newer = Memtable::new(4, 4);
        newer
            .insert(StreamRecord::Basic {
                item: 5,
                prob: 0.25,
            })
            .unwrap();
        newer.absorb_front(older);
        assert_eq!(newer.len(), 2);
        // Older record first (localised item 0), newer second (item 1).
        assert_eq!(newer.records[0], StreamRecord::Basic { item: 0, prob: 0.5 });
        assert_eq!(
            newer.records[1],
            StreamRecord::Basic {
                item: 1,
                prob: 0.25
            }
        );
        assert!((newer.range_sum(4, 7) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_the_buffer_but_keeps_the_range() {
        let mut m = Memtable::new(5, 2);
        m.insert(StreamRecord::Basic { item: 6, prob: 0.9 })
            .unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.start(), 5);
        assert_eq!(m.width(), 2);
        assert_eq!(m.range_sum(0, 100), 0.0);
    }
}
