//! Store-side instrumentation: one [`StoreTelemetry`] per
//! [`SynopsisStore`](crate::SynopsisStore), holding the registered
//! counters/gauges/histograms and the event ring for every store
//! subsystem (ingest, seal, WAL, compaction, recovery, queries).
//!
//! Recording is gated on [`StoreConfig::telemetry`](crate::StoreConfig):
//! when the knob is off, [`StoreTelemetry::maybe_start`] returns `None`
//! and every `record_*` method is a no-op, so the disabled cost is one
//! branch per site.  Recording never takes a lock and never allocates
//! (the primitives are `pds_core::telemetry` atomics), so every site —
//! including those inside shard-guard windows — is legal under the
//! analyzer's lock-discipline rule.  Telemetry reads the clock but never
//! feeds back into results: the `telemetry_invisibility` suite pins that
//! estimates, snapshots and segment bytes are bit-identical with the
//! knob on and off.

use std::sync::Arc;

use pds_core::telemetry::{Counter, EventRing, Gauge, LatencyHistogram, Registry, Stopwatch};

use crate::store::StoreStats;

/// Event-kind tags of the store's [`EventRing`].
pub(crate) mod event {
    /// A sealed segment installed: `a`=partition, `b`=seal seq,
    /// `c`=records.
    pub const SEAL_INSTALLED: u64 = 1;
    /// A compaction round committed: `a`=partition, `b`=output seq,
    /// `c`=input segments.
    pub const COMPACTION_COMMITTED: u64 = 2;
    /// A WAL file rotated at a freeze: `a`=partition, `b`=seal seq.
    pub const WAL_ROTATED: u64 = 3;
    /// Crash recovery completed: `a`=segments reloaded, `b`=records
    /// recovered (blob + WAL replay), `c`=milliseconds taken.
    pub const RECOVERY: u64 = 4;
}

/// The query operations timed into `pds_store_query_seconds{op=...}`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QueryOp {
    /// [`SynopsisStore::estimate`](crate::SynopsisStore::estimate).
    Point = 0,
    /// [`SynopsisStore::range_estimate`](crate::SynopsisStore::range_estimate).
    Range = 1,
    /// [`SynopsisStore::merge_global`](crate::SynopsisStore::merge_global).
    MergeGlobal = 2,
    /// [`SynopsisStore::snapshot_view`](crate::SynopsisStore::snapshot_view).
    Snapshot = 3,
}

const QUERY_OPS: [(QueryOp, &str); 4] = [
    (QueryOp::Point, "op=\"estimate\""),
    (QueryOp::Range, "op=\"range_estimate\""),
    (QueryOp::MergeGlobal, "op=\"merge_global\""),
    (QueryOp::Snapshot, "op=\"snapshot_view\""),
];

/// Events retained for `METRICS EVENTS`: enough to cover the recent
/// seal/compaction history of a busy store without unbounded growth.
const EVENT_CAPACITY: usize = 256;

/// All store-side metric series plus the event ring (see the module
/// docs).  Constructed fresh per store (clones restart at zero — the
/// counters describe a process's activity, not the data).
#[derive(Debug)]
pub(crate) struct StoreTelemetry {
    enabled: bool,
    registry: Registry,
    events: EventRing,
    ingest_records: Vec<Arc<Counter>>,
    ingest_batches: Arc<Counter>,
    ingest_batch_seconds: Arc<LatencyHistogram>,
    freezes: Arc<Counter>,
    wal_rotations: Arc<Counter>,
    wal_commits: Arc<Counter>,
    wal_commit_seconds: Arc<LatencyHistogram>,
    seal_build_seconds: Arc<LatencyHistogram>,
    seal_commit_seconds: Arc<LatencyHistogram>,
    seal_bytes: Arc<Counter>,
    compaction_rounds: Arc<Counter>,
    compaction_input_segments: Arc<Counter>,
    compaction_bytes: Arc<Counter>,
    compaction_seconds: Arc<LatencyHistogram>,
    recovery_seconds: Arc<Gauge>,
    recovered_records: Arc<Counter>,
    query_seconds: Vec<Arc<LatencyHistogram>>,
}

impl StoreTelemetry {
    /// Registers every store series (one ingest counter per partition).
    pub(crate) fn new(partitions: usize, enabled: bool) -> Self {
        let registry = Registry::new();
        // Rendered straight from the registry; nothing records into it
        // after this set, so no field keeps a handle.
        registry
            .gauge("pds_store_telemetry_enabled", "")
            .set(f64::from(u8::from(enabled)));
        let ingest_records = (0..partitions)
            .map(|p| {
                registry.counter(
                    "pds_store_ingest_records_total",
                    &format!("partition=\"{p}\""),
                )
            })
            .collect();
        StoreTelemetry {
            enabled,
            ingest_records,
            ingest_batches: registry.counter("pds_store_ingest_batches_total", ""),
            ingest_batch_seconds: registry.histogram("pds_store_ingest_batch_seconds", ""),
            freezes: registry.counter("pds_store_freezes_total", ""),
            wal_rotations: registry.counter("pds_store_wal_rotations_total", ""),
            wal_commits: registry.counter("pds_store_wal_commits_total", ""),
            wal_commit_seconds: registry.histogram("pds_store_wal_commit_seconds", ""),
            seal_build_seconds: registry.histogram("pds_store_seal_build_seconds", ""),
            seal_commit_seconds: registry.histogram("pds_store_seal_commit_seconds", ""),
            seal_bytes: registry.counter("pds_store_seal_bytes_total", ""),
            compaction_rounds: registry.counter("pds_store_compaction_rounds_total", ""),
            compaction_input_segments: registry
                .counter("pds_store_compaction_input_segments_total", ""),
            compaction_bytes: registry.counter("pds_store_compaction_bytes_total", ""),
            compaction_seconds: registry.histogram("pds_store_compaction_seconds", ""),
            recovery_seconds: registry.gauge("pds_store_recovery_seconds", ""),
            recovered_records: registry.counter("pds_store_recovered_records_total", ""),
            query_seconds: QUERY_OPS
                .iter()
                .map(|(_, labels)| registry.histogram("pds_store_query_seconds", labels))
                .collect(),
            events: EventRing::new(EVENT_CAPACITY),
            registry,
        }
    }

    /// Starts a stopwatch when telemetry is enabled; `None` otherwise.
    /// Pair the result with a `record_*` method (the analyzer's
    /// `telemetry-pairing` rule checks the pairing at every observe site).
    pub(crate) fn maybe_start(&self) -> Option<Stopwatch> {
        if self.enabled {
            Some(Stopwatch::start())
        } else {
            None
        }
    }

    /// One record inserted into partition `p`'s shard (the single choke
    /// point shared by the per-record and batched ingest paths).
    pub(crate) fn record_ingest(&self, p: usize) {
        if !self.enabled {
            return;
        }
        if let Some(counter) = self.ingest_records.get(p) {
            counter.inc();
        }
    }

    /// One per-partition sub-batch inserted under a single shard lock.
    pub(crate) fn record_batch(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.ingest_batches.inc();
            self.ingest_batch_seconds.observe(sw);
        }
    }

    /// One memtable frozen for sealing; `rotated` when the shard's WAL
    /// rotated with it (emits a [`event::WAL_ROTATED`] event).
    pub(crate) fn record_frozen(&self, p: usize, seq: u64, rotated: bool) {
        if !self.enabled {
            return;
        }
        self.freezes.inc();
        if rotated {
            self.wal_rotations.inc();
            self.events.push(event::WAL_ROTATED, p as u64, seq, 0);
        }
    }

    /// One WAL group commit (the flush/fsync at the ingest-call or
    /// sub-batch boundary).
    pub(crate) fn record_wal_commit(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.wal_commits.inc();
            self.wal_commit_seconds.observe(sw);
        }
    }

    /// One segment built from a frozen memtable.
    pub(crate) fn record_seal_build(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.seal_build_seconds.observe(sw);
        }
    }

    /// One durable seal commit (blob publish + manifest record) of
    /// `bytes` blob bytes.
    pub(crate) fn record_seal_commit(&self, sw: Option<Stopwatch>, bytes: u64) {
        if let Some(sw) = sw {
            self.seal_bytes.add(bytes);
            self.seal_commit_seconds.observe(sw);
        }
    }

    /// One segment installed in memory at its sequence position.
    pub(crate) fn record_installed(&self, p: usize, seq: u64, records: u64) {
        if !self.enabled {
            return;
        }
        self.events
            .push(event::SEAL_INSTALLED, p as u64, seq, records);
    }

    /// One compaction round committed (`inputs` segments merged into the
    /// output at `out_seq`, whose blob is `bytes` long when durable).
    pub(crate) fn record_compaction(
        &self,
        sw: Option<Stopwatch>,
        p: usize,
        out_seq: u64,
        inputs: u64,
        bytes: u64,
    ) {
        if let Some(sw) = sw {
            self.compaction_rounds.inc();
            self.compaction_input_segments.add(inputs);
            self.compaction_bytes.add(bytes);
            self.compaction_seconds.observe(sw);
            self.events
                .push(event::COMPACTION_COMMITTED, p as u64, out_seq, inputs);
        }
    }

    /// Crash recovery finished: `segments` reloaded from blobs and
    /// `records` recovered in `seconds` wall time.
    pub(crate) fn record_recovery(&self, seconds: f64, segments: u64, records: u64) {
        if !self.enabled {
            return;
        }
        self.recovery_seconds.set(seconds);
        self.recovered_records.add(records);
        self.events
            .push(event::RECOVERY, segments, records, (seconds * 1e3) as u64);
    }

    /// One timed query operation.
    pub(crate) fn record_query(&self, op: QueryOp, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            if let Some(hist) = self.query_seconds.get(op as usize) {
                hist.observe(sw);
            }
        }
    }

    /// The full store exposition: every registered series plus the
    /// point-in-time [`StoreStats`] counters rendered as series of their
    /// own (`pds_store_ingested_records_total`, `pds_store_live_records`,
    /// `pds_store_seals_total`, `pds_store_segments`,
    /// `pds_store_split_tuples_total`).
    pub(crate) fn render(&self, stats: &StoreStats) -> String {
        use std::fmt::Write as _;
        let mut out = self.registry.render();
        let _ = writeln!(out, "# TYPE pds_store_ingested_records_total counter");
        let _ = writeln!(
            out,
            "pds_store_ingested_records_total {}",
            stats.ingested_records
        );
        let _ = writeln!(out, "# TYPE pds_store_live_records gauge");
        let _ = writeln!(out, "pds_store_live_records {}", stats.live_records);
        let _ = writeln!(out, "# TYPE pds_store_seals_total counter");
        let _ = writeln!(out, "pds_store_seals_total {}", stats.seals);
        let _ = writeln!(out, "# TYPE pds_store_segments gauge");
        let _ = writeln!(out, "pds_store_segments {}", stats.segments);
        let _ = writeln!(out, "# TYPE pds_store_split_tuples_total counter");
        let _ = writeln!(out, "pds_store_split_tuples_total {}", stats.split_tuples);
        let _ = writeln!(out, "# TYPE pds_store_events_total counter");
        let _ = writeln!(out, "pds_store_events_total {}", self.events.pushed());
        out
    }

    /// The retained store events, oldest first, decoded to one line each.
    pub(crate) fn render_events(&self) -> Vec<String> {
        self.events.dump(|kind, a, b, c| match kind {
            event::SEAL_INSTALLED => {
                format!("seal-installed partition={a} seq={b} records={c}")
            }
            event::COMPACTION_COMMITTED => {
                format!("compaction-committed partition={a} out_seq={b} inputs={c}")
            }
            event::WAL_ROTATED => format!("wal-rotated partition={a} seq={b}"),
            event::RECOVERY => {
                format!("recovery segments={a} records={b} took_ms={c}")
            }
            other => format!("unknown-event kind={other} a={a} b={b} c={c}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = StoreTelemetry::new(2, false);
        assert!(tel.maybe_start().is_none());
        tel.record_ingest(0);
        tel.record_frozen(0, 0, true);
        tel.record_recovery(1.0, 1, 2);
        tel.record_batch(None);
        let stats = StoreStats {
            ingested_records: 0,
            live_records: 0,
            seals: 0,
            segments: 0,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_telemetry_enabled 0"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"0\"} 0"));
        assert!(text.contains("pds_store_freezes_total 0"));
        assert!(tel.render_events().is_empty());
    }

    #[test]
    fn enabled_telemetry_counts_and_traces() {
        let tel = StoreTelemetry::new(2, true);
        tel.record_ingest(0);
        tel.record_ingest(0);
        tel.record_ingest(1);
        tel.record_ingest(99); // out of range: ignored, never panics
        let sw = tel.maybe_start();
        tel.record_batch(sw);
        tel.record_frozen(1, 7, true);
        tel.record_installed(1, 7, 1234);
        let sw = tel.maybe_start();
        tel.record_compaction(sw, 1, 9, 3, 77);
        tel.record_recovery(0.25, 2, 500);
        let stats = StoreStats {
            ingested_records: 3,
            live_records: 1,
            seals: 1,
            segments: 2,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_telemetry_enabled 1"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"0\"} 2"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"1\"} 1"));
        assert!(text.contains("pds_store_ingest_batches_total 1"));
        assert!(text.contains("pds_store_ingest_batch_seconds_count 1"));
        assert!(text.contains("pds_store_freezes_total 1"));
        assert!(text.contains("pds_store_wal_rotations_total 1"));
        assert!(text.contains("pds_store_compaction_rounds_total 1"));
        assert!(text.contains("pds_store_compaction_input_segments_total 3"));
        assert!(text.contains("pds_store_recovery_seconds 0.25"));
        assert!(text.contains("pds_store_ingested_records_total 3"));
        assert!(text.contains("pds_store_segments 2"));
        let events = tel.render_events();
        assert_eq!(events.len(), 4);
        assert!(events[0].contains("wal-rotated partition=1 seq=7"));
        assert!(events[1].contains("seal-installed partition=1 seq=7 records=1234"));
        assert!(events[2].contains("compaction-committed partition=1 out_seq=9 inputs=3"));
        assert!(events[3].contains("recovery segments=2 records=500 took_ms=250"));
    }
}
