//! Store-side instrumentation: one [`StoreTelemetry`] per
//! [`SynopsisStore`](crate::SynopsisStore), holding the registered
//! counters/gauges/histograms and the event ring for every store
//! subsystem (ingest, seal, WAL, compaction, recovery, queries).
//!
//! Recording is gated on [`StoreConfig::telemetry`](crate::StoreConfig):
//! when the knob is off, [`StoreTelemetry::maybe_start`] returns `None`
//! and every `record_*` method is a no-op, so the disabled cost is one
//! branch per site.  Recording never takes a lock and never allocates
//! (the primitives are `pds_core::telemetry` atomics), so every site —
//! including those inside shard-guard windows — is legal under the
//! analyzer's lock-discipline rule.  Telemetry reads the clock but never
//! feeds back into results: the `telemetry_invisibility` suite pins that
//! estimates, snapshots and segment bytes are bit-identical with the
//! knob on and off.

use std::sync::Arc;
use std::time::Duration;

use pds_core::telemetry::{Counter, EventRing, Gauge, LatencyHistogram, Registry, Stopwatch};
use pds_core::vfs;

use crate::store::StoreStats;

/// Event-kind tags of the store's [`EventRing`].
pub(crate) mod event {
    /// A sealed segment installed: `a`=partition, `b`=seal seq,
    /// `c`=records.
    pub const SEAL_INSTALLED: u64 = 1;
    /// A compaction round committed: `a`=partition, `b`=output seq,
    /// `c`=input segments.
    pub const COMPACTION_COMMITTED: u64 = 2;
    /// A WAL file rotated at a freeze: `a`=partition, `b`=seal seq.
    pub const WAL_ROTATED: u64 = 3;
    /// Crash recovery completed: `a`=segments reloaded, `b`=records
    /// recovered (blob + WAL replay), `c`=milliseconds taken.
    pub const RECOVERY: u64 = 4;
    /// A durable-path I/O operation failed: `a`=fault-site index into
    /// [`FAULT_SITES`](super::FAULT_SITES), `b`=1 when injected by the
    /// test fault injector (0 for a real disk error), `c`=retry attempt
    /// number on which the failure was observed (0 = first try).
    pub const IO_ERROR: u64 = 5;
    /// A best-effort cleanup (stale tmp / retired WAL / orphan blob
    /// removal) failed: `a`=fault-site index.
    pub const CLEANUP_ERROR: u64 = 6;
    /// The store entered its sticky degraded read-only mode:
    /// `a`=fault-site index of the failure that tripped it.
    pub const DEGRADED: u64 = 7;
}

/// Every labeled durable-path fault site, in the order used by the
/// telemetry event encoding and iterated by the fault-matrix suite.
/// One label per distinct durable operation the store performs; the
/// `cleanup` label covers every best-effort removal (stale recovery
/// tmps, absorbed frozen logs, orphan/superseded blobs).
pub const FAULT_SITES: [&str; 12] = [
    "wal-append",
    "wal-commit",
    "wal-rotate",
    "wal-retire",
    "recovery-read",
    "recovery-commit",
    "manifest-install",
    "manifest-replace",
    "blob-write",
    "blob-publish",
    "block-read",
    "cleanup",
];

/// Encodes a site label as its [`FAULT_SITES`] index for the event ring
/// (the array length doubles as "unknown").
fn site_index(site: &str) -> u64 {
    FAULT_SITES
        .iter()
        .position(|s| *s == site)
        .unwrap_or(FAULT_SITES.len()) as u64
}

/// Decodes an event-ring site index back to its label.
fn site_name(index: u64) -> &'static str {
    FAULT_SITES
        .get(index as usize)
        .copied()
        .unwrap_or("unknown")
}

/// The query operations timed into `pds_store_query_seconds{op=...}`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QueryOp {
    /// [`SynopsisStore::estimate`](crate::SynopsisStore::estimate).
    Point = 0,
    /// [`SynopsisStore::range_estimate`](crate::SynopsisStore::range_estimate).
    Range = 1,
    /// [`SynopsisStore::merge_global`](crate::SynopsisStore::merge_global).
    MergeGlobal = 2,
    /// [`SynopsisStore::snapshot_view`](crate::SynopsisStore::snapshot_view).
    Snapshot = 3,
}

const QUERY_OPS: [(QueryOp, &str); 4] = [
    (QueryOp::Point, "op=\"estimate\""),
    (QueryOp::Range, "op=\"range_estimate\""),
    (QueryOp::MergeGlobal, "op=\"merge_global\""),
    (QueryOp::Snapshot, "op=\"snapshot_view\""),
];

/// Events retained for `METRICS EVENTS`: enough to cover the recent
/// seal/compaction history of a busy store without unbounded growth.
const EVENT_CAPACITY: usize = 256;

/// All store-side metric series plus the event ring (see the module
/// docs).  Constructed fresh per store (clones restart at zero — the
/// counters describe a process's activity, not the data).
#[derive(Debug)]
pub(crate) struct StoreTelemetry {
    enabled: bool,
    registry: Registry,
    events: EventRing,
    ingest_records: Vec<Arc<Counter>>,
    ingest_batches: Arc<Counter>,
    ingest_batch_seconds: Arc<LatencyHistogram>,
    freezes: Arc<Counter>,
    wal_rotations: Arc<Counter>,
    wal_commits: Arc<Counter>,
    wal_commit_seconds: Arc<LatencyHistogram>,
    seal_build_seconds: Arc<LatencyHistogram>,
    seal_commit_seconds: Arc<LatencyHistogram>,
    seal_bytes: Arc<Counter>,
    compaction_rounds: Arc<Counter>,
    compaction_input_segments: Arc<Counter>,
    compaction_bytes: Arc<Counter>,
    compaction_seconds: Arc<LatencyHistogram>,
    recovery_seconds: Arc<Gauge>,
    recovered_records: Arc<Counter>,
    query_seconds: Vec<Arc<LatencyHistogram>>,
    segments_visited: Arc<Counter>,
    segments_pruned: Arc<Counter>,
    block_loads: Arc<Counter>,
    merge_cache_hits: Arc<Counter>,
    merge_cache_misses: Arc<Counter>,
    io_retries: Arc<Counter>,
    io_errors_injected: Arc<Counter>,
    io_errors_real: Arc<Counter>,
    io_cleanup_errors: Arc<Counter>,
    degraded: Arc<Gauge>,
}

impl StoreTelemetry {
    /// Registers every store series (one ingest counter per partition).
    pub(crate) fn new(partitions: usize, enabled: bool) -> Self {
        let registry = Registry::new();
        // Rendered straight from the registry; nothing records into it
        // after this set, so no field keeps a handle.
        registry
            .gauge("pds_store_telemetry_enabled", "")
            .set(f64::from(u8::from(enabled)));
        let ingest_records = (0..partitions)
            .map(|p| {
                registry.counter(
                    "pds_store_ingest_records_total",
                    &format!("partition=\"{p}\""),
                )
            })
            .collect();
        StoreTelemetry {
            enabled,
            ingest_records,
            ingest_batches: registry.counter("pds_store_ingest_batches_total", ""),
            ingest_batch_seconds: registry.histogram("pds_store_ingest_batch_seconds", ""),
            freezes: registry.counter("pds_store_freezes_total", ""),
            wal_rotations: registry.counter("pds_store_wal_rotations_total", ""),
            wal_commits: registry.counter("pds_store_wal_commits_total", ""),
            wal_commit_seconds: registry.histogram("pds_store_wal_commit_seconds", ""),
            seal_build_seconds: registry.histogram("pds_store_seal_build_seconds", ""),
            seal_commit_seconds: registry.histogram("pds_store_seal_commit_seconds", ""),
            seal_bytes: registry.counter("pds_store_seal_bytes_total", ""),
            compaction_rounds: registry.counter("pds_store_compaction_rounds_total", ""),
            compaction_input_segments: registry
                .counter("pds_store_compaction_input_segments_total", ""),
            compaction_bytes: registry.counter("pds_store_compaction_bytes_total", ""),
            compaction_seconds: registry.histogram("pds_store_compaction_seconds", ""),
            recovery_seconds: registry.gauge("pds_store_recovery_seconds", ""),
            recovered_records: registry.counter("pds_store_recovered_records_total", ""),
            query_seconds: QUERY_OPS
                .iter()
                .map(|(_, labels)| registry.histogram("pds_store_query_seconds", labels))
                .collect(),
            segments_visited: registry.counter("pds_store_segments_visited_total", ""),
            segments_pruned: registry.counter("pds_store_segments_pruned_total", ""),
            block_loads: registry.counter("pds_store_block_loads_total", ""),
            merge_cache_hits: registry.counter("pds_store_merge_cache_hits_total", ""),
            merge_cache_misses: registry.counter("pds_store_merge_cache_misses_total", ""),
            io_retries: registry.counter("pds_store_io_retries_total", ""),
            io_errors_injected: registry.counter("pds_store_io_errors_total", "kind=\"injected\""),
            io_errors_real: registry.counter("pds_store_io_errors_total", "kind=\"real\""),
            io_cleanup_errors: registry.counter("pds_store_io_cleanup_errors_total", ""),
            degraded: registry.gauge("pds_store_degraded", ""),
            events: EventRing::new(EVENT_CAPACITY),
            registry,
        }
    }

    /// Starts a stopwatch when telemetry is enabled; `None` otherwise.
    /// Pair the result with a `record_*` method (the analyzer's
    /// `telemetry-pairing` rule checks the pairing at every observe site).
    pub(crate) fn maybe_start(&self) -> Option<Stopwatch> {
        if self.enabled {
            Some(Stopwatch::start())
        } else {
            None
        }
    }

    /// One record inserted into partition `p`'s shard (the single choke
    /// point shared by the per-record and batched ingest paths).
    pub(crate) fn record_ingest(&self, p: usize) {
        if !self.enabled {
            return;
        }
        if let Some(counter) = self.ingest_records.get(p) {
            counter.inc();
        }
    }

    /// One per-partition sub-batch inserted under a single shard lock.
    pub(crate) fn record_batch(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.ingest_batches.inc();
            self.ingest_batch_seconds.observe(sw);
        }
    }

    /// One memtable frozen for sealing; `rotated` when the shard's WAL
    /// rotated with it (emits a [`event::WAL_ROTATED`] event).
    pub(crate) fn record_frozen(&self, p: usize, seq: u64, rotated: bool) {
        if !self.enabled {
            return;
        }
        self.freezes.inc();
        if rotated {
            self.wal_rotations.inc();
            self.events.push(event::WAL_ROTATED, p as u64, seq, 0);
        }
    }

    /// One WAL group commit (the flush/fsync at the ingest-call or
    /// sub-batch boundary).
    pub(crate) fn record_wal_commit(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.wal_commits.inc();
            self.wal_commit_seconds.observe(sw);
        }
    }

    /// One segment built from a frozen memtable.
    pub(crate) fn record_seal_build(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.seal_build_seconds.observe(sw);
        }
    }

    /// One durable seal commit (blob publish + manifest record) of
    /// `bytes` blob bytes.
    pub(crate) fn record_seal_commit(&self, sw: Option<Stopwatch>, bytes: u64) {
        if let Some(sw) = sw {
            self.seal_bytes.add(bytes);
            self.seal_commit_seconds.observe(sw);
        }
    }

    /// One segment installed in memory at its sequence position.
    pub(crate) fn record_installed(&self, p: usize, seq: u64, records: u64) {
        if !self.enabled {
            return;
        }
        self.events
            .push(event::SEAL_INSTALLED, p as u64, seq, records);
    }

    /// One compaction round committed (`inputs` segments merged into the
    /// output at `out_seq`, whose blob is `bytes` long when durable).
    pub(crate) fn record_compaction(
        &self,
        sw: Option<Stopwatch>,
        p: usize,
        out_seq: u64,
        inputs: u64,
        bytes: u64,
    ) {
        if let Some(sw) = sw {
            self.compaction_rounds.inc();
            self.compaction_input_segments.add(inputs);
            self.compaction_bytes.add(bytes);
            self.compaction_seconds.observe(sw);
            self.events
                .push(event::COMPACTION_COMMITTED, p as u64, out_seq, inputs);
        }
    }

    /// Crash recovery finished: `segments` reloaded from blobs and
    /// `records` recovered in `seconds` wall time.
    pub(crate) fn record_recovery(&self, seconds: f64, segments: u64, records: u64) {
        if !self.enabled {
            return;
        }
        self.recovery_seconds.set(seconds);
        self.recovered_records.add(records);
        self.events
            .push(event::RECOVERY, segments, records, (seconds * 1e3) as u64);
    }

    /// One durable-path I/O failure at `site` on retry `attempt`
    /// (0 = first try).  Injected (fault-injector) and real disk errors
    /// count into separate `kind` label series so a matrix run can tell
    /// them apart from genuine environment trouble.
    pub(crate) fn record_io_error(&self, site: &str, e: &std::io::Error, attempt: u32) {
        if !self.enabled {
            return;
        }
        let injected = vfs::fault::is_injected(e);
        if injected {
            self.io_errors_injected.inc();
        } else {
            self.io_errors_real.inc();
        }
        self.events.push(
            event::IO_ERROR,
            site_index(site),
            u64::from(injected),
            u64::from(attempt),
        );
    }

    /// One bounded retry issued after a transient-class failure.
    pub(crate) fn record_io_retry(&self) {
        if !self.enabled {
            return;
        }
        self.io_retries.inc();
    }

    /// One best-effort cleanup (tmp/frozen-log/orphan-blob removal) that
    /// failed with something other than `NotFound`.
    pub(crate) fn record_cleanup_error(&self, site: &str) {
        if !self.enabled {
            return;
        }
        self.io_cleanup_errors.inc();
        self.events
            .push(event::CLEANUP_ERROR, site_index(site), 0, 0);
    }

    /// The store entered (or reopened out of) its sticky degraded
    /// read-only mode.  The gauge records regardless of the telemetry
    /// knob: health is operational state, not workload accounting.
    pub(crate) fn record_degraded(&self, site: &str) {
        self.degraded.set(1.0);
        if self.enabled {
            self.events.push(event::DEGRADED, site_index(site), 0, 0);
        }
    }

    /// One sealed-segment scan decision on the live query path:
    /// `visited` segments had their synopsis consulted, `pruned` were
    /// skipped by fence/filter metadata.  Detached [`SnapshotView`]
    /// queries do not report here — the counters describe live store
    /// traffic (and the `--read-gate` prune ratio is measured on them).
    ///
    /// [`SnapshotView`]: crate::SnapshotView
    pub(crate) fn record_scan(&self, visited: u64, pruned: u64) {
        if !self.enabled {
            return;
        }
        self.segments_visited.add(visited);
        self.segments_pruned.add(pruned);
    }

    /// One lazy synopsis block loaded from a blob on first touch.
    pub(crate) fn record_block_load(&self) {
        if !self.enabled {
            return;
        }
        self.block_loads.inc();
    }

    /// One `merge_global` call served from (or missing) the
    /// version-stamped merged-synopsis cache.
    pub(crate) fn record_merge_cache(&self, hit: bool) {
        if !self.enabled {
            return;
        }
        if hit {
            self.merge_cache_hits.inc();
        } else {
            self.merge_cache_misses.inc();
        }
    }

    /// One timed query operation.
    pub(crate) fn record_query(&self, op: QueryOp, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            if let Some(hist) = self.query_seconds.get(op as usize) {
                hist.observe(sw);
            }
        }
    }

    /// The full store exposition: every registered series plus the
    /// point-in-time [`StoreStats`] counters rendered as series of their
    /// own (`pds_store_ingested_records_total`, `pds_store_live_records`,
    /// `pds_store_seals_total`, `pds_store_segments`,
    /// `pds_store_split_tuples_total`).
    pub(crate) fn render(&self, stats: &StoreStats) -> String {
        use std::fmt::Write as _;
        let mut out = self.registry.render();
        let _ = writeln!(out, "# TYPE pds_store_ingested_records_total counter");
        let _ = writeln!(
            out,
            "pds_store_ingested_records_total {}",
            stats.ingested_records
        );
        let _ = writeln!(out, "# TYPE pds_store_live_records gauge");
        let _ = writeln!(out, "pds_store_live_records {}", stats.live_records);
        let _ = writeln!(out, "# TYPE pds_store_seals_total counter");
        let _ = writeln!(out, "pds_store_seals_total {}", stats.seals);
        let _ = writeln!(out, "# TYPE pds_store_segments gauge");
        let _ = writeln!(out, "pds_store_segments {}", stats.segments);
        let _ = writeln!(out, "# TYPE pds_store_split_tuples_total counter");
        let _ = writeln!(out, "pds_store_split_tuples_total {}", stats.split_tuples);
        let _ = writeln!(out, "# TYPE pds_store_events_total counter");
        let _ = writeln!(out, "pds_store_events_total {}", self.events.pushed());
        out
    }

    /// The retained store events, oldest first, decoded to one line each.
    pub(crate) fn render_events(&self) -> Vec<String> {
        self.events.dump(|kind, a, b, c| match kind {
            event::SEAL_INSTALLED => {
                format!("seal-installed partition={a} seq={b} records={c}")
            }
            event::COMPACTION_COMMITTED => {
                format!("compaction-committed partition={a} out_seq={b} inputs={c}")
            }
            event::WAL_ROTATED => format!("wal-rotated partition={a} seq={b}"),
            event::RECOVERY => {
                format!("recovery segments={a} records={b} took_ms={c}")
            }
            event::IO_ERROR => format!(
                "io-error site={} injected={} attempt={c}",
                site_name(a),
                b != 0
            ),
            event::CLEANUP_ERROR => format!("cleanup-error site={}", site_name(a)),
            event::DEGRADED => format!("degraded site={}", site_name(a)),
            other => format!("unknown-event kind={other} a={a} b={b} c={c}"),
        })
    }
}

/// The store's durable-path failure policy: bounded retry with
/// exponential backoff for idempotent operations, plus the telemetry
/// hooks that make every I/O failure (retried, surfaced, or best-effort
/// cleanup) observable.  Cloned into each [`PartitionWal`] and
/// [`Manifest`] handle; the default (used by handles opened outside a
/// store) retries twice with no backoff and records nothing.
///
/// [`PartitionWal`]: crate::wal::PartitionWal
/// [`Manifest`]: crate::manifest::Manifest
#[derive(Debug, Clone)]
pub(crate) struct IoPolicy {
    /// Retries after the first failed attempt (`0` disables retry).
    retries: u32,
    /// Base backoff before retry `k` sleeps `backoff_ms << k` milliseconds.
    backoff_ms: u64,
    /// Telemetry sink; `None` for standalone WAL/manifest handles.
    telemetry: Option<Arc<StoreTelemetry>>,
}

impl Default for IoPolicy {
    fn default() -> Self {
        IoPolicy {
            retries: 2,
            backoff_ms: 0,
            telemetry: None,
        }
    }
}

impl IoPolicy {
    /// A policy with the store's configured retry budget, reporting into
    /// the store's telemetry.
    pub(crate) fn new(
        retries: u32,
        backoff_ms: u64,
        telemetry: Option<Arc<StoreTelemetry>>,
    ) -> Self {
        IoPolicy {
            retries,
            backoff_ms,
            telemetry,
        }
    }

    /// Runs an **idempotent** durable operation with bounded retry:
    /// every failure is observed into telemetry, every retry counted and
    /// backed off exponentially (`backoff_ms << attempt`), and the final
    /// failure returned to the caller (who degrades the store).  Only
    /// operations safe to re-issue belong here — `wal-append` notably
    /// does not (see [`PartitionWal::append`](crate::wal::PartitionWal::append)).
    pub(crate) fn run<T>(
        &self,
        site: &str,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) => {
                    self.observe_attempt(site, &e, attempt);
                    if attempt >= self.retries {
                        return Err(e);
                    }
                    if let Some(tel) = &self.telemetry {
                        tel.record_io_retry();
                    }
                    if self.backoff_ms > 0 {
                        std::thread::sleep(Duration::from_millis(self.backoff_ms << attempt));
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Observes a failure of a **non-retryable** operation (one whose
    /// side effects cannot be rewound, like a buffered WAL append).
    pub(crate) fn observe_error(&self, site: &str, e: &std::io::Error) {
        self.observe_attempt(site, e, 0);
    }

    /// Accounts the outcome of a best-effort cleanup removal: `NotFound`
    /// is the idempotent no-op, anything else is counted and traced —
    /// never silently dropped, never fatal.
    pub(crate) fn cleanup(&self, site: &str, result: std::io::Result<()>) {
        if let Err(e) = result {
            if e.kind() == std::io::ErrorKind::NotFound {
                return;
            }
            if let Some(tel) = &self.telemetry {
                tel.record_io_error(site, &e, 0);
                tel.record_cleanup_error(site);
            }
        }
    }

    fn observe_attempt(&self, site: &str, e: &std::io::Error, attempt: u32) {
        if let Some(tel) = &self.telemetry {
            tel.record_io_error(site, e, attempt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = StoreTelemetry::new(2, false);
        assert!(tel.maybe_start().is_none());
        tel.record_ingest(0);
        tel.record_frozen(0, 0, true);
        tel.record_recovery(1.0, 1, 2);
        tel.record_batch(None);
        tel.record_scan(5, 3);
        tel.record_block_load();
        tel.record_merge_cache(true);
        tel.record_merge_cache(false);
        let stats = StoreStats {
            ingested_records: 0,
            live_records: 0,
            seals: 0,
            segments: 0,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_telemetry_enabled 0"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"0\"} 0"));
        assert!(text.contains("pds_store_freezes_total 0"));
        assert!(text.contains("pds_store_segments_visited_total 0"));
        assert!(text.contains("pds_store_segments_pruned_total 0"));
        assert!(text.contains("pds_store_block_loads_total 0"));
        assert!(text.contains("pds_store_merge_cache_hits_total 0"));
        assert!(text.contains("pds_store_merge_cache_misses_total 0"));
        assert!(tel.render_events().is_empty());
    }

    #[test]
    fn enabled_telemetry_counts_and_traces() {
        let tel = StoreTelemetry::new(2, true);
        tel.record_ingest(0);
        tel.record_ingest(0);
        tel.record_ingest(1);
        tel.record_ingest(99); // out of range: ignored, never panics
        let sw = tel.maybe_start();
        tel.record_batch(sw);
        tel.record_frozen(1, 7, true);
        tel.record_installed(1, 7, 1234);
        let sw = tel.maybe_start();
        tel.record_compaction(sw, 1, 9, 3, 77);
        tel.record_recovery(0.25, 2, 500);
        tel.record_scan(10, 7);
        tel.record_block_load();
        tel.record_merge_cache(true);
        tel.record_merge_cache(true);
        tel.record_merge_cache(false);
        let stats = StoreStats {
            ingested_records: 3,
            live_records: 1,
            seals: 1,
            segments: 2,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_telemetry_enabled 1"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"0\"} 2"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"1\"} 1"));
        assert!(text.contains("pds_store_ingest_batches_total 1"));
        assert!(text.contains("pds_store_ingest_batch_seconds_count 1"));
        assert!(text.contains("pds_store_freezes_total 1"));
        assert!(text.contains("pds_store_wal_rotations_total 1"));
        assert!(text.contains("pds_store_compaction_rounds_total 1"));
        assert!(text.contains("pds_store_compaction_input_segments_total 3"));
        assert!(text.contains("pds_store_recovery_seconds 0.25"));
        assert!(text.contains("pds_store_segments_visited_total 10"));
        assert!(text.contains("pds_store_segments_pruned_total 7"));
        assert!(text.contains("pds_store_block_loads_total 1"));
        assert!(text.contains("pds_store_merge_cache_hits_total 2"));
        assert!(text.contains("pds_store_merge_cache_misses_total 1"));
        assert!(text.contains("pds_store_ingested_records_total 3"));
        assert!(text.contains("pds_store_segments 2"));
        let events = tel.render_events();
        assert_eq!(events.len(), 4);
        assert!(events[0].contains("wal-rotated partition=1 seq=7"));
        assert!(events[1].contains("seal-installed partition=1 seq=7 records=1234"));
        assert!(events[2].contains("compaction-committed partition=1 out_seq=9 inputs=3"));
        assert!(events[3].contains("recovery segments=2 records=500 took_ms=250"));
    }

    #[test]
    fn io_errors_split_injected_from_real() {
        let tel = StoreTelemetry::new(1, true);
        let real = std::io::Error::other("disk on fire");
        let injected = std::io::Error::other("injected eio at wal-commit");
        tel.record_io_error("wal-commit", &real, 0);
        tel.record_io_error("wal-commit", &injected, 1);
        tel.record_io_retry();
        tel.record_cleanup_error("cleanup");
        tel.record_degraded("wal-commit");
        let stats = StoreStats {
            ingested_records: 0,
            live_records: 0,
            seals: 0,
            segments: 0,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_io_errors_total{kind=\"real\"} 1"));
        assert!(text.contains("pds_store_io_errors_total{kind=\"injected\"} 1"));
        assert!(text.contains("pds_store_io_retries_total 1"));
        assert!(text.contains("pds_store_io_cleanup_errors_total 1"));
        assert!(text.contains("pds_store_degraded 1"));
        let events = tel.render_events();
        assert_eq!(events.len(), 4);
        assert!(events[0].ends_with("io-error site=wal-commit injected=false attempt=0"));
        assert!(events[1].ends_with("io-error site=wal-commit injected=true attempt=1"));
        assert!(events[2].ends_with("cleanup-error site=cleanup"));
        assert!(events[3].ends_with("degraded site=wal-commit"));
    }

    #[test]
    fn degraded_gauge_sets_even_with_telemetry_off() {
        // Health is operational state: the gauge must be scrape-able even
        // when workload accounting is disabled.  The event ring stays
        // silent (it is workload accounting).
        let tel = StoreTelemetry::new(1, false);
        tel.record_degraded("blob-publish");
        let stats = StoreStats {
            ingested_records: 0,
            live_records: 0,
            seals: 0,
            segments: 0,
            split_tuples: 0,
        };
        assert!(tel.render(&stats).contains("pds_store_degraded 1"));
        assert!(tel.render_events().is_empty());
    }

    #[test]
    fn io_policy_retries_then_surfaces_final_failure() {
        let tel = Arc::new(StoreTelemetry::new(1, true));
        let policy = IoPolicy::new(2, 0, Some(Arc::clone(&tel)));
        let mut calls = 0u32;
        let out: std::io::Result<u32> = policy.run("manifest-install", || {
            calls += 1;
            if calls < 3 {
                Err(std::io::Error::other("transient"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        let mut calls = 0u32;
        let out: std::io::Result<()> = policy.run("manifest-install", || {
            calls += 1;
            Err(std::io::Error::other("persistent"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3); // first try + 2 retries, then give up
        let stats = StoreStats {
            ingested_records: 0,
            live_records: 0,
            seals: 0,
            segments: 0,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_io_retries_total 4"));
        assert!(text.contains("pds_store_io_errors_total{kind=\"real\"} 5"));
    }

    #[test]
    fn cleanup_ignores_not_found_counts_the_rest() {
        let tel = Arc::new(StoreTelemetry::new(1, true));
        let policy = IoPolicy::new(0, 0, Some(Arc::clone(&tel)));
        policy.cleanup(
            "cleanup",
            Err(std::io::Error::from(std::io::ErrorKind::NotFound)),
        );
        policy.cleanup("cleanup", Ok(()));
        policy.cleanup("wal-retire", Err(std::io::Error::other("busy")));
        let stats = StoreStats {
            ingested_records: 0,
            live_records: 0,
            seals: 0,
            segments: 0,
            split_tuples: 0,
        };
        let text = tel.render(&stats);
        assert!(text.contains("pds_store_io_cleanup_errors_total 1"));
        let events = tel.render_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].ends_with("io-error site=wal-retire injected=false attempt=0"));
        assert!(events[1].ends_with("cleanup-error site=wal-retire"));
    }

    #[test]
    fn fault_sites_round_trip_through_event_encoding() {
        for (i, site) in FAULT_SITES.iter().enumerate() {
            assert_eq!(site_index(site), i as u64);
            assert_eq!(site_name(i as u64), *site);
        }
        assert_eq!(site_index("no-such-site"), FAULT_SITES.len() as u64);
        assert_eq!(site_name(FAULT_SITES.len() as u64), "unknown");
    }
}
