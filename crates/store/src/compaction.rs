//! Size-tiered compaction policy for sealed segments.
//!
//! Every sealed segment of a partition answers every range query, so an
//! un-compacted partition pays one synopsis probe per segment per query.
//! The size-tiered policy bounds that fan-out the way LSM stores do:
//! segments are grouped into **tiers** of similar size (record count), and
//! when a tier accumulates enough members they are merged — summed on the
//! union of their bucket boundaries and re-bucketed by the merge DP — into
//! one segment whose size promotes it to the next tier.  Small fresh seals
//! therefore merge often and cheaply; large merged segments merge rarely.
//!
//! The policy only *selects*; the store runs the merge on its background
//! seal workers against cloned segment handles and swaps the result in
//! under a short write lock (see the crate docs' durability matrix for how
//! the swap commits through the manifest).
//!
//! Selection is a pure function of the `(seq, records)` list, so a given
//! seal history always compacts the same way — the property the
//! deterministic crash matrix leans on.

/// When and what to compact (configured per store through
/// [`StoreConfig::compaction`](crate::StoreConfig::compaction)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// A tier must hold at least this many segments before it merges
    /// (LSM parlance: `min_threshold`).  Values below 2 behave as 2.
    pub min_merge: usize,
    /// Two segments share a tier while the larger holds at most
    /// `tier_ratio` times the records of the smaller.  Values below 1.0
    /// behave as 1.0 (exact-size tiers).
    pub tier_ratio: f64,
}

impl Default for CompactionPolicy {
    /// Merge four similar-sized segments at a time, sizes within 2x —
    /// the classic size-tiered defaults.
    fn default() -> Self {
        CompactionPolicy {
            min_merge: 4,
            tier_ratio: 2.0,
        }
    }
}

impl CompactionPolicy {
    /// Picks the segments one compaction round should merge, given each
    /// sealed segment's `(seal sequence, record count)`.  Returns the seal
    /// sequences of the chosen tier — the smallest-sized eligible tier, so
    /// cheap merges happen first — or `None` when no tier is full.
    pub fn select(&self, segments: &[(u64, u64)]) -> Option<Vec<u64>> {
        let min_merge = self.min_merge.max(2);
        let ratio = self.tier_ratio.max(1.0);
        if segments.len() < min_merge {
            return None;
        }
        // Tier by size: sort ascending by (records, seq), then greedily cut
        // maximal runs where every member stays within `ratio` of the run's
        // smallest.  The first full run is the cheapest eligible merge.
        let mut by_size: Vec<(u64, u64)> = segments
            .iter()
            .map(|&(seq, records)| (records, seq))
            .collect();
        by_size.sort_unstable();
        let mut run_start = 0usize;
        for i in 0..=by_size.len() {
            let run_ends = i == by_size.len()
                || by_size[i].0 as f64 > ratio * (by_size[run_start].0.max(1)) as f64;
            if !run_ends {
                continue;
            }
            if i - run_start >= min_merge {
                let mut seqs: Vec<u64> = by_size[run_start..i].iter().map(|&(_, s)| s).collect();
                seqs.sort_unstable();
                return Some(seqs);
            }
            run_start = i;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tiers_are_selected_smallest_first() {
        let policy = CompactionPolicy {
            min_merge: 2,
            tier_ratio: 2.0,
        };
        // Two small fresh seals and one big merged segment: only the small
        // tier is full, and the big one is left alone.
        assert_eq!(
            policy.select(&[(0, 1000), (1, 90), (2, 100)]),
            Some(vec![1, 2])
        );
        // The merged result joins the big tier; nothing further to do.
        assert_eq!(policy.select(&[(0, 1000), (3, 190)]), None);
        // ... until the big tier itself fills.
        assert_eq!(
            policy.select(&[(0, 1000), (3, 900), (4, 950), (5, 120)]),
            Some(vec![0, 3, 4])
        );
    }

    #[test]
    fn under_threshold_or_mismatched_sizes_do_not_compact() {
        let policy = CompactionPolicy::default(); // min_merge 4, ratio 2.0
        assert_eq!(policy.select(&[]), None);
        assert_eq!(policy.select(&[(0, 10), (1, 11), (2, 10)]), None);
        // Four segments but stretched across tiers: no run of four within 2x.
        assert_eq!(policy.select(&[(0, 10), (1, 25), (2, 60), (3, 150)]), None);
        // Four within 2x: merged as one tier.
        assert_eq!(
            policy.select(&[(0, 10), (1, 12), (2, 15), (3, 20)]),
            Some(vec![0, 1, 2, 3])
        );
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let policy = CompactionPolicy {
            min_merge: 0,
            tier_ratio: 0.0,
        };
        // min_merge clamps to 2, ratio to 1.0 (exact sizes only).
        assert_eq!(policy.select(&[(0, 5), (1, 5)]), Some(vec![0, 1]));
        assert_eq!(policy.select(&[(0, 5), (1, 6)]), None);
        // Zero-record segments do not divide by zero.
        assert_eq!(policy.select(&[(0, 0), (1, 0)]), Some(vec![0, 1]));
    }
}
