//! Deterministic crash-injection hooks for durability testing.
//!
//! The store's crash-recovery contract ("reopen from manifest + segment
//! blobs + WAL equals the uninterrupted run") is only worth anything if it
//! is pinned at every hand-off point of the lifecycle.  This module plants
//! **labeled crash points** inside the store's write paths; a test arms one
//! of them through the environment and the process genuinely dies there
//! (`std::process::abort`, no destructors, no buffered-writer flushes —
//! exactly like a crash), so the crash-matrix suite can reopen the
//! directory in a fresh process and assert equivalence.
//!
//! ## Arming
//!
//! * `PDS_CRASH_POINT=<label>` — abort when the labeled point is reached.
//! * `PDS_CRASH_AT=<n>` — abort on the `n`-th hit of that label (default 1,
//!   the first hit), letting a test crash at, say, the fifth WAL append.
//!
//! The labels, in lifecycle order:
//!
//! | label | planted |
//! |---|---|
//! | `post-wal-append` | after a WAL append has been flushed, before the ingest acknowledges |
//! | `frozen-pre-build` | after a memtable froze (WAL rotated), before the segment build |
//! | `built-pre-install` | after the segment built, before its blob/manifest install |
//! | `mid-blob-publish` | after a segment blob staged to `.bin.tmp`, before the rename |
//! | `installed-pre-wal-retire` | after blob + manifest install, before the frozen WAL retires |
//! | `mid-compaction-swap` | after the merged segment built, before it swaps in |
//! | `mid-manifest-publish` | after the rewritten manifest staged to `.tmp`, before the rename |
//! | `mid-wal-recovery-commit` | after the recovered live log staged to `.log.tmp`, before the rename |
//!
//! Coverage is machine-checked: the `pds-analyze` crate's `crash-coverage`
//! rule asserts every atomic tmp-rename publish site is preceded by one of
//! these labels and that every label appears in the crash-matrix test.
//!
//! With the environment unset the hook is one relaxed atomic load — cheap
//! enough to live in release builds, which is the point: the tested binary
//! is the shipped binary.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// Crash configuration parsed once from the environment.
struct Armed {
    label: String,
    /// Hits remaining before the abort (counts down across threads).
    remaining: AtomicI64,
}

fn armed() -> Option<&'static Armed> {
    static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let label = std::env::var("PDS_CRASH_POINT").ok()?;
            if label.is_empty() {
                return None;
            }
            let at: i64 = std::env::var("PDS_CRASH_AT")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            Some(Armed {
                label,
                remaining: AtomicI64::new(at),
            })
        })
        .as_ref()
}

/// Marks a labeled crash point.  Aborts the process when the armed label's
/// hit counter reaches zero; a no-op (one atomic load) otherwise.
pub fn reached(label: &str) {
    let Some(armed) = armed() else { return };
    if armed.label != label {
        return;
    }
    if armed.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        // Flush nothing, unwind nothing: die like a real crash.  stderr is
        // unbuffered, so the marker line still reaches the parent test.
        eprintln!("pds-store: crash point `{label}` reached, aborting");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_points_are_no_ops() {
        // The test environment does not arm a label, so this must return.
        reached("post-wal-append");
        reached("mid-compaction-swap");
    }
}
