//! Immutable sealed segments and their synopses.

use serde::{Deserialize, Serialize};

use pds_core::binio::{ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};
use pds_core::metrics::ErrorMetric;
use pds_core::model::ProbabilisticRelation;
use pds_histogram::merge::{pieces_of, Piece};
use pds_histogram::{build_histogram, Histogram};
use pds_wavelet::{build_sse_wavelet, WaveletSynopsis};

/// Which synopsis a sealed segment is summarised with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SynopsisKind {
    /// An optimal `B`-bucket histogram under the given error metric, built
    /// with the batched-sweep dynamic program.
    Histogram(ErrorMetric),
    /// An SSE-optimal `B`-term Haar wavelet synopsis.
    Wavelet,
}

/// The synopsis stored inside a segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SegmentSynopsis {
    /// Histogram synopsis over the segment's local domain.
    Histogram(Histogram),
    /// Wavelet synopsis over the segment's local domain.
    Wavelet(WaveletSynopsis),
}

impl SegmentSynopsis {
    /// Local domain size the synopsis covers.
    pub fn n(&self) -> usize {
        match self {
            SegmentSynopsis::Histogram(h) => h.n(),
            SegmentSynopsis::Wavelet(w) => w.n(),
        }
    }
}

/// One immutable sealed unit of a partition: the synopsis of a batch of
/// ingested records over the global item range `[start, start + width)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    start: usize,
    width: usize,
    records: u64,
    synopsis: SegmentSynopsis,
}

/// Versioned wire envelope for [`Segment::to_json`] / [`Segment::from_json`].
#[derive(Serialize, Deserialize)]
struct SegmentEnvelope {
    version: u32,
    segment: Segment,
}

impl Segment {
    /// The segment JSON envelope version written by [`Segment::to_json`].
    pub const FORMAT_VERSION: u32 = 1;

    /// Magic bytes of the compact binary encoding.
    pub const BINARY_MAGIC: [u8; 4] = *b"PDSG";

    /// Version stamp of the compact binary encoding written by
    /// [`Segment::to_binary`].
    pub const BINARY_VERSION: u16 = 1;

    /// Wraps a synopsis as a segment over the global range starting at
    /// `start`.
    ///
    /// Segments are serving artefacts: a histogram's per-bucket build-cost
    /// diagnostics are stripped on entry (they are recomputable and are not
    /// persisted by the compact binary encoding), so the in-memory segment
    /// always equals its decoded form.
    pub fn new(start: usize, records: u64, synopsis: SegmentSynopsis) -> Result<Self> {
        let synopsis = match synopsis {
            SegmentSynopsis::Histogram(h) => SegmentSynopsis::Histogram(h.without_costs()),
            wavelet => wavelet,
        };
        let segment = Segment {
            start,
            width: synopsis.n(),
            records,
            synopsis,
        };
        segment.validate()?;
        Ok(segment)
    }

    /// Seals a relation into a segment by building the configured synopsis
    /// with `budget` buckets/coefficients.
    pub fn build(
        start: usize,
        records: u64,
        relation: &ProbabilisticRelation,
        kind: SynopsisKind,
        budget: usize,
    ) -> Result<Self> {
        let synopsis = match kind {
            SynopsisKind::Histogram(metric) => {
                SegmentSynopsis::Histogram(build_histogram(relation, metric, budget)?)
            }
            SynopsisKind::Wavelet => SegmentSynopsis::Wavelet(build_sse_wavelet(relation, budget)?),
        };
        Segment::new(start, records, synopsis)
    }

    /// First global item covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of items covered.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Last global item covered (inclusive).
    pub fn end(&self) -> usize {
        self.start + self.width - 1
    }

    /// Number of records sealed into this segment.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The stored synopsis.
    pub fn synopsis(&self) -> &SegmentSynopsis {
        &self.synopsis
    }

    /// Re-checks the structural invariants (synopsis span matches the
    /// declared width, inner synopsis valid) — the entry point for segments
    /// that arrived from outside a builder.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.width != self.synopsis.n() {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "segment declares width {} but its synopsis covers {} items",
                    self.width,
                    self.synopsis.n()
                ),
            });
        }
        match &self.synopsis {
            SegmentSynopsis::Histogram(h) => h.validate(),
            SegmentSynopsis::Wavelet(w) => w.validate(),
        }
    }

    /// The estimated expected frequency of one **global** item.
    pub fn estimate(&self, item: usize) -> f64 {
        if item < self.start || item > self.end() {
            return 0.0;
        }
        match &self.synopsis {
            SegmentSynopsis::Histogram(h) => h.estimate(item - self.start),
            SegmentSynopsis::Wavelet(w) => w.estimate(item - self.start),
        }
    }

    /// Estimated expected total frequency over the **global** inclusive item
    /// range `[lo, hi]`, counting only this segment's overlap.  Histogram
    /// segments walk their overlapping buckets (`O(#buckets)`); wavelet
    /// segments reconstruct their span.
    pub fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        if hi < self.start || lo > self.end() {
            return 0.0;
        }
        let from = lo.max(self.start) - self.start;
        let to = hi.min(self.end()) - self.start;
        match &self.synopsis {
            SegmentSynopsis::Histogram(h) => {
                let mut total = 0.0;
                for b in h.buckets() {
                    if b.end < from || b.start > to {
                        continue;
                    }
                    let overlap = b.end.min(to) - b.start.max(from) + 1;
                    total += overlap as f64 * b.representative;
                }
                total
            }
            SegmentSynopsis::Wavelet(w) => w.reconstruct()[from..=to].iter().sum(),
        }
    }

    /// The segment's estimate vector as a piecewise-constant summary (the
    /// input shape of the compaction/merge DP).  Histogram segments yield
    /// one piece per bucket; wavelet segments yield maximal constant runs of
    /// their reconstruction.
    pub fn pieces(&self) -> Vec<Piece> {
        match &self.synopsis {
            SegmentSynopsis::Histogram(h) => pieces_of(h),
            SegmentSynopsis::Wavelet(w) => {
                let dense = w.reconstruct();
                let mut out: Vec<Piece> = Vec::new();
                for &value in &dense {
                    match out.last_mut() {
                        Some(last) if last.value == value => last.width += 1,
                        _ => out.push(Piece { width: 1, value }),
                    }
                }
                out
            }
        }
    }

    /// Serialises the segment into the compact binary format (header plus
    /// the embedded synopsis's own binary envelope, length-prefixed).
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        self.validate()?;
        let mut w = ByteWriter::envelope(Self::BINARY_MAGIC, Self::BINARY_VERSION);
        w.put_varint(self.start as u64);
        w.put_varint(self.records);
        let (tag, payload) = match &self.synopsis {
            // Costs were already stripped on construction; the compact
            // encoding skips the cost slots entirely.
            SegmentSynopsis::Histogram(h) => (0u8, h.to_binary_compact()?),
            SegmentSynopsis::Wavelet(wav) => (1u8, wav.to_binary()?),
        };
        w.put_u8(tag);
        w.put_varint(payload.len() as u64);
        w.put_bytes(&payload);
        Ok(w.into_bytes())
    }

    /// Parses a segment from the compact binary format; truncation, bad
    /// magic, version skew and invalid payloads surface as [`PdsError`]s.
    pub fn from_binary(bytes: &[u8]) -> Result<Self> {
        let (mut r, version) = ByteReader::envelope(bytes, "segment", Self::BINARY_MAGIC)?;
        if version != Self::BINARY_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "segment binary version {version} is not supported (expected {})",
                    Self::BINARY_VERSION
                ),
            });
        }
        let start = r.get_len(u32::MAX as usize)?;
        let records = r.get_varint()?;
        let tag = r.get_u8()?;
        let len = r.get_len(r.remaining())?;
        let payload = r.get_bytes(len)?;
        r.finish()?;
        let synopsis = match tag {
            0 => SegmentSynopsis::Histogram(Histogram::from_binary(payload)?),
            1 => SegmentSynopsis::Wavelet(WaveletSynopsis::from_binary(payload)?),
            other => {
                return Err(PdsError::InvalidParameter {
                    message: format!("segment: unknown synopsis tag {other}"),
                })
            }
        };
        Segment::new(start, records, synopsis)
    }

    /// Serialises the segment as a **durable blob** — the exact bytes of
    /// an install-time `seg-<p>-<seq>.bin` file.  Since format v2 this is
    /// the block-structured [`blob`](crate::blob) container (`PDSB`):
    /// prune metadata in a front block, the compact binary encoding
    /// ([`Segment::to_binary`]) as a lazily-loadable synopsis block, and
    /// a CRC'd index footer.
    pub fn to_blob(&self) -> Result<Vec<u8>> {
        crate::blob::encode_blob(self)
    }

    /// Parses a durable blob written by [`Segment::to_blob`], dispatching
    /// on the leading magic: `PDSB` decodes the block-structured v2
    /// container (every block CRC-verified, prune metadata recomputed and
    /// cross-checked); legacy `PDSG`-headed v1 blobs (compact binary +
    /// CRC-32 trailer) stay readable.  Bit rot and truncation surface as
    /// [`PdsError`]s before any payload is trusted.
    pub fn from_blob(bytes: &[u8]) -> Result<Self> {
        if bytes.starts_with(&crate::blob::BLOB_MAGIC) {
            return Ok(crate::blob::decode_blob(bytes)?.0);
        }
        let payload = pds_core::binio::verify_crc32(bytes, "segment blob")?;
        Segment::from_binary(payload)
    }

    /// Serialises the segment into the versioned JSON envelope — the debug
    /// encoding; the binary format is the persistent one.
    pub fn to_json(&self) -> Result<String> {
        self.validate()?;
        let envelope = SegmentEnvelope {
            version: Self::FORMAT_VERSION,
            segment: self.clone(),
        };
        serde_json::to_string(&envelope).map_err(|e| PdsError::InvalidParameter {
            message: format!("segment serialisation failed: {e}"),
        })
    }

    /// Parses a segment from the versioned JSON envelope.
    pub fn from_json(text: &str) -> Result<Self> {
        let envelope: SegmentEnvelope =
            serde_json::from_str(text).map_err(|e| PdsError::InvalidParameter {
                message: format!("segment deserialisation failed: {e}"),
            })?;
        if envelope.version != Self::FORMAT_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "segment envelope version {} is not supported (expected {})",
                    envelope.version,
                    Self::FORMAT_VERSION
                ),
            });
        }
        envelope.segment.validate()?;
        Ok(envelope.segment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};

    fn relation(n: usize) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 3.0,
            skew: 0.8,
            seed: 7,
        })
        .into()
    }

    #[test]
    fn histogram_segment_estimates_match_its_histogram() {
        let rel = relation(32);
        let seg = Segment::build(
            100,
            rel.m() as u64,
            &rel,
            SynopsisKind::Histogram(ErrorMetric::Sse),
            6,
        )
        .unwrap();
        assert_eq!(seg.start(), 100);
        assert_eq!(seg.width(), 32);
        assert_eq!(seg.end(), 131);
        let SegmentSynopsis::Histogram(h) = seg.synopsis() else {
            panic!("expected a histogram synopsis");
        };
        for item in [100usize, 111, 131] {
            assert_eq!(seg.estimate(item), h.estimate(item - 100));
        }
        assert_eq!(seg.estimate(99), 0.0);
        assert_eq!(seg.estimate(132), 0.0);
        // Range sums agree with item-by-item estimates and clip correctly.
        let walked = seg.range_sum(90, 115);
        let item_by_item: f64 = (100..=115).map(|i| seg.estimate(i)).sum();
        assert!((walked - item_by_item).abs() < 1e-9);
        assert_eq!(seg.pieces().len(), h.num_buckets());
    }

    #[test]
    fn wavelet_segment_round_trips_and_sums() {
        let rel = relation(16);
        let seg = Segment::build(8, rel.m() as u64, &rel, SynopsisKind::Wavelet, 5).unwrap();
        let total: f64 = (8..24).map(|i| seg.estimate(i)).sum();
        assert!((seg.range_sum(0, 100) - total).abs() < 1e-9);
        // Pieces cover the whole width.
        assert_eq!(seg.pieces().iter().map(|p| p.width).sum::<usize>(), 16);
        let bytes = seg.to_binary().unwrap();
        assert_eq!(Segment::from_binary(&bytes).unwrap(), seg);
        let json = seg.to_json().unwrap();
        assert_eq!(Segment::from_json(&json).unwrap(), seg);
    }

    #[test]
    fn blob_round_trips_and_crc_catches_every_bit_flip() {
        let rel = relation(16);
        let seg = Segment::build(4, 9, &rel, SynopsisKind::Wavelet, 5).unwrap();
        let blob = seg.to_blob().unwrap();
        assert_eq!(Segment::from_blob(&blob).unwrap(), seg);
        for pos in 0..blob.len() {
            let mut bad = blob.clone();
            bad[pos] ^= 0x10;
            assert!(Segment::from_blob(&bad).is_err(), "flip at byte {pos}");
        }
        for cut in 0..blob.len() {
            assert!(Segment::from_blob(&blob[..cut]).is_err(), "cut at {cut}");
        }
        // Legacy v1 blobs (compact binary + CRC-32 trailer) still decode
        // through the magic dispatch, with the same corruption guarantees.
        let mut v1 = seg.to_binary().unwrap();
        pds_core::binio::append_crc32(&mut v1);
        assert_eq!(Segment::from_blob(&v1).unwrap(), seg);
        for pos in 0..v1.len() {
            let mut bad = v1.clone();
            bad[pos] ^= 0x10;
            assert!(Segment::from_blob(&bad).is_err(), "v1 flip at byte {pos}");
        }
        for cut in 0..v1.len() {
            assert!(Segment::from_blob(&v1[..cut]).is_err(), "v1 cut at {cut}");
        }
    }

    #[test]
    fn binary_rejects_corruption_truncation_and_skew() {
        let rel = relation(16);
        let seg = Segment::build(
            0,
            9,
            &rel,
            SynopsisKind::Histogram(ErrorMetric::Ssre { c: 0.5 }),
            4,
        )
        .unwrap();
        let bytes = seg.to_binary().unwrap();
        for cut in 0..bytes.len() {
            assert!(Segment::from_binary(&bytes[..cut]).is_err());
        }
        let mut skewed = bytes.clone();
        skewed[4] = 77;
        assert!(Segment::from_binary(&skewed).is_err());
        let mut bad_tag = bytes.clone();
        // magic (4) + version (2) + start varint `0` (1) + records varint
        // `9` (1) put the synopsis tag byte at offset 8.
        assert_eq!(bad_tag[8], 0, "histogram tag");
        bad_tag[8] = 9;
        assert!(Segment::from_binary(&bad_tag).is_err());
        let mut long = bytes.clone();
        long.push(1);
        assert!(Segment::from_binary(&long).is_err());

        let json = seg.to_json().unwrap();
        assert!(Segment::from_json(&json[..json.len() - 2]).is_err());
        let skewed = json.replace("\"version\":1", "\"version\":3");
        assert!(Segment::from_json(&skewed).is_err());
    }
}
