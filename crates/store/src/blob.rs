//! The block-structured durable segment blob (`PDSB` v2).
//!
//! A v2 blob is one `seg-<p>-<seq>.bin` file laid out so a reopen can map
//! *only its metadata* and defer the synopsis bytes until a query first
//! touches them:
//!
//! ```text
//! offset 0   ┌──────────────────────────────────────────────┐
//!            │ header: magic "PDSB" + u16 version (6 bytes) │
//! offset 6   ├──────────────────────────────────────────────┤
//!            │ meta block (meta_len bytes):                 │
//!            │   start · width · records (varints)          │
//!            │   prune fence  (tag, local lo/hi varints)    │
//!            │   presence filter (tag, k, u64 words)        │
//!            ├──────────────────────────────────────────────┤
//!            │ synopsis block (syn_len bytes):              │
//!            │   the exact `Segment::to_binary` (`PDSG`)    │
//!            │   bytes — loaded lazily on first touch       │
//!            ├──────────────────────────────────────────────┤
//!            │ footer (36 bytes, fixed):                    │
//!            │   meta_len u32 · syn_len u64                 │
//!            │   meta_crc u32 · syn_crc u32                 │
//!            │   total_len u64 · magic "PDSF" · crc u32     │
//! file end   └──────────────────────────────────────────────┘
//! ```
//!
//! **Every byte is covered**: the meta block by `meta_crc`, the synopsis
//! block by `syn_crc`, the footer's first 32 bytes by its own trailing
//! CRC, and the 6 header bytes by the magic/version checks (no single-bit
//! flip maps `PDSB`/version 2 onto another accepted value).  The footer's
//! `total_len` and the `6 + meta_len + syn_len + 36 == file_len` identity
//! pin the three regions contiguously, so truncation or splicing is
//! detected before any region is parsed.  A full decode additionally
//! recomputes the prune metadata from the decoded synopsis and rejects
//! any mismatch — the lazily-read meta block can never disagree with the
//! synopsis it fences.
//!
//! [`Segment::from_blob`](crate::Segment::from_blob) still accepts the
//! pre-block v1 blob (`PDSG` bytes + CRC-32 trailer) by dispatching on
//! the leading magic, so stores written before the v2 format reopen
//! unchanged.

use pds_core::binio::{crc32, ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};

use crate::segment::{Segment, SegmentSynopsis};

/// Magic bytes of the block-structured blob container.
pub const BLOB_MAGIC: [u8; 4] = *b"PDSB";

/// Container version written by [`encode_blob`].
pub const BLOB_VERSION: u16 = 2;

/// Magic bytes inside the fixed footer.
const FOOTER_MAGIC: [u8; 4] = *b"PDSF";

/// Bytes of the envelope header (magic + version).
pub const HEADER_LEN: usize = 6;

/// Bytes of the fixed footer at the end of every v2 blob.
pub const FOOTER_LEN: usize = 36;

/// Presence filters are only built while the synopsis support stays at or
/// below this many items — larger segments rely on the fence alone (a
/// filter over a huge support set filters nothing and bloats the meta
/// block every reopen must read).
const FILTER_CAP: usize = 4096;

/// Filter bits budgeted per support item (~1% false positives at k=7).
const FILTER_BITS_PER_KEY: usize = 10;

/// Derived hash probes per filter lookup.
const FILTER_HASHES: u32 = 7;

fn corrupt(message: String) -> PdsError {
    PdsError::InvalidParameter { message }
}

/// A small Bloom-style presence filter over the **local** item indices a
/// segment's synopsis supports (values ≠ 0.0).  False positives only make
/// a point query visit a segment it could have skipped; false negatives
/// are impossible, so pruning through the filter is answer-preserving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceFilter {
    k: u32,
    words: Vec<u64>,
}

/// One multiply-xorshift avalanche (the splitmix64 finalizer) — cheap,
/// deterministic, dependency-free.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// Two independent hashes of an index; probes use double hashing
/// `h1 + i·h2` (`h2` forced odd so consecutive probes never collapse).
fn hash_pair(item: u64) -> (u64, u64) {
    let h1 = mix64(item ^ 0x9E37_79B9_7F4A_7C15);
    let h2 = mix64(item ^ 0xD1B5_4A32_D192_ED03) | 1;
    (h1, h2)
}

impl PresenceFilter {
    fn bits(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    /// Builds a filter sized for `support` local indices and inserts them.
    fn build(support: &[usize]) -> PresenceFilter {
        let bits = (support.len().max(1) * FILTER_BITS_PER_KEY).max(64);
        let words = vec![0u64; bits.div_ceil(64)];
        let mut filter = PresenceFilter {
            k: FILTER_HASHES,
            words,
        };
        for &item in support {
            filter.insert(item);
        }
        filter
    }

    fn insert(&mut self, item: usize) {
        let m = self.bits();
        let (h1, h2) = hash_pair(item as u64);
        for i in 0..u64::from(self.k) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            if let Some(word) = self.words.get_mut((bit / 64) as usize) {
                *word |= 1u64 << (bit % 64);
            }
        }
    }

    /// Whether the filter may contain the **local** index `item` (`true`
    /// is "must visit", `false` is "provably absent").
    pub fn may_contain(&self, item: usize) -> bool {
        let m = self.bits();
        if m == 0 {
            return true;
        }
        let (h1, h2) = hash_pair(item as u64);
        (0..u64::from(self.k)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.words
                .get((bit / 64) as usize)
                .is_some_and(|word| word >> (bit % 64) & 1 == 1)
        })
    }
}

/// Query-pruning metadata derived deterministically from a segment's
/// synopsis: the fence is the inclusive local index range with nonzero
/// synopsis support, the filter (when present) covers exactly the support
/// indices.  A segment whose fence misses a query window contributes an
/// exact `±0.0` to the estimate, and the query accumulators never hold
/// `-0.0`, so skipping it is **bitwise** answer-preserving — the contract
/// the `store_read_path` equivalence suite pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneMeta {
    fence: Option<(usize, usize)>,
    filter: Option<PresenceFilter>,
}

/// Maximal runs of local indices whose synopsis value is nonzero
/// (`-0.0 == 0.0`, so signed zeros count as zero support — their
/// contribution to any sum is still an exact zero).
fn support_runs(segment: &Segment) -> Vec<(usize, usize)> {
    match segment.synopsis() {
        SegmentSynopsis::Histogram(h) => h
            .buckets()
            .iter()
            .filter(|b| b.representative != 0.0)
            .map(|b| (b.start, b.end))
            .collect(),
        SegmentSynopsis::Wavelet(w) => {
            let mut runs: Vec<(usize, usize)> = Vec::new();
            for (i, &value) in w.reconstruct().iter().enumerate() {
                if value != 0.0 {
                    match runs.last_mut() {
                        Some((_, end)) if *end + 1 == i => *end = i,
                        _ => runs.push((i, i)),
                    }
                }
            }
            runs
        }
    }
}

impl PruneMeta {
    /// Computes the prune metadata of a segment — a pure function of the
    /// synopsis bytes, so the persisted copy is recomputable (and is
    /// verified against the synopsis on every full blob decode).
    pub fn of(segment: &Segment) -> PruneMeta {
        let runs = support_runs(segment);
        let Some(&(first_lo, first_hi)) = runs.first() else {
            return PruneMeta {
                fence: None,
                filter: None,
            };
        };
        let hi = runs.last().map_or(first_hi, |&(_, end)| end);
        let count: usize = runs.iter().map(|&(a, b)| b - a + 1).sum();
        let filter = if count <= FILTER_CAP {
            let mut support = Vec::with_capacity(count);
            for &(a, b) in &runs {
                support.extend(a..=b);
            }
            Some(PresenceFilter::build(&support))
        } else {
            None
        };
        PruneMeta {
            fence: Some((first_lo, hi)),
            filter,
        }
    }

    /// Whether a segment starting at global item `seg_start` may
    /// contribute a nonzero amount to the **clamped, global, inclusive**
    /// query window `[lo, hi]`.  `false` is a proof: the segment's
    /// contribution is an exact zero and skipping it leaves the estimate
    /// bitwise unchanged.  Point windows (`lo == hi`) additionally
    /// consult the presence filter.
    pub fn may_overlap(&self, seg_start: usize, lo: usize, hi: usize) -> bool {
        let Some((fence_lo, fence_hi)) = self.fence else {
            return false;
        };
        let global_lo = seg_start + fence_lo;
        let global_hi = seg_start + fence_hi;
        if hi < global_lo || lo > global_hi {
            return false;
        }
        if lo == hi {
            // Reached only when lo >= global_lo >= seg_start.
            if let Some(filter) = &self.filter {
                return filter.may_contain(lo - seg_start);
            }
        }
        true
    }

    /// The inclusive local support fence, when any support exists.
    pub fn fence(&self) -> Option<(usize, usize)> {
        self.fence
    }

    /// Whether a presence filter was built for this segment.
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }
}

/// The decoded meta block of a v2 blob: the segment header fields plus
/// its prune metadata — everything a reopen needs to install and prune a
/// segment without touching the synopsis block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobMeta {
    /// First global item the segment covers.
    pub start: usize,
    /// Number of items the segment covers.
    pub width: usize,
    /// Records sealed into the segment.
    pub records: u64,
    /// Fence + presence filter for query pruning.
    pub prune: PruneMeta,
}

impl BlobMeta {
    /// The meta block a segment persists (also the recompute-verify
    /// reference on full decode).
    pub fn of(segment: &Segment) -> BlobMeta {
        BlobMeta {
            start: segment.start(),
            width: segment.width(),
            records: segment.records(),
            prune: PruneMeta::of(segment),
        }
    }
}

/// The fixed 36-byte footer of a v2 blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobFooter {
    /// Length of the meta block in bytes.
    pub meta_len: u32,
    /// Length of the synopsis block in bytes.
    pub syn_len: u64,
    /// CRC-32 of the meta block bytes.
    pub meta_crc: u32,
    /// CRC-32 of the synopsis block bytes.
    pub syn_crc: u32,
    /// Total file length, footer included.
    pub total_len: u64,
}

impl BlobFooter {
    /// Parses exactly [`FOOTER_LEN`] trailing bytes: footer CRC first,
    /// then magic, then fields.  Geometry against the real file length is
    /// the caller's check ([`decode_footer`]).
    pub fn decode(tail: &[u8]) -> Result<BlobFooter> {
        if tail.len() != FOOTER_LEN {
            return Err(corrupt(format!(
                "segment blob footer: {} bytes (expected {FOOTER_LEN})",
                tail.len()
            )));
        }
        let (covered, trailer) = tail.split_at(FOOTER_LEN - 4);
        let mut stored = [0u8; 4];
        stored.copy_from_slice(trailer);
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(covered);
        if stored != computed {
            return Err(corrupt(format!(
                "segment blob footer: crc32 mismatch (stored {stored:#010x}, \
                 computed {computed:#010x})"
            )));
        }
        let mut r = ByteReader::new(covered, "segment blob footer");
        let meta_len = r.get_u32()?;
        let syn_len = r.get_u64()?;
        let meta_crc = r.get_u32()?;
        let syn_crc = r.get_u32()?;
        let total_len = r.get_u64()?;
        let magic = r.get_bytes(4)?;
        r.finish()?;
        if magic != FOOTER_MAGIC {
            return Err(corrupt(format!(
                "segment blob footer: bad magic {magic:?} (expected \"PDSF\")"
            )));
        }
        Ok(BlobFooter {
            meta_len,
            syn_len,
            meta_crc,
            syn_crc,
            total_len,
        })
    }

    /// Byte offset of the synopsis block inside the blob file.
    pub fn synopsis_offset(&self) -> u64 {
        HEADER_LEN as u64 + u64::from(self.meta_len)
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.meta_len);
        w.put_u64(self.syn_len);
        w.put_u32(self.meta_crc);
        w.put_u32(self.syn_crc);
        w.put_u64(self.total_len);
        w.put_bytes(&FOOTER_MAGIC);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

fn encode_meta_block(meta: &BlobMeta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(meta.start as u64);
    w.put_varint(meta.width as u64);
    w.put_varint(meta.records);
    match meta.prune.fence {
        None => w.put_u8(0),
        Some((lo, hi)) => {
            w.put_u8(1);
            w.put_varint(lo as u64);
            w.put_varint(hi as u64);
        }
    }
    match &meta.prune.filter {
        None => w.put_u8(0),
        Some(filter) => {
            w.put_u8(1);
            w.put_varint(u64::from(filter.k));
            w.put_varint(filter.words.len() as u64);
            for &word in &filter.words {
                w.put_u64(word);
            }
        }
    }
    w.into_bytes()
}

/// Parses `bytes` = the first `HEADER_LEN + meta_len` bytes of a v2 blob
/// (header + meta block), verifying the envelope, the version, and the
/// footer-supplied `meta_crc` before trusting any length.
pub fn decode_meta_block(bytes: &[u8], meta_crc: u32) -> Result<BlobMeta> {
    let (mut r, version) = ByteReader::envelope(bytes, "segment blob meta", BLOB_MAGIC)?;
    if version != BLOB_VERSION {
        return Err(corrupt(format!(
            "segment blob version {version} is not supported (expected {BLOB_VERSION})"
        )));
    }
    let meta_region = bytes.get(HEADER_LEN..).unwrap_or_default();
    let computed = crc32(meta_region);
    if computed != meta_crc {
        return Err(corrupt(format!(
            "segment blob meta: crc32 mismatch (stored {meta_crc:#010x}, \
             computed {computed:#010x})"
        )));
    }
    let start = r.get_len(u32::MAX as usize)?;
    let width = r.get_len(u32::MAX as usize)?;
    if width == 0 {
        return Err(corrupt("segment blob meta: zero width".to_string()));
    }
    let records = r.get_varint()?;
    let fence = match r.get_u8()? {
        0 => None,
        1 => {
            let lo = r.get_len(u32::MAX as usize)?;
            let hi = r.get_len(u32::MAX as usize)?;
            if lo > hi || hi >= width {
                return Err(corrupt(format!(
                    "segment blob meta: fence [{lo}, {hi}] outside width {width}"
                )));
            }
            Some((lo, hi))
        }
        other => {
            return Err(corrupt(format!(
                "segment blob meta: unknown fence tag {other}"
            )))
        }
    };
    let filter = match r.get_u8()? {
        0 => None,
        1 => {
            let k = r.get_len(64)? as u32;
            if k == 0 {
                return Err(corrupt(
                    "segment blob meta: filter with zero hashes".to_string(),
                ));
            }
            // A word count beyond the remaining bytes cannot be honest.
            let n_words = r.get_len(r.remaining() / 8)?;
            if n_words == 0 {
                return Err(corrupt(
                    "segment blob meta: filter with zero words".to_string(),
                ));
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.get_u64()?);
            }
            Some(PresenceFilter { k, words })
        }
        other => {
            return Err(corrupt(format!(
                "segment blob meta: unknown filter tag {other}"
            )))
        }
    };
    if fence.is_none() && filter.is_some() {
        return Err(corrupt(
            "segment blob meta: filter without a fence".to_string(),
        ));
    }
    r.finish()?;
    Ok(BlobMeta {
        start,
        width,
        records,
        prune: PruneMeta { fence, filter },
    })
}

/// Parses and cross-checks the footer of a complete v2 blob image: the
/// declared geometry must tile the actual byte length exactly
/// (`header + meta + synopsis + footer == total_len == bytes.len()`), so
/// truncated or spliced files are rejected before any block is parsed.
pub fn decode_footer(bytes: &[u8]) -> Result<BlobFooter> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(corrupt(format!(
            "segment blob: {} bytes is too short for a v2 blob",
            bytes.len()
        )));
    }
    let footer = BlobFooter::decode(&bytes[bytes.len() - FOOTER_LEN..])?;
    let expected = (HEADER_LEN as u64)
        .checked_add(u64::from(footer.meta_len))
        .and_then(|v| v.checked_add(footer.syn_len))
        .and_then(|v| v.checked_add(FOOTER_LEN as u64));
    if expected != Some(footer.total_len) || footer.total_len != bytes.len() as u64 {
        return Err(corrupt(format!(
            "segment blob: footer declares {} total bytes over a {}-byte file",
            footer.total_len,
            bytes.len()
        )));
    }
    Ok(footer)
}

/// Parses the metadata (footer + meta block) of a complete v2 blob image
/// **without touching the synopsis block** — exactly what a lazy reopen
/// reads per segment, and the decoder the `blobmeta` fuzz target drives.
pub fn decode_blob_meta(bytes: &[u8]) -> Result<BlobMeta> {
    let footer = decode_footer(bytes)?;
    let meta_end = HEADER_LEN + footer.meta_len as usize;
    // meta_end <= bytes.len() is implied by the footer geometry check;
    // slice through `get` anyway so this path cannot panic even if that
    // check ever regresses.
    let prefix = bytes
        .get(..meta_end)
        .ok_or_else(|| corrupt("segment blob: meta block exceeds the blob".to_string()))?;
    decode_meta_block(prefix, footer.meta_crc)
}

/// Verifies and decodes a standalone synopsis block against its footer
/// CRC and its meta block — the first-touch load path.  The decoded
/// segment's recomputed metadata must equal the persisted copy bit for
/// bit, so a lazily-pruned query can never act on fences the synopsis
/// does not back.
pub fn decode_synopsis_block(bytes: &[u8], syn_crc: u32, meta: &BlobMeta) -> Result<Segment> {
    let computed = crc32(bytes);
    if computed != syn_crc {
        return Err(corrupt(format!(
            "segment blob synopsis: crc32 mismatch (stored {syn_crc:#010x}, \
             computed {computed:#010x})"
        )));
    }
    let segment = Segment::from_binary(bytes)?;
    let expected = BlobMeta::of(&segment);
    if *meta != expected {
        return Err(corrupt(
            "segment blob: persisted prune metadata does not match the \
             synopsis block"
                .to_string(),
        ));
    }
    Ok(segment)
}

/// Fully decodes a v2 blob: metadata, synopsis block, and the
/// meta-vs-synopsis recompute check.  Returns the segment together with
/// its verified metadata.
pub fn decode_blob(bytes: &[u8]) -> Result<(Segment, BlobMeta)> {
    let footer = decode_footer(bytes)?;
    let meta_end = HEADER_LEN + footer.meta_len as usize;
    // Both bounds are implied by the footer geometry check; slice through
    // `get` anyway so this path cannot panic even if that check regresses.
    let prefix = bytes
        .get(..meta_end)
        .ok_or_else(|| corrupt("segment blob: meta block exceeds the blob".to_string()))?;
    let meta = decode_meta_block(prefix, footer.meta_crc)?;
    let syn_end = meta_end + footer.syn_len as usize;
    let block = bytes
        .get(meta_end..syn_end)
        .ok_or_else(|| corrupt("segment blob: synopsis block exceeds the blob".to_string()))?;
    let segment = decode_synopsis_block(block, footer.syn_crc, &meta)?;
    Ok((segment, meta))
}

/// Encodes a segment as a v2 blob (the bytes of an install-time
/// `seg-<p>-<seq>.bin` file).  The synopsis block is the exact
/// [`Segment::to_binary`] image, so an eager decode can reuse it as the
/// segment's cached binary without re-encoding.
pub fn encode_blob(segment: &Segment) -> Result<Vec<u8>> {
    let syn = segment.to_binary()?;
    let meta_block = encode_meta_block(&BlobMeta::of(segment));
    let total_len = (HEADER_LEN + meta_block.len() + syn.len() + FOOTER_LEN) as u64;
    let footer = BlobFooter {
        meta_len: meta_block.len() as u32,
        syn_len: syn.len() as u64,
        meta_crc: crc32(&meta_block),
        syn_crc: crc32(&syn),
        total_len,
    };
    let mut w = ByteWriter::envelope(BLOB_MAGIC, BLOB_VERSION);
    w.put_bytes(&meta_block);
    w.put_bytes(&syn);
    w.put_bytes(&footer.encode());
    Ok(w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SynopsisKind;
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use pds_core::metrics::ErrorMetric;
    use pds_core::model::{BasicModel, ProbabilisticRelation};

    fn relation(n: usize, seed: u64) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 3.0,
            skew: 0.8,
            seed,
        })
        .into()
    }

    /// A relation over `[0, n)` whose mass is confined to `band` (1–3
    /// certain tuples per band item), zero everywhere else.
    fn banded_relation(n: usize, band: std::ops::Range<usize>) -> ProbabilisticRelation {
        let mut pairs = Vec::new();
        for i in band {
            for _ in 0..(1 + i % 3) {
                pairs.push((i, 1.0));
            }
        }
        BasicModel::from_pairs(n, pairs).unwrap().into()
    }

    fn histogram_segment() -> Segment {
        let rel = relation(32, 7);
        Segment::build(
            100,
            rel.m() as u64,
            &rel,
            SynopsisKind::Histogram(ErrorMetric::Sse),
            6,
        )
        .unwrap()
    }

    fn wavelet_segment() -> Segment {
        let rel = relation(16, 9);
        Segment::build(8, rel.m() as u64, &rel, SynopsisKind::Wavelet, 5).unwrap()
    }

    #[test]
    fn v2_blob_round_trips_both_synopsis_kinds() {
        for seg in [histogram_segment(), wavelet_segment()] {
            let blob = encode_blob(&seg).unwrap();
            assert_eq!(&blob[..4], b"PDSB");
            let (decoded, meta) = decode_blob(&blob).unwrap();
            assert_eq!(decoded, seg);
            assert_eq!(meta, BlobMeta::of(&seg));
            // Meta-only decode agrees without touching the synopsis.
            assert_eq!(decode_blob_meta(&blob).unwrap(), meta);
        }
    }

    #[test]
    fn footer_geometry_is_exact() {
        let blob = encode_blob(&histogram_segment()).unwrap();
        let footer = decode_footer(&blob).unwrap();
        assert_eq!(footer.total_len, blob.len() as u64);
        assert_eq!(
            HEADER_LEN as u64 + u64::from(footer.meta_len) + footer.syn_len + FOOTER_LEN as u64,
            footer.total_len
        );
        // The synopsis block is the exact to_binary image.
        let off = footer.synopsis_offset() as usize;
        let syn = &blob[off..off + footer.syn_len as usize];
        assert_eq!(syn, histogram_segment().to_binary().unwrap().as_slice());
        assert_eq!(&syn[..4], b"PDSG");
    }

    #[test]
    fn every_bit_flip_and_truncation_is_rejected() {
        let seg = wavelet_segment();
        let blob = encode_blob(&seg).unwrap();
        for pos in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[pos] ^= 1 << bit;
                assert!(decode_blob(&bad).is_err(), "flip at {pos}.{bit}");
            }
        }
        for cut in 0..blob.len() {
            assert!(decode_blob(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn meta_only_decode_rejects_meta_footer_and_header_flips() {
        // The lazy-open parse can't see synopsis-block damage (that's
        // caught at first touch by `decode_synopsis_block`), but every
        // byte it *does* read is covered.
        let blob = encode_blob(&histogram_segment()).unwrap();
        let footer = decode_footer(&blob).unwrap();
        let meta_end = HEADER_LEN + footer.meta_len as usize;
        let syn_end = meta_end + footer.syn_len as usize;
        for pos in (0..meta_end).chain(syn_end..blob.len()) {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[pos] ^= 1 << bit;
                assert!(decode_blob_meta(&bad).is_err(), "flip at {pos}.{bit}");
            }
        }
    }

    #[test]
    fn synopsis_block_load_rejects_damage_and_meta_skew() {
        let seg = histogram_segment();
        let blob = encode_blob(&seg).unwrap();
        let footer = decode_footer(&blob).unwrap();
        let meta = decode_blob_meta(&blob).unwrap();
        let off = footer.synopsis_offset() as usize;
        let syn = blob[off..off + footer.syn_len as usize].to_vec();
        assert_eq!(
            decode_synopsis_block(&syn, footer.syn_crc, &meta).unwrap(),
            seg
        );
        // Damaged block bytes.
        let mut bad = syn.clone();
        bad[10] ^= 1;
        assert!(decode_synopsis_block(&bad, footer.syn_crc, &meta).is_err());
        // Metadata that does not match the synopsis (records skewed).
        let mut skewed = meta.clone();
        skewed.records += 1;
        assert!(decode_synopsis_block(&syn, footer.syn_crc, &skewed).is_err());
    }

    #[test]
    fn prune_meta_fences_support_and_zero_elsewhere() {
        // A relation confined to a narrow band: the SSE DP gives the
        // all-zero flanks zero-representative buckets, so the fence is
        // narrow and everything outside it is provably prunable.
        let rel = banded_relation(64, 16..24);
        let seg = Segment::build(
            0,
            rel.m() as u64,
            &rel,
            SynopsisKind::Histogram(ErrorMetric::Sse),
            8,
        )
        .unwrap();
        let meta = PruneMeta::of(&seg);
        let (lo, hi) = meta.fence().unwrap();
        assert!(lo >= 8 && hi <= 31, "fence [{lo}, {hi}] not narrow");
        assert!(meta.has_filter());
        // Outside the fence: provably prunable; inside: must visit.
        assert!(!meta.may_overlap(0, 0, lo - 1));
        assert!(!meta.may_overlap(0, hi + 1, 63));
        assert!(meta.may_overlap(0, lo, hi));
        assert!(meta.may_overlap(0, 0, 63));
        // A fence miss with a nonzero segment start uses global indices.
        assert!(!meta.may_overlap(1000, 0, 999 + lo));
        // Pruned windows contribute an exact zero.
        for item in 0..64 {
            if !meta.may_overlap(0, item, item) {
                assert_eq!(seg.range_sum(item, item), 0.0, "item {item}");
            }
        }
    }

    #[test]
    fn zero_support_segment_prunes_everything() {
        let rel = banded_relation(16, 0..0);
        let seg = Segment::build(0, 0, &rel, SynopsisKind::Histogram(ErrorMetric::Sse), 4).unwrap();
        let meta = PruneMeta::of(&seg);
        assert_eq!(meta.fence(), None);
        assert!(!meta.may_overlap(0, 0, 15));
        // And it round-trips through the blob encoding.
        let blob = encode_blob(&seg).unwrap();
        let (_, decoded) = decode_blob(&blob).unwrap();
        assert_eq!(decoded.prune, meta);
    }

    #[test]
    fn presence_filter_has_no_false_negatives() {
        let support: Vec<usize> = (0..2000).filter(|i| i % 3 == 0).collect();
        let filter = PresenceFilter::build(&support);
        for &item in &support {
            assert!(filter.may_contain(item));
        }
        // False positives exist but must be rare (~1% budget; allow 5%).
        let negatives: Vec<usize> = (0..6000).filter(|i| i % 3 != 0).collect();
        let fp = negatives.iter().filter(|&&i| filter.may_contain(i)).count();
        assert!(
            fp * 20 < negatives.len(),
            "{fp} false positives over {}",
            negatives.len()
        );
    }

    #[test]
    fn huge_support_skips_the_filter_but_keeps_the_fence() {
        // A dense wavelet segment: support everywhere (the averaging
        // coefficients make every reconstructed value nonzero), and the
        // support count is over the filter cap, so the fence stands alone.
        let rel = banded_relation(8192, 0..8192);
        let seg = Segment::build(0, rel.m() as u64, &rel, SynopsisKind::Wavelet, 64).unwrap();
        let meta = PruneMeta::of(&seg);
        let (lo, hi) = meta.fence().unwrap();
        assert_eq!((lo, hi), (0, 8191));
        assert!(!meta.has_filter());
        assert!(meta.may_overlap(0, 5, 5));
        // Still a valid, round-trippable blob.
        let blob = encode_blob(&seg).unwrap();
        assert_eq!(decode_blob_meta(&blob).unwrap().prune, meta);
    }

    #[test]
    fn malformed_meta_blocks_are_rejected() {
        let seg = histogram_segment();
        let blob = encode_blob(&seg).unwrap();
        let footer = decode_footer(&blob).unwrap();
        let meta_end = HEADER_LEN + footer.meta_len as usize;
        let region = &blob[..meta_end];
        // Wrong CRC is rejected even with valid bytes.
        assert!(decode_meta_block(region, footer.meta_crc ^ 1).is_err());
        // Rebuild hostile meta blocks directly (valid CRCs, bad content).
        let hostile = |build: &dyn Fn(&mut ByteWriter)| {
            let mut w = ByteWriter::new();
            build(&mut w);
            let body = w.into_bytes();
            let crc = crc32(&body);
            let mut w = ByteWriter::envelope(BLOB_MAGIC, BLOB_VERSION);
            w.put_bytes(&body);
            decode_meta_block(&w.into_bytes(), crc)
        };
        // Fence outside the width.
        assert!(hostile(&|w| {
            w.put_varint(0);
            w.put_varint(8);
            w.put_varint(1);
            w.put_u8(1);
            w.put_varint(3);
            w.put_varint(9); // hi >= width
            w.put_u8(0);
        })
        .is_err());
        // Reversed fence.
        assert!(hostile(&|w| {
            w.put_varint(0);
            w.put_varint(8);
            w.put_varint(1);
            w.put_u8(1);
            w.put_varint(5);
            w.put_varint(2);
            w.put_u8(0);
        })
        .is_err());
        // Unknown tags.
        assert!(hostile(&|w| {
            w.put_varint(0);
            w.put_varint(8);
            w.put_varint(1);
            w.put_u8(7);
        })
        .is_err());
        // Filter without fence (non-canonical).
        assert!(hostile(&|w| {
            w.put_varint(0);
            w.put_varint(8);
            w.put_varint(1);
            w.put_u8(0);
            w.put_u8(1);
            w.put_varint(7);
            w.put_varint(1);
            w.put_u64(1);
        })
        .is_err());
        // Zero width.
        assert!(hostile(&|w| {
            w.put_varint(0);
            w.put_varint(0);
            w.put_varint(1);
            w.put_u8(0);
            w.put_u8(0);
        })
        .is_err());
        // Trailing garbage.
        assert!(hostile(&|w| {
            w.put_varint(0);
            w.put_varint(8);
            w.put_varint(1);
            w.put_u8(0);
            w.put_u8(0);
            w.put_u8(0);
        })
        .is_err());
    }
}
