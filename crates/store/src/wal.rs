//! Per-partition write-ahead logs for live memtable contents.
//!
//! A store's sealed segments are durable through
//! [`SynopsisStore::to_binary`](crate::SynopsisStore::to_binary), but the
//! records still buffered in memtables used to live only in memory.  A
//! [`PartitionWal`] closes that gap: every record routed to a partition is
//! appended to that partition's log **before** it enters the memtable, in
//! the replayable `pds_core::io` stream line format, so a crashed process
//! can reopen the store and re-ingest exactly the records that were live.
//!
//! ## File lifecycle
//!
//! Partition `p` owns up to three kinds of files inside the WAL directory:
//!
//! * `wal-<p>.log` — the **live log**, mirroring the current memtable.  One
//!   line per routed record (cross-partition x-tuples are logged as their
//!   per-partition sub-tuples, after splitting).
//! * `wal-<p>.<seq>.sealing` — a **frozen log**: when the memtable freezes
//!   for sealing, the live log is atomically renamed to carry the seal
//!   sequence number and a fresh live log starts.  The frozen file is
//!   deleted only after the sealed [`Segment`](crate::Segment) has been
//!   installed, so a crash *during* a seal (including a background seal)
//!   still replays the frozen records instead of losing them.
//! * `wal-<p>.log.tmp` — a staging file used while **committing** a
//!   recovery (see below); a leftover `.tmp` from a crashed recovery is
//!   discarded on the next scan.
//!
//! ## Recovery protocol (scan → re-ingest → commit)
//!
//! Reopening a store is a two-phase, crash-safe protocol driven by
//! [`SynopsisStore::open_with_wal`](crate::SynopsisStore::open_with_wal):
//!
//! 1. [`PartitionWal::scan`] **reads** the frozen logs (in seal order) and
//!    the live log without deleting or truncating anything, so a parse
//!    error in any partition — or a crash at any point before commit —
//!    leaves every log intact for the next attempt.
//! 2. The store re-ingests the replayed records into its memtables (with
//!    auto-sealing suppressed, so the replayed set stays exactly the live
//!    set).
//! 3. [`PartitionWal::commit`] writes the replayed records to
//!    `wal-<p>.log.tmp`, atomically renames it over the live log, deletes
//!    the absorbed frozen logs, and returns the append handle.
//!
//! A crash before the rename replays identically next time (exactly-once);
//! a crash in the narrow window between the rename and the frozen-file
//! deletions replays the absorbed frozen records **twice** (at-least-once)
//! — the trade chosen over any window that could lose records.
//!
//! ## Durability contract
//!
//! Appends are buffered; [`PartitionWal::sync`] flushes to the operating
//! system and is called by the store at every ingest-call boundary and
//! before every rotation.  `File::sync_all` (surviving power loss) is
//! intentionally **not** issued per record — the WAL protects against
//! process crashes; callers needing device-level durability should snapshot
//! with [`SynopsisStore::snapshot`](crate::SynopsisStore::snapshot).
//!
//! **Covered window.**  The WAL covers records that are *live* (in a
//! memtable) or *mid-seal* (frozen, segment build in flight).  Once a
//! segment installs, its frozen log is retired and the records' durability
//! transfers to the **next snapshot** — sealed segments live in memory
//! until [`SynopsisStore::to_binary`](crate::SynopsisStore::to_binary) /
//! `snapshot()` persists them, exactly as an LSM memtable flush is only
//! durable once its file hits disk.  Deployments that cannot afford to
//! lose a sealed-but-unsnapshotted segment should snapshot on a cadence
//! (or after seals); writing per-segment files at install time is a
//! tracked roadmap item.

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use pds_core::error::{PdsError, Result};
use pds_core::io::{read_stream, write_stream};
use pds_core::stream::StreamRecord;

fn io_err(context: &str, e: std::io::Error) -> PdsError {
    PdsError::InvalidParameter {
        message: format!("wal: {context}: {e}"),
    }
}

fn live_path(dir: &Path, partition: usize) -> PathBuf {
    dir.join(format!("wal-{partition}.log"))
}

/// The outcome of scanning a partition's logs: every replayable record (in
/// original arrival order) plus the frozen files that must be deleted once
/// the records are safely re-logged by [`PartitionWal::commit`].
#[derive(Debug)]
pub struct WalReplay {
    /// Replayed records: frozen logs in seal order, then the live log.
    pub records: Vec<StreamRecord>,
    /// Frozen `.sealing` files absorbed by the replay (deleted at commit).
    frozen: Vec<PathBuf>,
}

/// The write-ahead log of one partition (see the module docs for the file
/// lifecycle and the recovery protocol).
#[derive(Debug)]
pub struct PartitionWal {
    dir: PathBuf,
    partition: usize,
    live_path: PathBuf,
    writer: BufWriter<File>,
}

impl PartitionWal {
    /// **Phase 1 of recovery** — reads partition `partition`'s replayable
    /// records (frozen logs in seal order, then the live log) without
    /// deleting or truncating anything, so a failure anywhere in the replay
    /// leaves every log intact.  Stale `.tmp` staging files from a crashed
    /// recovery are discarded.
    pub fn scan(dir: &Path, partition: usize) -> Result<WalReplay> {
        fs::create_dir_all(dir).map_err(|e| io_err("creating the wal directory", e))?;
        let _ = fs::remove_file(dir.join(format!("wal-{partition}.log.tmp")));
        let mut records = Vec::new();

        // Frozen logs: wal-<p>.<seq>.sealing, replayed in ascending order.
        let prefix = format!("wal-{partition}.");
        let mut frozen: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| io_err("listing the wal directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing the wal directory", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            if let Some(seq) = rest
                .strip_suffix(".sealing")
                .and_then(|s| s.parse::<u64>().ok())
            {
                frozen.push((seq, entry.path()));
            }
        }
        frozen.sort();
        for (_, path) in &frozen {
            records.extend(Self::read_log(path)?);
        }
        let live = live_path(dir, partition);
        if live.exists() {
            records.extend(Self::read_live_log(&live)?);
        }
        Ok(WalReplay {
            records,
            frozen: frozen.into_iter().map(|(_, path)| path).collect(),
        })
    }

    /// Reads the live log tolerating a **torn final line**: appends are
    /// buffered, so a crash can leave the file ending mid-record.  If
    /// dropping exactly the last line makes the log parse, that line is an
    /// unacknowledged append and is discarded; a parse error anywhere else
    /// still aborts (the file is corrupt, not torn).  Frozen logs are
    /// always complete (rotation flushes first) and use the strict reader.
    fn read_live_log(path: &Path) -> Result<Vec<StreamRecord>> {
        let text = fs::read_to_string(path).map_err(|e| io_err("opening a log for replay", e))?;
        match read_stream(text.as_bytes()) {
            Ok(records) => Ok(records),
            Err(strict_err) => {
                let trimmed = text.trim_end();
                let head = match trimmed.rfind('\n') {
                    Some(pos) => &trimmed[..=pos],
                    None => "", // a single torn line: nothing survives
                };
                match read_stream(head.as_bytes()) {
                    Ok(records) => Ok(records),
                    Err(_) => Err(strict_err),
                }
            }
        }
    }

    /// **Phase 3 of recovery** — atomically replaces partition
    /// `partition`'s live log with exactly `live_records` (the replayed
    /// records now sitting in the memtable): writes them to a `.tmp`
    /// staging file, renames it over the live log, then deletes the frozen
    /// files the replay absorbed.  Returns the append handle for subsequent
    /// ingest.
    pub fn commit(
        dir: &Path,
        partition: usize,
        live_records: &[StreamRecord],
        replay: &WalReplay,
    ) -> Result<Self> {
        let live = live_path(dir, partition);
        let tmp = dir.join(format!("wal-{partition}.log.tmp"));
        {
            let mut staged = BufWriter::new(
                File::create(&tmp).map_err(|e| io_err("creating the staging log", e))?,
            );
            write_stream(live_records, &mut staged)?;
            staged
                .flush()
                .map_err(|e| io_err("flushing the staging log", e))?;
        }
        fs::rename(&tmp, &live).map_err(|e| io_err("publishing the recovered live log", e))?;
        for path in &replay.frozen {
            let _ = fs::remove_file(path);
        }
        let writer = BufWriter::new(
            OpenOptions::new()
                .append(true)
                .open(&live)
                .map_err(|e| io_err("opening the live log for append", e))?,
        );
        Ok(PartitionWal {
            dir: dir.to_path_buf(),
            partition,
            live_path: live,
            writer,
        })
    }

    /// Scans and immediately commits in one step — the non-recovery path
    /// for tests and tools that want the old "open and replay" behaviour.
    /// Returns the WAL handle plus the replayed records (now re-logged as
    /// the live log).
    pub fn open(dir: &Path, partition: usize) -> Result<(Self, Vec<StreamRecord>)> {
        let replay = Self::scan(dir, partition)?;
        let wal = Self::commit(dir, partition, &replay.records, &replay)?;
        Ok((wal, replay.records))
    }

    fn read_log(path: &Path) -> Result<Vec<StreamRecord>> {
        let file = File::open(path).map_err(|e| io_err("opening a log for replay", e))?;
        read_stream(BufReader::new(file))
    }

    /// Appends one routed record to the live log (buffered; see
    /// [`PartitionWal::sync`]).
    pub fn append(&mut self, record: &StreamRecord) -> Result<()> {
        write_stream(std::iter::once(record), &mut self.writer)
    }

    /// Flushes buffered appends to the operating system.
    pub fn sync(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| io_err("flushing the live log", e))
    }

    /// Freezes the live log for seal `seq`: flushes, renames it to the
    /// frozen `.sealing` name and starts a fresh live log.  Returns the
    /// frozen file's path — the caller deletes it (via
    /// [`PartitionWal::retire`]) once the sealed segment is installed.
    pub fn rotate(&mut self, seq: u64) -> Result<PathBuf> {
        self.sync()?;
        let frozen = self
            .dir
            .join(format!("wal-{}.{seq}.sealing", self.partition));
        fs::rename(&self.live_path, &frozen).map_err(|e| io_err("freezing the live log", e))?;
        match File::create(&self.live_path) {
            Ok(file) => {
                self.writer = BufWriter::new(file);
                Ok(frozen)
            }
            Err(e) => {
                // Undo the rename so `writer`'s fd and `live_path` stay
                // coherent: appends keep landing in the (restored) live log
                // and a later rotation can retry cleanly.
                let _ = fs::rename(&frozen, &self.live_path);
                Err(io_err("creating the live log", e))
            }
        }
    }

    /// Folds a frozen log's records back into the live log — the undo of
    /// [`PartitionWal::rotate`] when the seal it fed failed before
    /// installing a segment.  Appends (rather than renames) so records
    /// logged since the rotation are preserved; the memtable-side undo
    /// ([`Memtable::absorb_front`](crate::Memtable::absorb_front)) prepends
    /// instead, so after an error the live log and the memtable agree as
    /// multisets though not necessarily in order.
    pub fn reabsorb(&mut self, frozen: &Path) -> Result<()> {
        let records = Self::read_log(frozen)?;
        write_stream(&records, &mut self.writer)?;
        self.sync()?;
        fs::remove_file(frozen).map_err(|e| io_err("removing a reabsorbed frozen log", e))
    }

    /// Removes a frozen log whose records are now covered by an installed
    /// segment.  Missing files are ignored (idempotent).
    pub fn retire(frozen: &Path) {
        let _ = fs::remove_file(frozen);
    }
}

impl Drop for PartitionWal {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pds-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_rotate_and_replay_round_trip() {
        let dir = tmp_dir("round-trip");
        let (mut wal, replayed) = PartitionWal::open(&dir, 3).unwrap();
        assert!(replayed.is_empty());
        let records = vec![
            StreamRecord::Basic { item: 7, prob: 0.5 },
            StreamRecord::Alternatives(vec![(8, 0.25), (9, 0.5)]),
            StreamRecord::ValueDistribution {
                item: 7,
                entries: vec![(2.0, 0.5)],
            },
        ];
        for r in &records[..2] {
            wal.append(r).unwrap();
        }
        // Freeze the first two records, then log one more live record.
        let frozen = wal.rotate(0).unwrap();
        assert!(frozen.ends_with("wal-3.0.sealing"));
        wal.append(&records[2]).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Reopen: frozen log replays first, then the live log.
        let (_wal2, replayed) = PartitionWal::open(&dir, 3).unwrap();
        assert_eq!(replayed, records);
        // The old files were absorbed into the fresh live log: a third open
        // replays exactly the same records (no duplicates, no frozen files).
        drop(_wal2);
        let (_wal3, replayed) = PartitionWal::open(&dir, 3).unwrap();
        assert_eq!(replayed, records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_is_read_only_until_commit() {
        let dir = tmp_dir("scan-read-only");
        let (mut wal, _) = PartitionWal::open(&dir, 0).unwrap();
        wal.append(&StreamRecord::Basic { item: 1, prob: 0.5 })
            .unwrap();
        let frozen = wal.rotate(0).unwrap();
        wal.append(&StreamRecord::Basic {
            item: 2,
            prob: 0.25,
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Scanning twice returns the same records and leaves all files.
        let first = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(first.records.len(), 2);
        assert!(frozen.exists(), "scan must not delete frozen logs");
        let second = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(second.records, first.records);

        // Commit absorbs everything into the live log and drops the frozen
        // file.
        let _wal = PartitionWal::commit(&dir, 0, &second.records, &second).unwrap();
        assert!(!frozen.exists(), "commit retires absorbed frozen logs");
        let after = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(after.records, first.records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reabsorb_undoes_a_rotation_keeping_newer_appends() {
        let dir = tmp_dir("reabsorb");
        let (mut wal, _) = PartitionWal::open(&dir, 2).unwrap();
        wal.append(&StreamRecord::Basic {
            item: 5,
            prob: 0.75,
        })
        .unwrap();
        let frozen = wal.rotate(0).unwrap();
        // A record logged after the rotation must survive the undo.
        wal.append(&StreamRecord::Basic { item: 6, prob: 0.5 })
            .unwrap();
        wal.reabsorb(&frozen).unwrap();
        assert!(!frozen.exists());
        drop(wal);
        let (_w, replayed) = PartitionWal::open(&dir, 2).unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(replayed.contains(&StreamRecord::Basic {
            item: 5,
            prob: 0.75
        }));
        assert!(replayed.contains(&StreamRecord::Basic { item: 6, prob: 0.5 }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retire_removes_frozen_logs_and_is_idempotent() {
        let dir = tmp_dir("retire");
        let (mut wal, _) = PartitionWal::open(&dir, 0).unwrap();
        wal.append(&StreamRecord::Basic { item: 0, prob: 0.9 })
            .unwrap();
        let frozen = wal.rotate(5).unwrap();
        assert!(frozen.exists());
        PartitionWal::retire(&frozen);
        assert!(!frozen.exists());
        PartitionWal::retire(&frozen); // second call is a no-op
        drop(wal);
        let (_wal2, replayed) = PartitionWal::open(&dir, 0).unwrap();
        assert!(replayed.is_empty(), "retired records must not replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitions_do_not_see_each_other_s_logs() {
        let dir = tmp_dir("isolation");
        let (mut a, _) = PartitionWal::open(&dir, 0).unwrap();
        let (mut b, _) = PartitionWal::open(&dir, 1).unwrap();
        a.append(&StreamRecord::Basic { item: 1, prob: 0.5 })
            .unwrap();
        b.append(&StreamRecord::Basic {
            item: 9,
            prob: 0.25,
        })
        .unwrap();
        drop(a);
        drop(b);
        let (_a2, ra) = PartitionWal::open(&dir, 0).unwrap();
        let (_b2, rb) = PartitionWal::open(&dir, 1).unwrap();
        assert_eq!(ra, vec![StreamRecord::Basic { item: 1, prob: 0.5 }]);
        assert_eq!(
            rb,
            vec![StreamRecord::Basic {
                item: 9,
                prob: 0.25
            }]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_logs_surface_as_errors_without_destroying_files() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        // Corruption that is NOT a torn tail (a bad line followed by a good
        // one) must abort the scan.
        fs::write(dir.join("wal-2.log"), "b 0 not-a-number\nb 1 0.5\n").unwrap();
        assert!(PartitionWal::scan(&dir, 2).is_err());
        // The corrupt log is still there for inspection/repair.
        assert!(dir.join("wal-2.log").exists());
        fs::write(dir.join("wal-2.log"), "b 0 0.5\n").unwrap();
        let replay = PartitionWal::scan(&dir, 2).unwrap();
        assert_eq!(replay.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_lines_are_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        // A crash mid-append leaves a partial last line: the acknowledged
        // prefix replays, the torn tail is discarded.
        fs::write(dir.join("wal-0.log"), "b 0 0.5\nb 1 0.25\nx 2:0.1 3:").unwrap();
        let replay = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(
            replay.records,
            vec![
                StreamRecord::Basic { item: 0, prob: 0.5 },
                StreamRecord::Basic {
                    item: 1,
                    prob: 0.25
                },
            ]
        );
        // A log that is one torn line replays as empty.
        fs::write(dir.join("wal-1.log"), "b 7 0.").unwrap();
        let replay = PartitionWal::scan(&dir, 1).unwrap();
        assert!(replay.records.is_empty());
        // Frozen logs stay strict: rotation flushed them, so a bad line is
        // corruption, not a torn tail.
        fs::write(dir.join("wal-3.0.sealing"), "b 9 0.").unwrap();
        assert!(PartitionWal::scan(&dir, 3).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
