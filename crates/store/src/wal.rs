//! Per-partition write-ahead logs for live memtable contents, with
//! CRC-framed records and group commit.
//!
//! A store's sealed segments are durable through their install-time blobs
//! and the [`Manifest`](crate::manifest::Manifest); the records still
//! buffered in memtables are covered here.  A [`PartitionWal`] logs every
//! record routed to a partition **before** it enters the memtable, so a
//! crashed process can reopen the store and re-ingest exactly the records
//! that were live.
//!
//! ## Record framing
//!
//! Every appended record is one **CRC-framed line**:
//!
//! ```text
//! r <len> <crc32-hex8> <payload>
//! ```
//!
//! where `<payload>` is the record in the `pds_core::io` stream line format
//! (`b <item> <prob>` …), `<len>` is the payload's byte length and the
//! checksum is `pds_core::binio::crc32` over the payload bytes.  The frame
//! exists because a torn buffered write can truncate a record into one that
//! *still parses* — `b 3 0.25` torn to `b 3 0.2` replays a silently wrong
//! probability.  With the frame, truncation breaks the declared length and
//! corruption breaks the checksum, so replay either gets the exact bytes
//! that were acknowledged or refuses.
//!
//! **Torn-final-frame tolerance.**  On a *live* log the final frame may be
//! incomplete (missing fields or a payload shorter than its declared
//! length): that is an unacknowledged append torn by the crash and is
//! dropped.  A *complete* final frame whose checksum mismatches, or any
//! broken frame that is not the last, is corruption and aborts the scan
//! with every file intact.  Frozen logs were flushed before their rename,
//! so they are read strictly (no tolerance).
//!
//! ## File lifecycle
//!
//! Partition `p` owns up to three kinds of files inside the WAL directory:
//!
//! * `wal-<p>.log` — the **live log**, mirroring the current memtable.
//! * `wal-<p>.<seq>.sealing` — a **frozen log**: when the memtable freezes
//!   for sealing, the live log is atomically renamed to carry the seal
//!   sequence number and a fresh live log starts.  The frozen file is
//!   deleted only after the sealed segment's blob **and** manifest entry
//!   are on disk, so a crash anywhere during a seal replays the frozen
//!   records (or finds them already covered by the manifest and skips
//!   them — never both, never neither).
//! * `wal-<p>.log.tmp` — a staging file used while **committing** a
//!   recovery; a leftover `.tmp` from a crashed recovery is discarded on
//!   the next scan.
//!
//! ## Recovery protocol (scan → re-ingest → commit)
//!
//! 1. [`PartitionWal::scan_skipping`] **reads** the frozen logs (in seal
//!    order, skipping sequences the manifest already covers) and the live
//!    log without deleting or truncating anything, so a parse error in any
//!    partition — or a crash at any point before commit — leaves every log
//!    intact for the next attempt.
//! 2. The store re-ingests the replayed records into its memtables (with
//!    auto-sealing suppressed, so the replayed set stays exactly the live
//!    set).
//! 3. [`PartitionWal::commit`] writes the replayed records to
//!    `wal-<p>.log.tmp`, atomically renames it over the live log, deletes
//!    the absorbed (and the manifest-covered) frozen logs, and returns the
//!    append handle.
//!
//! A crash before the rename replays identically next time (exactly-once
//! for live records); frozen records are exactly-once too, because the
//! manifest entry — not the frozen-file deletion — is the seal's commit
//! point.
//!
//! ## Durability contract (group commit + fsync tier)
//!
//! Appends are buffered.  The store issues **one flush per ingest call**:
//! per-record [`SynopsisStore::ingest`](crate::SynopsisStore::ingest)
//! flushes its one shard, and the batch paths group-commit — every
//! shard's sub-batch is appended lock-parallel without flushing, then each
//! touched shard is flushed exactly once per batch
//! ([`PartitionWal::commit_group`]).  The default tier stops at
//! `BufWriter::flush` (surviving process crashes); the opt-in
//! [`WalSync::Fsync`](crate::WalSync) tier adds `File::sync_data` at the
//! same group-commit boundaries (surviving power loss), amortised across
//! the whole batch instead of taxing every record.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use pds_core::binio::crc32;
use pds_core::error::{PdsError, Result};
use pds_core::io::{read_stream, write_stream};
use pds_core::stream::StreamRecord;
use pds_core::vfs;

use crate::telemetry::IoPolicy;

fn io_err(context: &str, e: std::io::Error) -> PdsError {
    PdsError::InvalidParameter {
        message: format!("wal: {context}: {e}"),
    }
}

fn live_path(dir: &Path, partition: usize) -> PathBuf {
    dir.join(format!("wal-{partition}.log"))
}

/// Serialises one record as a CRC-framed WAL line (including the trailing
/// newline) — the exact bytes [`PartitionWal::append`] writes.  Public so
/// durability tests can craft valid (and then deliberately broken) logs.
pub fn frame_record(record: &StreamRecord) -> Result<String> {
    let mut payload = Vec::new();
    write_stream(std::iter::once(record), &mut payload)?;
    // write_stream terminates the line; the payload is the line body.
    while payload.last() == Some(&b'\n') || payload.last() == Some(&b'\r') {
        payload.pop();
    }
    let payload = String::from_utf8(payload).map_err(|_| PdsError::InvalidParameter {
        message: "wal: serialised stream line is not valid utf-8".into(),
    })?;
    Ok(format!(
        "r {} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    ))
}

/// How one framed line failed to parse — drives the torn-tail tolerance.
enum FrameError {
    /// Structurally short: missing fields or payload shorter than its
    /// declared length.  On the final line of a live log this is a torn
    /// buffered append and is dropped.
    Truncated,
    /// A complete frame that fails its checksum, declares the wrong length
    /// for a longer payload, or carries an unparseable record: corruption,
    /// never tolerated.
    Corrupt(String),
}

/// Parses one framed line into its record.
fn parse_frame(line: &str) -> std::result::Result<StreamRecord, FrameError> {
    let corrupt = |what: &str| FrameError::Corrupt(format!("{what}: {line:?}"));
    let Some(rest) = line.strip_prefix("r ") else {
        if line.len() < 2 && "r ".starts_with(line) {
            return Err(FrameError::Truncated);
        }
        // A line that parses as a bare stream record is a log written by
        // the pre-frame WAL format — name it, so an upgrade across the
        // framing change reads as "migrate this log", not as corruption.
        if read_stream(line.as_bytes()).is_ok() {
            return Err(FrameError::Corrupt(format!(
                "unframed record from a pre-CRC-format wal log (re-ingest or \
                 remove the old log to migrate): {line:?}"
            )));
        }
        return Err(corrupt("not a framed wal record"));
    };
    let Some((len_str, rest)) = rest.split_once(' ') else {
        return Err(FrameError::Truncated);
    };
    let Ok(len) = len_str.parse::<usize>() else {
        return Err(corrupt("bad frame length"));
    };
    let Some((crc_str, payload)) = rest.split_once(' ') else {
        return Err(FrameError::Truncated);
    };
    if crc_str.len() != 8 {
        return Err(if payload.is_empty() && crc_str.len() < 8 {
            FrameError::Truncated
        } else {
            corrupt("bad frame checksum field")
        });
    }
    let Ok(stored) = u32::from_str_radix(crc_str, 16) else {
        return Err(corrupt("bad frame checksum field"));
    };
    if payload.len() < len {
        // The payload was cut short: a torn write, detectable even when the
        // truncated text would still parse as a (wrong) record.
        return Err(FrameError::Truncated);
    }
    if payload.len() > len {
        return Err(corrupt("frame payload longer than its declared length"));
    }
    if crc32(payload.as_bytes()) != stored {
        return Err(corrupt("frame checksum mismatch"));
    }
    let mut records =
        read_stream(payload.as_bytes()).map_err(|e| FrameError::Corrupt(e.to_string()))?;
    match (records.pop(), records.pop()) {
        (Some(record), None) => Ok(record),
        _ => Err(corrupt("frame payload is not exactly one record")),
    }
}

/// Outcome of parsing one framed WAL line — the decoder surface the fuzz
/// harness (`pds-analyze`) drives directly.  Mirrors the internal framing
/// result: a valid record, a structurally short (torn) frame, or
/// corruption with its reason.
#[derive(Debug)]
pub enum FrameOutcome {
    /// The line framed a single valid record.
    Record(StreamRecord),
    /// The line is structurally short — a torn buffered append.  Tolerated
    /// only on the final line of a *live* log.
    Truncated,
    /// A complete frame failing its checksum, length, or record parse:
    /// corruption, never tolerated.
    Corrupt(String),
}

/// Parses one framed WAL line without any tail tolerance, classifying the
/// result.  This is [`frame_record`]'s decoding counterpart; the fuzzer
/// asserts that no mutated line ever panics here and that a line whose CRC
/// was corrupted never classifies as [`FrameOutcome::Record`].
pub fn parse_frame_line(line: &str) -> FrameOutcome {
    match parse_frame(line) {
        Ok(record) => FrameOutcome::Record(record),
        Err(FrameError::Truncated) => FrameOutcome::Truncated,
        Err(FrameError::Corrupt(why)) => FrameOutcome::Corrupt(why),
    }
}

/// Reads a framed log.  `tolerate_torn_tail` enables the live-log lenience
/// for the final line; frozen logs pass `false`.
fn read_framed_log(path: &Path, tolerate_torn_tail: bool) -> Result<Vec<StreamRecord>> {
    let text = vfs::read_to_string("recovery-read", path)
        .map_err(|e| io_err("opening a log for replay", e))?;
    let lines: Vec<&str> = text
        .split('\n')
        .map(|l| l.trim_end_matches('\r'))
        .filter(|l| !l.is_empty())
        .collect();
    let mut records = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse_frame(line) {
            Ok(record) => records.push(record),
            Err(FrameError::Truncated) if tolerate_torn_tail && i + 1 == lines.len() => {
                // A torn buffered append: the record was never acknowledged.
                break;
            }
            Err(FrameError::Truncated) => {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "wal: {}: truncated frame before the end of the log (line {}): {line:?}",
                        path.display(),
                        i + 1
                    ),
                });
            }
            Err(FrameError::Corrupt(why)) => {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "wal: {}: corrupt frame (line {}): {why}",
                        path.display(),
                        i + 1
                    ),
                });
            }
        }
    }
    Ok(records)
}

/// The outcome of scanning a partition's logs: every replayable record (in
/// original arrival order) plus the frozen files that must be deleted once
/// the records are safely re-logged by [`PartitionWal::commit`].
#[derive(Debug)]
pub struct WalReplay {
    /// Replayed records: uncovered frozen logs in seal order, then the live
    /// log.
    pub records: Vec<StreamRecord>,
    /// Frozen `.sealing` files absorbed by the replay — or already covered
    /// by the manifest — and deleted at commit.
    frozen: Vec<PathBuf>,
}

/// The write-ahead log of one partition (see the module docs for the file
/// lifecycle, the frame format and the recovery protocol).
#[derive(Debug)]
pub struct PartitionWal {
    dir: PathBuf,
    partition: usize,
    live_path: PathBuf,
    writer: BufWriter<File>,
    /// Appends since the last [`PartitionWal::commit_group`] — lets the
    /// group-commit pass skip shards that saw no writes this batch.
    dirty: bool,
    /// Retry/backoff policy plus the telemetry hook for durable-path I/O
    /// (attached by the store; defaults to no retries, no telemetry).
    policy: IoPolicy,
}

/// Which durability tier WAL commits reach (configured per store through
/// [`StoreConfig::wal_sync`](crate::StoreConfig::wal_sync)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// Flush buffered appends to the operating system at every commit
    /// boundary: survives process crashes (the tier the crash matrix
    /// pins).  The default.
    #[default]
    Flush,
    /// Additionally `File::sync_data` at every commit boundary: survives
    /// power loss, paid once per group commit rather than per record.
    Fsync,
}

impl PartitionWal {
    /// **Phase 1 of recovery** — reads the partition's replayable records
    /// (frozen logs in seal order, then the live log) without deleting or
    /// truncating anything, so a failure anywhere in the replay leaves
    /// every log intact.  Stale `.tmp` staging files from a crashed
    /// recovery are discarded.
    ///
    /// Frozen logs whose seal sequence appears in `covered` are **not**
    /// replayed — their records are already carried by a manifest-installed
    /// segment (the manifest entry is the seal's commit point) — but they
    /// are still queued for deletion at commit.
    pub fn scan_skipping(
        dir: &Path,
        partition: usize,
        covered: &BTreeSet<u64>,
    ) -> Result<WalReplay> {
        Self::scan_skipping_with(dir, partition, covered, &IoPolicy::default())
    }

    /// [`PartitionWal::scan_skipping`] with the store's I/O policy
    /// attached, so stale-staging cleanup failures are counted instead of
    /// silently dropped.
    pub(crate) fn scan_skipping_with(
        dir: &Path,
        partition: usize,
        covered: &BTreeSet<u64>,
        policy: &IoPolicy,
    ) -> Result<WalReplay> {
        vfs::create_dir_all("recovery-read", dir)
            .map_err(|e| io_err("creating the wal directory", e))?;
        let stale = dir.join(format!("wal-{partition}.log.tmp"));
        policy.cleanup("cleanup", vfs::remove_file("cleanup", &stale));
        let mut records = Vec::new();

        // Frozen logs: wal-<p>.<seq>.sealing, replayed in ascending order.
        let prefix = format!("wal-{partition}.");
        let mut frozen: Vec<(u64, PathBuf)> = Vec::new();
        let entries = vfs::read_dir("recovery-read", dir)
            .map_err(|e| io_err("listing the wal directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing the wal directory", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            if let Some(seq) = rest
                .strip_suffix(".sealing")
                .and_then(|s| s.parse::<u64>().ok())
            {
                frozen.push((seq, entry.path()));
            }
        }
        frozen.sort();
        for (seq, path) in &frozen {
            if covered.contains(seq) {
                continue;
            }
            records.extend(read_framed_log(path, false)?);
        }
        let live = live_path(dir, partition);
        if live.exists() {
            records.extend(read_framed_log(&live, true)?);
        }
        Ok(WalReplay {
            records,
            frozen: frozen.into_iter().map(|(_, path)| path).collect(),
        })
    }

    /// [`PartitionWal::scan_skipping`] with nothing covered — every frozen
    /// log replays.
    pub fn scan(dir: &Path, partition: usize) -> Result<WalReplay> {
        Self::scan_skipping(dir, partition, &BTreeSet::new())
    }

    /// **Phase 3 of recovery** — atomically replaces the partition's live
    /// log with exactly `live_records` (the replayed records now sitting in
    /// the memtable): writes them to a `.tmp` staging file, renames it over
    /// the live log, then deletes the frozen files the replay absorbed.
    /// Returns the append handle for subsequent ingest.
    pub fn commit(
        dir: &Path,
        partition: usize,
        live_records: &[StreamRecord],
        replay: &WalReplay,
    ) -> Result<Self> {
        Self::commit_synced(dir, partition, live_records, replay, WalSync::Flush)
    }

    /// [`PartitionWal::commit`] honoring a durability tier: on
    /// [`WalSync::Fsync`] the staged log is `sync_data`'d before the rename
    /// and the directory is fsynced after it, **before** the absorbed
    /// frozen logs are deleted — a power loss can then never persist the
    /// deletions without the recovered live log they were absorbed into.
    pub fn commit_synced(
        dir: &Path,
        partition: usize,
        live_records: &[StreamRecord],
        replay: &WalReplay,
        sync: WalSync,
    ) -> Result<Self> {
        Self::commit_synced_with(
            dir,
            partition,
            live_records,
            replay,
            sync,
            IoPolicy::default(),
        )
    }

    /// [`PartitionWal::commit_synced`] with the store's I/O policy: the
    /// atomic rename retries on transient errors, absorbed-frozen-log
    /// cleanup failures are counted, and the returned handle keeps the
    /// policy for its append/commit lifetime.
    pub(crate) fn commit_synced_with(
        dir: &Path,
        partition: usize,
        live_records: &[StreamRecord],
        replay: &WalReplay,
        sync: WalSync,
        policy: IoPolicy,
    ) -> Result<Self> {
        let live = live_path(dir, partition);
        let tmp = dir.join(format!("wal-{partition}.log.tmp"));
        {
            let mut staged = BufWriter::new(
                vfs::create("recovery-commit", &tmp)
                    .map_err(|e| io_err("creating the staging log", e))?,
            );
            for record in live_records {
                vfs::write_all(
                    "recovery-commit",
                    &tmp,
                    &mut staged,
                    frame_record(record)?.as_bytes(),
                )
                .map_err(|e| io_err("writing the staging log", e))?;
            }
            vfs::flush("recovery-commit", &tmp, &mut staged)
                .map_err(|e| io_err("flushing the staging log", e))?;
            if sync == WalSync::Fsync {
                vfs::sync_data("recovery-commit", &tmp, staged.get_ref())
                    .map_err(|e| io_err("fsyncing the staging log", e))?;
            }
        }
        crate::crashpoint::reached("mid-wal-recovery-commit");
        policy
            .run("recovery-commit", || {
                vfs::rename("recovery-commit", &tmp, &live)
            })
            .map_err(|e| io_err("publishing the recovered live log", e))?;
        if sync == WalSync::Fsync {
            vfs::sync_dir("recovery-commit", dir)
                .map_err(|e| io_err("fsyncing the wal directory", e))?;
        }
        for path in &replay.frozen {
            policy.cleanup("cleanup", vfs::remove_file("cleanup", path));
        }
        let writer = BufWriter::new(
            vfs::open_append("recovery-commit", &live, false)
                .map_err(|e| io_err("opening the live log for append", e))?,
        );
        Ok(PartitionWal {
            dir: dir.to_path_buf(),
            partition,
            live_path: live,
            writer,
            dirty: false,
            policy,
        })
    }

    /// Scans and immediately commits in one step — the non-recovery path
    /// for tests and tools that want the old "open and replay" behaviour.
    /// Returns the WAL handle plus the replayed records (now re-logged as
    /// the live log).
    pub fn open(dir: &Path, partition: usize) -> Result<(Self, Vec<StreamRecord>)> {
        let replay = Self::scan(dir, partition)?;
        let wal = Self::commit(dir, partition, &replay.records, &replay)?;
        Ok((wal, replay.records))
    }

    /// Appends one routed record as a CRC-framed line (buffered; see
    /// [`PartitionWal::sync`] / [`PartitionWal::commit_group`]).
    ///
    /// Append errors are **not retried**: a partially buffered frame
    /// cannot be rewound, so a retry would stack a second copy behind torn
    /// bytes.  The error surfaces (and is counted); the store degrades,
    /// and the torn tail — if the buffer ever reaches the disk — is
    /// exactly the torn-final-frame case replay already tolerates.
    pub fn append(&mut self, record: &StreamRecord) -> Result<()> {
        let frame = frame_record(record)?;
        let result = vfs::write_all(
            "wal-append",
            &self.live_path,
            &mut self.writer,
            frame.as_bytes(),
        );
        if let Err(e) = &result {
            self.policy.observe_error("wal-append", e);
        }
        result.map_err(|e| io_err("appending to the live log", e))?;
        self.dirty = true;
        Ok(())
    }

    /// Flushes buffered appends to the operating system (with the policy's
    /// bounded retry: a flush retry re-drains whatever the first attempt
    /// left buffered, so the operation is idempotent).
    pub fn sync(&mut self) -> Result<()> {
        let PartitionWal {
            live_path,
            writer,
            policy,
            ..
        } = self;
        policy
            .run("wal-commit", || vfs::flush("wal-commit", live_path, writer))
            .map_err(|e| io_err("flushing the live log", e))
    }

    /// The group-commit boundary: flushes buffered appends and, on the
    /// [`WalSync::Fsync`] tier, additionally syncs file data to the device.
    /// A no-op when nothing was appended since the last commit, so the
    /// batch paths can sweep every touched shard cheaply.  Both steps are
    /// idempotent, so transient errors get the policy's bounded retry.
    pub fn commit_group(&mut self, sync: WalSync) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.sync()?;
        if sync == WalSync::Fsync {
            let PartitionWal {
                live_path,
                writer,
                policy,
                ..
            } = self;
            policy
                .run("wal-commit", || {
                    vfs::sync_data("wal-commit", live_path, writer.get_ref())
                })
                .map_err(|e| io_err("fsyncing the live log", e))?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Freezes the live log for seal `seq`: flushes, renames it to the
    /// frozen `.sealing` name and starts a fresh live log.  Returns the
    /// frozen file's path — the caller deletes it (via
    /// [`PartitionWal::retire`]) once the sealed segment is installed.
    pub fn rotate(&mut self, seq: u64) -> Result<PathBuf> {
        self.sync()?;
        let frozen = self
            .dir
            .join(format!("wal-{}.{seq}.sealing", self.partition));
        self.policy
            .run("wal-rotate", || {
                vfs::rename("wal-rotate", &self.live_path, &frozen)
            })
            .map_err(|e| io_err("freezing the live log", e))?;
        match self
            .policy
            .run("wal-rotate", || vfs::create("wal-rotate", &self.live_path))
        {
            Ok(file) => {
                self.writer = BufWriter::new(file);
                self.dirty = false;
                Ok(frozen)
            }
            Err(e) => {
                // Undo the rename so `writer`'s fd and `live_path` stay
                // coherent: appends keep landing in the (restored) live log
                // and a later rotation can retry cleanly.  A failed undo is
                // counted, not dropped — the caller degrades on the error.
                self.policy.cleanup(
                    "wal-rotate",
                    vfs::rename("wal-rotate", &frozen, &self.live_path),
                );
                Err(io_err("creating the live log", e))
            }
        }
    }

    /// Folds a frozen log's records back into the live log — the undo of
    /// [`PartitionWal::rotate`] when the seal it fed failed before
    /// installing a segment.  Appends (rather than renames) so records
    /// logged since the rotation are preserved; the memtable-side undo
    /// ([`Memtable::absorb_front`](crate::Memtable::absorb_front)) prepends
    /// instead, so after an error the live log and the memtable agree as
    /// multisets though not necessarily in order.
    pub fn reabsorb(&mut self, frozen: &Path) -> Result<()> {
        let records = read_framed_log(frozen, false)?;
        for record in &records {
            self.append(record)?;
        }
        self.sync()?;
        vfs::remove_file("cleanup", frozen)
            .map_err(|e| io_err("removing a reabsorbed frozen log", e))
    }

    /// Removes a frozen log whose records are now covered by an installed
    /// segment.  Missing files are ignored (idempotent); other failures
    /// surface so the caller can count them as cleanup errors.
    pub fn retire(frozen: &Path) -> std::io::Result<()> {
        match vfs::remove_file("wal-retire", frozen) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

impl Drop for PartitionWal {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pds-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn basic(item: usize, prob: f64) -> StreamRecord {
        StreamRecord::Basic { item, prob }
    }

    #[test]
    fn append_rotate_and_replay_round_trip() {
        let dir = tmp_dir("round-trip");
        let (mut wal, replayed) = PartitionWal::open(&dir, 3).unwrap();
        assert!(replayed.is_empty());
        let records = vec![
            StreamRecord::Basic { item: 7, prob: 0.5 },
            StreamRecord::Alternatives(vec![(8, 0.25), (9, 0.5)]),
            StreamRecord::ValueDistribution {
                item: 7,
                entries: vec![(2.0, 0.5)],
            },
        ];
        for r in &records[..2] {
            wal.append(r).unwrap();
        }
        // Freeze the first two records, then log one more live record.
        let frozen = wal.rotate(0).unwrap();
        assert!(frozen.ends_with("wal-3.0.sealing"));
        wal.append(&records[2]).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Reopen: frozen log replays first, then the live log.
        let (_wal2, replayed) = PartitionWal::open(&dir, 3).unwrap();
        assert_eq!(replayed, records);
        // The old files were absorbed into the fresh live log: a third open
        // replays exactly the same records (no duplicates, no frozen files).
        drop(_wal2);
        let (_wal3, replayed) = PartitionWal::open(&dir, 3).unwrap();
        assert_eq!(replayed, records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_is_read_only_until_commit() {
        let dir = tmp_dir("scan-read-only");
        let (mut wal, _) = PartitionWal::open(&dir, 0).unwrap();
        wal.append(&basic(1, 0.5)).unwrap();
        let frozen = wal.rotate(0).unwrap();
        wal.append(&basic(2, 0.25)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Scanning twice returns the same records and leaves all files.
        let first = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(first.records.len(), 2);
        assert!(frozen.exists(), "scan must not delete frozen logs");
        let second = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(second.records, first.records);

        // Commit absorbs everything into the live log and drops the frozen
        // file.
        let _wal = PartitionWal::commit(&dir, 0, &second.records, &second).unwrap();
        assert!(!frozen.exists(), "commit retires absorbed frozen logs");
        let after = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(after.records, first.records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_skipping_ignores_covered_frozen_logs_but_retires_them() {
        let dir = tmp_dir("scan-skipping");
        let (mut wal, _) = PartitionWal::open(&dir, 1).unwrap();
        wal.append(&basic(1, 0.5)).unwrap();
        let frozen0 = wal.rotate(0).unwrap();
        wal.append(&basic(2, 0.25)).unwrap();
        let frozen1 = wal.rotate(1).unwrap();
        wal.append(&basic(3, 0.125)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Seal 0's records are covered by an installed segment; only seal
        // 1's frozen records and the live tail replay.
        let covered: BTreeSet<u64> = [0u64].into_iter().collect();
        let replay = PartitionWal::scan_skipping(&dir, 1, &covered).unwrap();
        assert_eq!(replay.records, vec![basic(2, 0.25), basic(3, 0.125)]);
        // Commit still deletes the covered frozen file (its records live in
        // the manifest-installed segment now).
        let _wal = PartitionWal::commit(&dir, 1, &replay.records, &replay).unwrap();
        assert!(!frozen0.exists());
        assert!(!frozen1.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reabsorb_undoes_a_rotation_keeping_newer_appends() {
        let dir = tmp_dir("reabsorb");
        let (mut wal, _) = PartitionWal::open(&dir, 2).unwrap();
        wal.append(&basic(5, 0.75)).unwrap();
        let frozen = wal.rotate(0).unwrap();
        // A record logged after the rotation must survive the undo.
        wal.append(&basic(6, 0.5)).unwrap();
        wal.reabsorb(&frozen).unwrap();
        assert!(!frozen.exists());
        drop(wal);
        let (_w, replayed) = PartitionWal::open(&dir, 2).unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(replayed.contains(&basic(5, 0.75)));
        assert!(replayed.contains(&basic(6, 0.5)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retire_removes_frozen_logs_and_is_idempotent() {
        let dir = tmp_dir("retire");
        let (mut wal, _) = PartitionWal::open(&dir, 0).unwrap();
        wal.append(&basic(0, 0.9)).unwrap();
        let frozen = wal.rotate(5).unwrap();
        assert!(frozen.exists());
        PartitionWal::retire(&frozen).unwrap();
        assert!(!frozen.exists());
        PartitionWal::retire(&frozen).unwrap(); // second call is a no-op
        drop(wal);
        let (_wal2, replayed) = PartitionWal::open(&dir, 0).unwrap();
        assert!(replayed.is_empty(), "retired records must not replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitions_do_not_see_each_other_s_logs() {
        let dir = tmp_dir("isolation");
        let (mut a, _) = PartitionWal::open(&dir, 0).unwrap();
        let (mut b, _) = PartitionWal::open(&dir, 1).unwrap();
        a.append(&basic(1, 0.5)).unwrap();
        b.append(&basic(9, 0.25)).unwrap();
        drop(a);
        drop(b);
        let (_a2, ra) = PartitionWal::open(&dir, 0).unwrap();
        let (_b2, rb) = PartitionWal::open(&dir, 1).unwrap();
        assert_eq!(ra, vec![basic(1, 0.5)]);
        assert_eq!(rb, vec![basic(9, 0.25)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frames_surface_as_errors_without_destroying_files() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        // A frame whose payload is garbage (valid CRC over an unparseable
        // record) must abort the scan.
        let payload = "b 0 not-a-number";
        let bad = format!(
            "r {} {:08x} {payload}\n",
            payload.len(),
            crc32(payload.as_bytes())
        );
        fs::write(
            dir.join("wal-2.log"),
            format!("{bad}{}", frame_record(&basic(1, 0.5)).unwrap()),
        )
        .unwrap();
        assert!(PartitionWal::scan(&dir, 2).is_err());
        // The corrupt log is still there for inspection/repair.
        assert!(dir.join("wal-2.log").exists());
        fs::write(dir.join("wal-2.log"), frame_record(&basic(0, 0.5)).unwrap()).unwrap();
        let replay = PartitionWal::scan(&dir, 2).unwrap();
        assert_eq!(replay.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_frames_are_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        let good: String = [basic(0, 0.5), basic(1, 0.25)]
            .iter()
            .map(|r| frame_record(r).unwrap())
            .collect();
        // A crash mid-append leaves a partial last line: the acknowledged
        // prefix replays, the torn tail is discarded.
        let torn = frame_record(&StreamRecord::Alternatives(vec![(2, 0.1), (3, 0.5)])).unwrap();
        let torn = &torn[..torn.len() - 6]; // cut mid-payload
        fs::write(dir.join("wal-0.log"), format!("{good}{torn}")).unwrap();
        let replay = PartitionWal::scan(&dir, 0).unwrap();
        assert_eq!(replay.records, vec![basic(0, 0.5), basic(1, 0.25)]);
        // A log that is one torn line replays as empty.
        let lone = frame_record(&basic(7, 0.25)).unwrap();
        fs::write(dir.join("wal-1.log"), &lone[..lone.len() - 2]).unwrap();
        let replay = PartitionWal::scan(&dir, 1).unwrap();
        assert!(replay.records.is_empty());
        // Frozen logs stay strict: rotation flushed them, so a short frame
        // is corruption there, not a torn tail.
        fs::write(dir.join("wal-3.0.sealing"), &lone[..lone.len() - 2]).unwrap();
        assert!(PartitionWal::scan(&dir, 3).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_but_parseable_truncation_is_detected() {
        let dir = tmp_dir("torn-parseable");
        fs::create_dir_all(&dir).unwrap();
        // `b 3 0.25` torn to `b 3 0.2` still parses as a record — the exact
        // silent-wrong-probability hazard the frame exists to stop.  The
        // declared length no longer matches, so the tail is dropped (live
        // log), never replayed as 0.2.
        let full = frame_record(&basic(3, 0.25)).unwrap();
        let torn = &full[..full.len() - 2]; // "...b 3 0.2" without newline
        fs::write(dir.join("wal-0.log"), torn).unwrap();
        let replay = PartitionWal::scan(&dir, 0).unwrap();
        assert!(
            replay.records.is_empty(),
            "torn probability must not replay"
        );

        // The same truncation mid-file (with a later record) is corruption.
        let next = frame_record(&basic(4, 0.5)).unwrap();
        fs::write(dir.join("wal-1.log"), format!("{torn}\n{next}")).unwrap();
        assert!(PartitionWal::scan(&dir, 1).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_frames_are_rejected() {
        let dir = tmp_dir("bit-flip");
        fs::create_dir_all(&dir).unwrap();
        let line = frame_record(&basic(3, 0.25)).unwrap();
        // Flip one character of the payload (probability digit): the CRC
        // catches it even though the line still parses structurally.
        let flipped = line.replace("0.25", "0.26");
        assert_ne!(flipped, line);
        fs::write(dir.join("wal-0.log"), &flipped).unwrap();
        assert!(PartitionWal::scan(&dir, 0).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_flushes_once_and_fsync_tier_syncs() {
        let dir = tmp_dir("group-commit");
        let (mut wal, _) = PartitionWal::open(&dir, 0).unwrap();
        for i in 0..16 {
            wal.append(&basic(i, 0.5)).unwrap();
        }
        wal.commit_group(WalSync::Fsync).unwrap();
        // Nothing new: the second commit is a no-op (dirty flag cleared).
        wal.commit_group(WalSync::Flush).unwrap();
        drop(wal);
        let (_w, replayed) = PartitionWal::open(&dir, 0).unwrap();
        assert_eq!(replayed.len(), 16);
        let _ = fs::remove_dir_all(&dir);
    }
}
