//! The partitioned synopsis store: concurrent sharded routing, sealing
//! (inline or on background workers), compaction, queries and whole-store
//! persistence.
//!
//! ## Concurrency model
//!
//! Every partition lives behind its own [`RwLock`] (a *shard*): ingest
//! write-locks exactly the shard owning a record, queries read-lock only the
//! shards overlapping their range, and independent partitions never contend.
//! All mutating operations take `&self`, so one store can be shared across
//! ingest threads (`Arc<SynopsisStore>` or scoped borrows) without external
//! locking.  Batch ingest ([`SynopsisStore::ingest_batch`]) routes records
//! to shards **lock-free** — one pass over the batch groups records
//! per-partition in arrival order — then inserts each partition's sub-batch
//! on the scoped thread pool (`pds_core::pool`), taking each shard lock once
//! per batch.
//!
//! Sealing freezes the memtable under the shard lock (an `O(1)` swap and,
//! with a WAL, one file rename) and builds the segment *outside* the ingest
//! path: inline on the calling thread by default, or on the store's
//! background workers when [`SynopsisStore::with_background_sealing`] is
//! enabled, so ingest, sealing and serving overlap.  Per-partition seal
//! **sequence numbers** keep segment order deterministic regardless of which
//! worker finishes first — the same record stream produces byte-identical
//! sealed segments at every thread count, a property the
//! `store_concurrency` suite pins.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use pds_core::binio::{ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};
use pds_core::metrics::ErrorMetric;
use pds_core::model::ValuePdfModel;
use pds_core::pool;
use pds_core::stream::StreamRecord;
use pds_core::telemetry::Stopwatch;
use pds_core::vfs;
use pds_histogram::merge::{optimal_piecewise_histogram, sum_pieces, Piece};
use pds_histogram::Histogram;
use pds_wavelet::build_sse_wavelet;
use serde::{Deserialize, Serialize};

use crate::blob::{self, BlobFooter, BlobMeta, FOOTER_LEN, HEADER_LEN};
use crate::compaction::CompactionPolicy;
use crate::crashpoint;
use crate::manifest::{segment_blob_name, Manifest};
use crate::memtable::Memtable;
use crate::segment::{Segment, SegmentSynopsis, SynopsisKind};
use crate::telemetry::{IoPolicy, QueryOp, StoreTelemetry};
use crate::wal::{PartitionWal, WalSync};

/// One x-tuple's alternatives grouped by owning partition.
type SplitAlternatives = BTreeMap<usize, Vec<(usize, f64)>>;

/// A partition of the item domain `[0, n)` into contiguous ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Ascending boundary positions: partition `i` covers
    /// `[bounds[i], bounds[i+1])`.
    bounds: Vec<usize>,
}

impl PartitionSpec {
    /// Builds a spec from explicit boundaries (`bounds[0] == 0`, strictly
    /// ascending, last entry is the domain size).
    pub fn from_bounds(bounds: Vec<usize>) -> Result<Self> {
        if bounds.len() < 2 || bounds[0] != 0 {
            return Err(PdsError::InvalidParameter {
                message: "partition bounds must start at 0 and name at least one range".into(),
            });
        }
        if bounds.windows(2).any(|w| w[1] <= w[0]) {
            return Err(PdsError::InvalidParameter {
                message: "partition bounds must be strictly ascending".into(),
            });
        }
        Ok(PartitionSpec { bounds })
    }

    /// Splits `[0, n)` into `parts` near-equal contiguous ranges.
    pub fn uniform(n: usize, parts: usize) -> Result<Self> {
        if parts == 0 || n < parts {
            return Err(PdsError::InvalidParameter {
                message: format!("cannot split a domain of {n} items into {parts} partitions"),
            });
        }
        let mut bounds = Vec::with_capacity(parts + 1);
        for i in 0..=parts {
            bounds.push(i * n / parts);
        }
        PartitionSpec::from_bounds(bounds)
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        // `from_bounds` guarantees at least two bounds, but the query path
        // must stay panic-free even on a degenerate spec: an empty or
        // single-`0` bounds vector is simply an empty domain.
        self.bounds.last().copied().unwrap_or(0)
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Always false: a spec names at least one partition.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The global item range `(start, width)` of partition `p`.
    pub fn range(&self, p: usize) -> (usize, usize) {
        (self.bounds[p], self.bounds[p + 1] - self.bounds[p])
    }

    /// The partition owning `item`, or an error outside the domain.
    pub fn partition_of(&self, item: usize) -> Result<usize> {
        if item >= self.n() {
            return Err(PdsError::ItemOutOfDomain {
                item,
                domain: self.n(),
            });
        }
        Ok(self.bounds.partition_point(|&b| b <= item) - 1)
    }
}

/// Configuration of a [`SynopsisStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// How the item domain is partitioned.
    pub partitions: PartitionSpec,
    /// Records a partition's memtable buffers before it is auto-sealed.
    pub seal_threshold: usize,
    /// Synopsis budget (buckets or coefficients) per sealed segment.
    pub segment_budget: usize,
    /// Which synopsis sealed segments get.
    pub synopsis: SynopsisKind,
    /// Automatic size-tiered compaction: when set, every segment install
    /// evaluates the policy (once the partition has no seals in flight) and
    /// full tiers are merged in the background (on the seal workers when
    /// [`SynopsisStore::with_background_sealing`] is enabled, inline
    /// otherwise).  `None` (the default) keeps compaction manual
    /// ([`SynopsisStore::compact_partition`] / `compact_all`).  A runtime
    /// knob: not persisted by [`SynopsisStore::to_binary`].
    pub compaction: Option<CompactionPolicy>,
    /// Durability tier of WAL/manifest commits: [`WalSync::Flush`] (the
    /// default, survives process crashes) or the opt-in [`WalSync::Fsync`]
    /// (survives power loss, paid once per group commit).  A runtime knob:
    /// not persisted by [`SynopsisStore::to_binary`].
    pub wal_sync: WalSync,
    /// Whether the store records telemetry (counters, latency histograms
    /// and the event ring behind [`SynopsisStore::render_metrics`]).
    /// Recording is lock-free and allocation-free, and **never** affects
    /// results — estimates, snapshots and segment bytes are bit-identical
    /// on or off — so the default is on; turn it off to shave the last
    /// clock reads from the hot path.  A runtime knob: not persisted by
    /// [`SynopsisStore::to_binary`].
    pub telemetry: bool,
    /// Bounded retries for **idempotent** durable-path operations (WAL
    /// group commits and rotations, manifest installs and publishes, blob
    /// staging and renames) after a transient I/O failure; `0` disables
    /// retry.  An operation that still fails after the budget flips the
    /// store into its sticky degraded read-only mode (see
    /// [`SynopsisStore::degraded`]).  A runtime knob: not persisted by
    /// [`SynopsisStore::to_binary`].
    pub io_retries: u32,
    /// Base backoff before durable-path retry `k` sleeps
    /// `io_backoff_ms << k` milliseconds; `0` retries immediately.  A
    /// runtime knob: not persisted by [`SynopsisStore::to_binary`].
    pub io_backoff_ms: u64,
    /// Segment pruning on the query path (default on): every sealed
    /// segment carries an item-range *fence* (and, for sparse segments, a
    /// presence filter) over its synopsis support, and range/point
    /// estimates skip segments whose fence proves a zero contribution to
    /// the query window.  Pruning is **bitwise invisible** — a skipped
    /// segment would have contributed an exact `±0.0`, and the query
    /// accumulators never hold `-0.0`, so the estimate is bit-identical
    /// with the knob on or off (pinned by the `store_read_path` suite).
    /// A runtime knob: not persisted by [`SynopsisStore::to_binary`].
    pub prune: bool,
    /// Lazy synopsis-block loading at [`SynopsisStore::open_with_wal`]
    /// (default on): reopen maps only each blob's footer and meta block
    /// (fence, filter, record count) and defers the synopsis block to the
    /// first query that actually needs it — reopen time and resident
    /// memory stop scaling with total synopsis bytes.  `false` restores
    /// eager decoding of every blob at open.  Answers are bit-identical
    /// either way; a block whose deferred read fails contributes zero and
    /// flips the store into degraded read-only mode (see
    /// [`SynopsisStore::degraded`]).  A runtime knob: not persisted by
    /// [`SynopsisStore::to_binary`].
    pub lazy_blocks: bool,
}

impl StoreConfig {
    /// A configuration with the default runtime knobs: manual compaction,
    /// flush-tier WAL durability and telemetry recording on.
    pub fn new(
        partitions: PartitionSpec,
        seal_threshold: usize,
        segment_budget: usize,
        synopsis: SynopsisKind,
    ) -> Self {
        StoreConfig {
            partitions,
            seal_threshold,
            segment_budget,
            synopsis,
            compaction: None,
            wal_sync: WalSync::Flush,
            telemetry: true,
            io_retries: 2,
            io_backoff_ms: 1,
            prune: true,
            lazy_blocks: true,
        }
    }
}

/// Point-in-time counters describing a store.
///
/// Serializes to stable, versioned JSON via [`StoreStats::to_json`] /
/// [`StoreStats::from_json`] — the machine-parseable form behind the
/// server's `STATS JSON` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Stream records accepted by [`SynopsisStore::ingest`].
    pub ingested_records: u64,
    /// Records not yet sealed into a segment: live memtables plus memtables
    /// frozen for an in-flight background seal (queries see both).
    pub live_records: u64,
    /// Seal operations performed (counted when the memtable freezes).
    pub seals: u64,
    /// Segments currently stored (compaction shrinks this; an in-flight
    /// background seal's segment appears — moving its records out of
    /// `live_records` — once the build installs, so
    /// [`SynopsisStore::flush`] first for a settled view).
    pub segments: usize,
    /// X-tuples whose alternatives were split across partitions.
    pub split_tuples: u64,
}

/// Versioned wire envelope for [`StoreStats::to_json`] /
/// [`StoreStats::from_json`].
#[derive(Serialize, Deserialize)]
struct StatsEnvelope {
    version: u32,
    stats: StoreStats,
}

impl StoreStats {
    /// The stats JSON envelope version written by [`StoreStats::to_json`].
    pub const FORMAT_VERSION: u32 = 1;

    /// Serialises the counters into a single-line, versioned JSON envelope
    /// (`{"version":1,"stats":{...}}`) so `STATS JSON` consumers can detect
    /// skew instead of mis-reading renamed fields.
    pub fn to_json(&self) -> Result<String> {
        let envelope = StatsEnvelope {
            version: Self::FORMAT_VERSION,
            stats: *self,
        };
        serde_json::to_string(&envelope).map_err(|e| PdsError::InvalidParameter {
            message: format!("store stats serialization failed: {e}"),
        })
    }

    /// Reconstructs counters from [`StoreStats::to_json`] output, rejecting
    /// malformed JSON and version skew with a [`PdsError`].
    pub fn from_json(text: &str) -> Result<Self> {
        let envelope: StatsEnvelope =
            serde_json::from_str(text).map_err(|e| PdsError::InvalidParameter {
                message: format!("store stats deserialization failed: {e}"),
            })?;
        if envelope.version != Self::FORMAT_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "store stats envelope version {} is not supported (expected {})",
                    envelope.version,
                    Self::FORMAT_VERSION
                ),
            });
        }
        Ok(envelope.stats)
    }
}

/// One sealed segment as held by its shard: the seal sequence, the shared
/// (possibly lazily-backed) segment handle and, when known, the segment's
/// cached `PDSG` encoding — computed once at install (or decode) so
/// [`SynopsisStore::to_binary`] never re-serialises an installed segment.
#[derive(Debug, Clone)]
struct SealedSegment {
    seq: u64,
    handle: Arc<SegmentHandle>,
    binary: Option<Arc<Vec<u8>>>,
}

/// A shared handle to one sealed segment's synopsis, decoded **at most
/// once**: segments installed by a seal, a compaction or an eager open
/// carry their [`Segment`] from construction; segments installed by a
/// lazy [`SynopsisStore::open_with_wal`] carry only their decoded meta
/// block (header fields + prune metadata) plus a [`BlobSource`], and the
/// synopsis block is read and decoded on the first query that actually
/// needs it.  The meta block alone answers `records()` and every pruning
/// decision, so a fully pruned (or never-queried) segment never touches
/// its blob again after reopen.
///
/// Handles are shared by `Arc` between shards, snapshot views and
/// compaction tasks, so one load serves every reader.  Loading never runs
/// under a shard lock — query paths clone the handle `Arc`s out of the
/// guard window first.
#[derive(Debug)]
struct SegmentHandle {
    meta: BlobMeta,
    synopsis: OnceLock<Arc<Segment>>,
    source: Option<BlobSource>,
}

impl SegmentHandle {
    /// A handle around an already-decoded segment, computing its prune
    /// metadata (a pure function of the synopsis — see
    /// [`blob::PruneMeta::of`]).
    fn eager(segment: Arc<Segment>) -> SegmentHandle {
        Self::preloaded(BlobMeta::of(&segment), segment)
    }

    /// A handle around an already-decoded segment whose meta block is
    /// also already known (the eager-open path decodes both).
    fn preloaded(meta: BlobMeta, segment: Arc<Segment>) -> SegmentHandle {
        let synopsis = OnceLock::new();
        let _ = synopsis.set(segment);
        SegmentHandle {
            meta,
            synopsis,
            source: None,
        }
    }

    /// A handle that defers its synopsis block to the first use.
    fn lazy(meta: BlobMeta, source: BlobSource) -> SegmentHandle {
        SegmentHandle {
            meta,
            synopsis: OnceLock::new(),
            source: Some(source),
        }
    }

    /// Records sealed into the segment — answered from the meta block,
    /// never loading the synopsis.
    fn records(&self) -> u64 {
        self.meta.records
    }

    /// Whether the segment may contribute a nonzero amount to the clamped
    /// global query window `[lo, hi]` — the prune gate, answered from the
    /// meta block alone (`false` proves a bitwise-exact zero
    /// contribution, see [`blob::PruneMeta::may_overlap`]).
    fn may_overlap(&self, lo: usize, hi: usize) -> bool {
        self.meta.prune.may_overlap(self.meta.start, lo, hi)
    }

    /// The decoded synopsis: the cached `Arc` when present, otherwise one
    /// bounded-retry read + decode of the blob's synopsis block, cached on
    /// success so every later call (from any sharer of the handle) is an
    /// `Arc` clone.  Failures are **not** cached — a transient fault that
    /// outlives the retry budget degrades the owning store, but a reopen
    /// (or a later call under a healed disk) can still succeed.
    fn load(&self) -> Result<Arc<Segment>> {
        if let Some(segment) = self.synopsis.get() {
            return Ok(Arc::clone(segment));
        }
        let Some(source) = &self.source else {
            // Unreachable by construction — eager handles pre-set the
            // cell — but the query path degrades rather than panics.
            return Err(PdsError::InvalidParameter {
                message: "store: segment handle has neither a synopsis nor a blob source".into(),
            });
        };
        let segment = source.fetch(&self.meta)?;
        Ok(Arc::clone(self.synopsis.get_or_init(|| Arc::new(segment))))
    }

    /// The segment's estimated mass over the inclusive global range
    /// `[lo, hi]`.  A synopsis block that cannot be loaded contributes
    /// `0.0` — the degraded latch (set by the failed load) records the
    /// cause, and queries keep serving everything still readable.
    fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        match self.load() {
            Ok(segment) => segment.range_sum(lo, hi),
            Err(_) => 0.0,
        }
    }
}

/// Where (and how) a lazy [`SegmentHandle`] finds its synopsis block: the
/// blob path, the block's offset/length/CRC from the footer, and the I/O
/// policy ingredients — shared telemetry plus the owning store's degraded
/// latch, so a view or compaction task loading through the handle reports
/// exactly like the store itself would.
#[derive(Debug)]
struct BlobSource {
    path: PathBuf,
    syn_off: u64,
    syn_len: usize,
    syn_crc: u32,
    telemetry: Arc<StoreTelemetry>,
    degraded: Arc<OnceLock<String>>,
    io_retries: u32,
    io_backoff_ms: u64,
}

impl BlobSource {
    /// Reads and decodes the synopsis block (bounded retry at the
    /// `block-read` fault site), verifying the block CRC and that the
    /// decoded synopsis reproduces the meta block it was installed under.
    fn fetch(&self, meta: &BlobMeta) -> Result<Segment> {
        let policy = IoPolicy::new(
            self.io_retries,
            self.io_backoff_ms,
            Some(Arc::clone(&self.telemetry)),
        );
        let bytes = policy
            .run("block-read", || {
                vfs::read_range("block-read", &self.path, self.syn_off, self.syn_len)
            })
            .map_err(|e| {
                self.degrade(format!(
                    "reading the synopsis block of {}: {e}",
                    self.path.display()
                ))
            })?;
        self.telemetry.record_block_load();
        blob::decode_synopsis_block(&bytes, self.syn_crc, meta).map_err(|e| {
            self.degrade(format!(
                "decoding the synopsis block of {}: {e}",
                self.path.display()
            ))
        })
    }

    /// Trips the owning store's sticky degraded latch (same contract as
    /// `StoreInner::degrade`, reachable without the store — snapshot
    /// views and compaction tasks load through shared handles).
    fn degrade(&self, cause: String) -> PdsError {
        let cause = format!("block-read: {cause}");
        if self.degraded.set(cause.clone()).is_ok() {
            self.telemetry.record_degraded("block-read");
        }
        PdsError::Degraded {
            cause: self.degraded.get().cloned().unwrap_or(cause),
        }
    }
}

/// One partition's mutable state: the live memtable, the sealed segments
/// (ascending by seal sequence) and the optional write-ahead log.
#[derive(Debug)]
struct Shard {
    memtable: Memtable,
    /// Memtables frozen for sealing whose segment build is still in flight,
    /// by seal sequence: kept readable (shared with the [`SealTask`]) so a
    /// query racing a background seal never transiently loses the frozen
    /// records' mass; the entry is dropped when its segment installs.
    frozen: Vec<(u64, Arc<Memtable>)>,
    /// Sealed segments, ascending by sequence; the sequence restores
    /// deterministic order when background workers finish out of order.
    segments: Vec<SealedSegment>,
    /// Next seal sequence number for this partition.
    next_seq: u64,
    /// A compaction round is in flight for this partition (selection made,
    /// swap pending) — serialises compaction per partition.
    compacting: bool,
    wal: Option<PartitionWal>,
}

/// The durable half of a store opened with
/// [`SynopsisStore::open_with_wal`]: the directory holding the WAL files,
/// the segment blobs and the [`Manifest`] that commits them.
#[derive(Debug)]
struct Durable {
    dir: PathBuf,
    manifest: Mutex<Manifest>,
}

/// The shared, lock-protected core of a store (shards + counters); the
/// background seal workers hold an `Arc` of this.
#[derive(Debug)]
struct StoreInner {
    config: StoreConfig,
    shards: Vec<RwLock<Shard>>,
    durable: Option<Durable>,
    ingested: AtomicU64,
    seals: AtomicU64,
    split_tuples: AtomicU64,
    /// Process-local instrumentation (never persisted, never cloned):
    /// recording is lock-free, so every path — including shard-guard
    /// windows — may record.  Shared (`Arc`) so the I/O policies inside
    /// the WAL and manifest handles can report into it.
    telemetry: Arc<StoreTelemetry>,
    /// The sticky degraded read-only latch: set (once, with the cause) by
    /// the first durable-path failure that survives the retry budget.
    /// Every mutating path checks it and returns [`PdsError::Degraded`];
    /// queries never look at it.  Only reopening the store clears it.
    /// Shared (`Arc`) with every lazy [`BlobSource`], so a deferred
    /// synopsis-block read that fails degrades the store exactly like an
    /// install-time failure would.
    degraded: Arc<OnceLock<String>>,
    /// Counts **structural commits** — seal installs and compaction swaps,
    /// bumped inside the owning shard's write lock.  Two uses: the
    /// optimistic snapshot-view capture loop (equal loads before/after the
    /// per-shard captures prove no structural commit interleaved, so the
    /// cross-shard view is consistent) and the merged-synopsis cache key
    /// (an entry stamped with an older version can never be served).
    /// Record-level ingest does not bump it: live memtable contents are
    /// outside both protocols (the merge covers sealed state only, and a
    /// shard's memtable is captured atomically under its own lock).
    version: AtomicU64,
    /// The memoised [`SynopsisStore::merge_global`] result: one entry,
    /// keyed on `(version, b)`.  Structural commits invalidate it purely
    /// by bumping `version` — nothing is recomputed until the next merge
    /// asks.  Stamped with the version read *before* the pieces were
    /// extracted, so a commit racing the computation can only make the
    /// stamp stale (a needless later recompute), never serve a wrong
    /// histogram.
    merge_cache: Mutex<Option<MergeCache>>,
}

/// One memoised global merge (see `StoreInner::merge_cache`).
#[derive(Debug)]
struct MergeCache {
    version: u64,
    b: usize,
    histogram: Histogram,
}

impl StoreInner {
    /// The store's durable-path failure policy (configured retry budget,
    /// reporting into the store's telemetry).
    fn io_policy(&self) -> IoPolicy {
        IoPolicy::new(
            self.config.io_retries,
            self.config.io_backoff_ms,
            Some(Arc::clone(&self.telemetry)),
        )
    }

    /// Refuses mutating work while the store is degraded.
    fn check_writable(&self) -> Result<()> {
        match self.degraded.get() {
            Some(cause) => Err(PdsError::Degraded {
                cause: cause.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Trips (or re-reports) the sticky degraded mode after a durable-path
    /// failure at `site`, converting the failure into the
    /// [`PdsError::Degraded`] the mutating operation returns.  The first
    /// caller wins the latch and emits the telemetry gauge/event; later
    /// failures keep the original cause.
    fn degrade(&self, site: &str, e: PdsError) -> PdsError {
        if let PdsError::Degraded { .. } = e {
            return e;
        }
        let cause = format!("{site}: {e}");
        if self.degraded.set(cause.clone()).is_ok() {
            self.telemetry.record_degraded(site);
        }
        PdsError::Degraded {
            cause: self.degraded.get().cloned().unwrap_or(cause),
        }
    }
}

/// A frozen memtable on its way to becoming a segment (shared with its
/// shard's `frozen` list so the records stay queryable until the segment
/// installs).
#[derive(Debug)]
struct SealTask {
    partition: usize,
    seq: u64,
    memtable: Arc<Memtable>,
    /// The frozen WAL file covering exactly this memtable's records; removed
    /// once the segment is installed.
    wal_frozen: Option<PathBuf>,
}

/// A compaction round selected by the policy (or requested manually): the
/// reserved output sequence and the cloned input segment handles, merged
/// off-lock and swapped in under a short write lock.  Lazily-backed input
/// handles load during the (already off-lock) merge.
#[derive(Debug)]
struct CompactTask {
    partition: usize,
    out_seq: u64,
    inputs: Vec<(u64, Arc<SegmentHandle>)>,
}

/// Work items of the background workers.
#[derive(Debug)]
enum Task {
    Seal(SealTask),
    Compact(CompactTask),
}

#[derive(Debug, Default)]
struct SealQueueState {
    tasks: VecDeque<Task>,
    /// Tasks submitted but not yet installed (queued + building).
    pending: usize,
    closed: bool,
    /// First background build error; surfaced by [`SynopsisStore::flush`].
    error: Option<PdsError>,
}

#[derive(Debug, Default)]
struct SealQueue {
    state: Mutex<SealQueueState>,
    /// Signals workers that a task arrived (or the queue closed).
    work: Condvar,
    /// Signals waiters that `pending` reached zero.
    idle: Condvar,
}

/// Handle to the background seal workers.
#[derive(Debug)]
struct Sealer {
    queue: Arc<SealQueue>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Sealer {
    fn submit(&self, task: Task) {
        let mut state = self.queue.state.lock().expect("seal queue poisoned");
        state.pending += 1;
        state.tasks.push_back(task);
        drop(state);
        self.queue.work.notify_one();
    }
}

impl Drop for Sealer {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().expect("seal queue poisoned");
            state.closed = true;
        }
        self.queue.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The partitioned streaming-ingest synopsis store (see the crate docs for
/// the lifecycle and the module docs for the concurrency model).
#[derive(Debug)]
pub struct SynopsisStore {
    inner: Arc<StoreInner>,
    sealer: Option<Sealer>,
}

/// A deep point-in-time copy: shard contents and counters are snapshotted;
/// the clone has **no** background workers, **no** write-ahead log and
/// **no** durable directory (file handles and manifests cannot be
/// duplicated meaningfully — two stores appending to one manifest would
/// corrupt it).  Memtables frozen for an in-flight background seal are
/// folded back into the clone's live memtable (no records are lost), and
/// the clone's `seals` counter is **decremented once per folded-back
/// freeze**: in a clone, `seals` counts exactly the freezes whose segment
/// the clone holds (so with no compaction, `stats().seals == segments as
/// u64` — pinned by `clone_seals_counter_excludes_in_flight_freezes`),
/// never a freeze whose outcome the clone cannot see.  An in-flight
/// compaction's inputs are still present, so the clone holds the
/// consistent pre-swap state; [`SynopsisStore::flush`] first for settled
/// counters.  Telemetry is process-local and starts fresh (all zeros) in
/// the clone.
impl Clone for SynopsisStore {
    fn clone(&self) -> Self {
        let mut folded_back = 0u64;
        let shards: Vec<Shard> = self
            .inner
            .shards
            .iter()
            .map(|s| {
                let shard = s.read().unwrap_or_else(|e| e.into_inner());
                // Fold any in-flight frozen memtables back into the cloned
                // live buffer (newest-first prepending restores arrival
                // order), so a clone racing a background seal still holds
                // every record.
                let mut memtable = shard.memtable.clone();
                for (_, frozen) in shard.frozen.iter().rev() {
                    memtable.absorb_front((**frozen).clone());
                    folded_back += 1;
                }
                Shard {
                    memtable,
                    frozen: Vec::new(),
                    segments: shard.segments.clone(),
                    next_seq: shard.next_seq,
                    compacting: false,
                    wal: None,
                }
            })
            .collect();
        // The clone shares the original's segment handles, and the
        // original's compaction may delete a lazily-backed handle's blob
        // file at any time — force every deferred synopsis into memory now
        // (off the shard guards), where it is safe from file deletion.  A
        // block that is already unreadable keeps answering 0.0 through the
        // shared handle; the original store's degraded latch records the
        // cause (a clone has no durable substrate of its own to degrade).
        for shard in &shards {
            for sealed in &shard.segments {
                let _ = sealed.handle.load();
            }
        }
        let shards: Vec<RwLock<Shard>> = shards.into_iter().map(RwLock::new).collect();
        // The folded-back freezes' records are live again in the clone, so
        // they are no longer seals *of the clone*: a seal is counted when a
        // memtable freezes, and these memtables just un-froze.  (The counter
        // is read after the shard locks: each freeze observed in a shard
        // above has already bumped it, so the subtraction never underflows;
        // saturate anyway — a degenerate counter must not panic `clone`.)
        let seals = self
            .inner
            .seals
            .load(Ordering::Relaxed)
            .saturating_sub(folded_back);
        SynopsisStore {
            inner: Arc::new(StoreInner {
                shards,
                durable: None,
                ingested: AtomicU64::new(self.inner.ingested.load(Ordering::Relaxed)),
                seals: AtomicU64::new(seals),
                split_tuples: AtomicU64::new(self.inner.split_tuples.load(Ordering::Relaxed)),
                telemetry: Arc::new(StoreTelemetry::new(
                    self.inner.config.partitions.len(),
                    self.inner.config.telemetry,
                )),
                // A clone has no durable substrate, so nothing can fail
                // durably: it starts healthy even off a degraded original.
                degraded: Arc::new(OnceLock::new()),
                version: AtomicU64::new(0),
                merge_cache: Mutex::new(None),
                config: self.inner.config.clone(),
            }),
            sealer: None,
        }
    }
}

impl SynopsisStore {
    /// Magic bytes of the whole-store binary encoding.
    pub const BINARY_MAGIC: [u8; 4] = *b"PDST";

    /// Version stamp of the whole-store binary encoding.
    pub const BINARY_VERSION: u16 = 1;

    /// Creates an empty store (no background workers, no write-ahead log,
    /// no durable directory).
    pub fn new(config: StoreConfig) -> Result<Self> {
        Self::with_durability(config, None)
    }

    fn with_durability(config: StoreConfig, durable: Option<Durable>) -> Result<Self> {
        let telemetry = Arc::new(StoreTelemetry::new(
            config.partitions.len(),
            config.telemetry,
        ));
        Self::with_parts(config, durable, telemetry)
    }

    /// [`SynopsisStore::with_durability`] with a pre-built telemetry layer
    /// — the durable open constructs telemetry *before* recovery so the
    /// recovery-path I/O policies can already report into it.
    fn with_parts(
        config: StoreConfig,
        durable: Option<Durable>,
        telemetry: Arc<StoreTelemetry>,
    ) -> Result<Self> {
        if config.seal_threshold == 0 || config.segment_budget == 0 {
            return Err(PdsError::InvalidParameter {
                message: "the seal threshold and the segment budget must be positive".into(),
            });
        }
        let shards = (0..config.partitions.len())
            .map(|p| {
                let (start, width) = config.partitions.range(p);
                RwLock::new(Shard {
                    memtable: Memtable::new(start, width),
                    frozen: Vec::new(),
                    segments: Vec::new(),
                    next_seq: 0,
                    compacting: false,
                    wal: None,
                })
            })
            .collect();
        Ok(SynopsisStore {
            inner: Arc::new(StoreInner {
                config,
                shards,
                durable,
                ingested: AtomicU64::new(0),
                seals: AtomicU64::new(0),
                split_tuples: AtomicU64::new(0),
                telemetry,
                degraded: Arc::new(OnceLock::new()),
                version: AtomicU64::new(0),
                merge_cache: Mutex::new(None),
            }),
            sealer: None,
        })
    }

    /// Opens a **crash-durable** store backed by `dir`: sealed segments are
    /// reloaded from their install-time blobs via the [`Manifest`], and any
    /// records logged by a previous process — live or frozen mid-seal — are
    /// replayed from the per-partition write-ahead logs, so nothing
    /// acknowledged is lost to a crash.
    ///
    /// Reopen order is **manifest → segment blobs → WAL tail**:
    ///
    /// 1. The manifest is loaded (torn-tail tolerant, atomically
    ///    republished) and every live `seg-<p>-<seq>.bin` blob is decoded —
    ///    CRC-32 trailer first, then the `PDSG` payload — and installed at
    ///    its seal sequence.  Orphaned blobs (their manifest record never
    ///    landed) are swept; their records replay from the WAL instead.
    /// 2. The WAL is scanned read-only ([`crate::wal`]'s three-phase
    ///    protocol — an error anywhere leaves all files intact), **skipping
    ///    frozen logs whose seal sequence the manifest covers** (the
    ///    manifest entry is a seal's commit point), then replayed into the
    ///    memtables with auto-sealing suppressed and committed atomically.
    ///
    /// Counters restart at the recovered state: `ingested_records` counts
    /// the blob-installed segments' records plus the replayed WAL records
    /// (per-partition *sub*-records, so an x-tuple split across partitions
    /// before logging counts once per partition, and `split_tuples`
    /// restarts at 0); `seals` counts the loaded segments.  Post-recovery
    /// counters describe the recovered process, not the pre-crash one.
    pub fn open_with_wal(config: StoreConfig, dir: impl AsRef<Path>) -> Result<Self> {
        let recovery_sw = Stopwatch::start();
        let dir = dir.as_ref();
        // The logs are only meaningful under the partition layout that
        // wrote them: a `wal.meta` stamp pins the bounds, so reopening with
        // a different layout errors instead of silently ignoring logs of
        // partitions that no longer exist (or mis-routing records).
        Self::check_wal_meta(&config, dir)?;
        // Telemetry first, so recovery's own I/O (and any cleanup errors
        // swept along the way) is already counted.
        let telemetry = Arc::new(StoreTelemetry::new(
            config.partitions.len(),
            config.telemetry,
        ));
        let policy = IoPolicy::new(
            config.io_retries,
            config.io_backoff_ms,
            Some(Arc::clone(&telemetry)),
        );
        let (manifest, live) = Manifest::open_with(dir, config.wal_sync, policy.clone())?;
        let store = Self::with_parts(
            config,
            Some(Durable {
                dir: dir.to_path_buf(),
                manifest: Mutex::new(manifest),
            }),
            telemetry,
        )?;
        // Phase 0: reload the manifest-committed segments from their blobs
        // (entries arrive ascending by (partition, seq), so each shard's
        // segment list stays sequence-ordered).
        let mut loaded_records = 0u64;
        let mut loaded_segments = 0u64;
        for (p, seq) in live {
            if p >= store.num_partitions() {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "manifest names partition {p} but the store has only {} partitions",
                        store.num_partitions()
                    ),
                });
            }
            let path = dir.join(segment_blob_name(p, seq));
            let (start, width) = store.inner.config.partitions.range(p);
            // Lazy open (the default) maps only the blob's footer and meta
            // block; eager open — configured, or the v1 fallback when the
            // blob has no footer — decodes the whole synopsis now.
            let lazy = match store.inner.config.lazy_blocks {
                true => Self::open_blob_lazy(&store, &path)?,
                false => None,
            };
            let (handle, binary, records) = match lazy {
                Some(handle) => {
                    let records = handle.records();
                    (handle, None, records)
                }
                None => {
                    let (handle, binary) = Self::open_blob_eager(&path)?;
                    let records = handle.records();
                    (handle, Some(Arc::new(binary)), records)
                }
            };
            if handle.meta.start != start || handle.meta.width != width {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "segment blob {} covers [{}, {}] but partition {p} is [{start}, {}]",
                        path.display(),
                        handle.meta.start,
                        handle.meta.start + handle.meta.width - 1,
                        start + width - 1
                    ),
                });
            }
            loaded_records += records;
            loaded_segments += 1;
            let mut shard = store.write_shard(p);
            shard.segments.push(SealedSegment {
                seq,
                handle: Arc::new(handle),
                binary,
            });
            shard.next_seq = shard.next_seq.max(seq + 1);
        }
        store
            .inner
            .ingested
            .fetch_add(loaded_records, Ordering::Relaxed);
        store
            .inner
            .seals
            .fetch_add(loaded_segments, Ordering::Relaxed);
        // Phase 1: read-only WAL scans, skipping manifest-covered frozen
        // logs.  Nothing is deleted or truncated, so a corrupt log in any
        // partition aborts with every file intact.
        let mut replays = Vec::with_capacity(store.num_partitions());
        for p in 0..store.num_partitions() {
            let covered = {
                let durable = store.inner.durable.as_ref().expect("durable store");
                let manifest = durable.manifest.lock().expect("manifest lock poisoned");
                manifest.covered_seqs(p)
            };
            replays.push(PartitionWal::scan_skipping_with(dir, p, &covered, &policy)?);
        }
        // Phase 2: replay into the memtables.  Records were already routed
        // (x-tuples split per partition) when first logged; sealing is
        // suppressed so the replayed set stays exactly the set the commit
        // re-logs.
        let mut replayed_records = 0u64;
        for (p, replay) in replays.iter().enumerate() {
            let mut shard = store.write_shard(p);
            for record in &replay.records {
                shard.memtable.insert(record.clone())?;
            }
            replayed_records += replay.records.len() as u64;
        }
        store
            .inner
            .ingested
            .fetch_add(replayed_records, Ordering::Relaxed);
        // Phase 3: publish each partition's recovered live log atomically
        // and attach the append handles.
        for (p, replay) in replays.iter().enumerate() {
            let wal = PartitionWal::commit_synced_with(
                dir,
                p,
                &replay.records,
                replay,
                store.inner.config.wal_sync,
                policy.clone(),
            )?;
            store.write_shard(p).wal = Some(wal);
        }
        store.inner.telemetry.record_recovery(
            recovery_sw.elapsed_secs(),
            loaded_segments,
            loaded_records + replayed_records,
        );
        Ok(store)
    }

    /// The lazy half of blob recovery: reads the fixed footer and the meta
    /// block (three small `recovery-read` accesses), validates the blob's
    /// geometry against the real file length, and returns a handle whose
    /// synopsis block loads on first use.  Returns `Ok(None)` when the
    /// file carries no valid v2 footer — a v1 blob (`PDSG` + CRC trailer)
    /// from an older store, which the caller decodes eagerly instead.
    fn open_blob_lazy(store: &SynopsisStore, path: &Path) -> Result<Option<SegmentHandle>> {
        let blob_io = |e: std::io::Error| PdsError::InvalidParameter {
            message: format!("store: reading segment blob {}: {e}", path.display()),
        };
        let file_len = vfs::path_len("recovery-read", path).map_err(blob_io)?;
        if file_len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Ok(None);
        }
        let tail = vfs::read_range(
            "recovery-read",
            path,
            file_len - FOOTER_LEN as u64,
            FOOTER_LEN,
        )
        .map_err(blob_io)?;
        // No footer CRC+magic at the tail: not a v2 blob.  (A *corrupt* v2
        // blob also lands here and falls back — the eager decode then
        // reports the corruption precisely.)
        let Ok(footer) = BlobFooter::decode(&tail) else {
            return Ok(None);
        };
        // The footer is authentic (CRC over its fields), so from here on a
        // mismatch is corruption, not version skew: fail loudly.
        let body = (HEADER_LEN as u64)
            .checked_add(u64::from(footer.meta_len))
            .and_then(|v| v.checked_add(footer.syn_len))
            .and_then(|v| v.checked_add(FOOTER_LEN as u64));
        if body != Some(footer.total_len) || footer.total_len != file_len {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "store: segment blob {} is {file_len} bytes but its footer describes \
                     a {}-byte blob",
                    path.display(),
                    footer.total_len
                ),
            });
        }
        let prefix = vfs::read_range(
            "recovery-read",
            path,
            0,
            HEADER_LEN + footer.meta_len as usize,
        )
        .map_err(blob_io)?;
        let meta = blob::decode_meta_block(&prefix, footer.meta_crc)?;
        let inner = &store.inner;
        Ok(Some(SegmentHandle::lazy(
            meta,
            BlobSource {
                path: path.to_path_buf(),
                syn_off: footer.synopsis_offset(),
                syn_len: footer.syn_len as usize,
                syn_crc: footer.syn_crc,
                telemetry: Arc::clone(&inner.telemetry),
                degraded: Arc::clone(&inner.degraded),
                io_retries: inner.config.io_retries,
                io_backoff_ms: inner.config.io_backoff_ms,
            },
        )))
    }

    /// The eager half of blob recovery: reads and fully decodes the blob
    /// (v2 block-structured or the v1 `PDSG`+CRC layout) and returns the
    /// pre-loaded handle plus the exact `PDSG` bytes to cache for
    /// [`SynopsisStore::to_binary`].
    fn open_blob_eager(path: &Path) -> Result<(SegmentHandle, Vec<u8>)> {
        let mut bytes =
            vfs::read("recovery-read", path).map_err(|e| PdsError::InvalidParameter {
                message: format!("store: reading segment blob {}: {e}", path.display()),
            })?;
        if bytes.starts_with(&blob::BLOB_MAGIC) {
            let (segment, meta) = blob::decode_blob(&bytes)?;
            // decode_blob validated the footer geometry, so the synopsis
            // block slice — exactly the PDSG bytes — is in bounds.
            let footer = blob::decode_footer(&bytes)?;
            let off = footer.synopsis_offset() as usize;
            let pdsg = bytes
                .get(off..off + footer.syn_len as usize)
                .map(<[u8]>::to_vec)
                .unwrap_or_default();
            Ok((SegmentHandle::preloaded(meta, Arc::new(segment)), pdsg))
        } else {
            let segment = Segment::from_blob(&bytes)?;
            // The v1 blob minus its CRC trailer is exactly the PDSG bytes;
            // truncate in place rather than copying (startup path).
            bytes.truncate(bytes.len().saturating_sub(4));
            Ok((SegmentHandle::eager(Arc::new(segment)), bytes))
        }
    }

    /// Validates (or, on first use, writes) the WAL directory's partition
    /// stamp: a space-separated list of the partition bounds in `wal.meta`.
    fn check_wal_meta(config: &StoreConfig, dir: &Path) -> Result<()> {
        let meta_io = |context: &str, e: std::io::Error| PdsError::InvalidParameter {
            message: format!("wal: {context}: {e}"),
        };
        vfs::create_dir_all("recovery-read", dir)
            .map_err(|e| meta_io("creating the wal directory", e))?;
        let path = dir.join("wal.meta");
        let bounds = &config.partitions.bounds;
        let stamp = bounds
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        if path.exists() {
            let on_disk = vfs::read_to_string("recovery-read", &path)
                .map_err(|e| meta_io("reading the partition stamp", e))?;
            if on_disk.trim() != stamp {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "wal directory was written under partition bounds [{}] but the store \
                         is configured with [{stamp}]; reopen with the original layout",
                        on_disk.trim()
                    ),
                });
            }
        } else {
            vfs::write("recovery-commit", &path, format!("{stamp}\n").as_bytes())
                .map_err(|e| meta_io("writing the partition stamp", e))?;
        }
        Ok(())
    }

    /// Moves sealing onto `workers` background threads: reaching the seal
    /// threshold now freezes the memtable (an `O(1)` swap under the shard
    /// lock) and hands the segment build to a worker, so ingest never waits
    /// on synopsis construction.  [`SynopsisStore::flush`] waits for
    /// in-flight builds and surfaces their errors; dropping the store joins
    /// the workers after draining the queue.  Segment order (and therefore
    /// [`SynopsisStore::to_binary`] output) stays byte-identical to inline
    /// sealing.
    pub fn with_background_sealing(mut self, workers: usize) -> Self {
        let queue = Arc::new(SealQueue::default());
        let workers = (1..=workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&self.inner);
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || Self::seal_worker(&inner, &queue))
            })
            .collect();
        self.sealer = Some(Sealer { queue, workers });
        self
    }

    fn seal_worker(inner: &StoreInner, queue: &SealQueue) {
        let park = |e: PdsError| {
            let mut state = queue.state.lock().expect("seal queue poisoned");
            state.error.get_or_insert(e);
        };
        loop {
            let task = {
                let mut state = queue.state.lock().expect("seal queue poisoned");
                loop {
                    if let Some(task) = state.tasks.pop_front() {
                        break Some(task);
                    }
                    if state.closed {
                        break None;
                    }
                    state = queue.work.wait(state).expect("seal queue poisoned");
                }
            };
            let Some(task) = task else { return };
            // A seal install (or a compaction round) can trigger the next
            // compaction round; it goes back on the queue so flush() keeps
            // waiting for the whole chain.
            let follow_up = match task {
                Task::Seal(task) => {
                    // Build AND durably commit (blob + manifest) before
                    // touching the shard lock: the lock is held only for
                    // the in-memory swap, never for file I/O or fsyncs.
                    // A degraded store skips the build entirely: the
                    // frozen records go back to the live memtable (still
                    // queryable) and the parked error reaches flush().
                    let committed = inner
                        .check_writable()
                        .and_then(|()| Self::build_task(inner, &task))
                        .and_then(|(segment, binary)| {
                            let binary = Self::commit_durable(
                                inner,
                                task.partition,
                                task.seq,
                                &segment,
                                binary,
                            )?;
                            Ok((segment, binary))
                        });
                    match committed {
                        Ok((segment, binary)) => {
                            let mut shard = inner.shards[task.partition]
                                .write()
                                .expect("shard lock poisoned");
                            Self::install_in_memory(
                                inner,
                                &mut shard,
                                task.partition,
                                task.seq,
                                segment,
                                binary,
                                task.wal_frozen.as_deref(),
                            )
                        }
                        Err(e) => {
                            // Build failure or a failed durable commit
                            // (blob/manifest I/O): restore the frozen
                            // records to the live memtable (they rejoin
                            // ahead of any newer arrivals) and park the
                            // error for flush().
                            let mut shard = inner.shards[task.partition]
                                .write()
                                .expect("shard lock poisoned");
                            Self::unfreeze(inner, &mut shard, task);
                            drop(shard);
                            park(e);
                            None
                        }
                    }
                }
                Task::Compact(task) => match Self::run_compact_task(inner, task) {
                    Ok(next) => next,
                    Err(e) => {
                        park(e);
                        None
                    }
                },
            };
            let mut state = queue.state.lock().expect("seal queue poisoned");
            if let Some(next) = follow_up {
                state.pending += 1;
                state.tasks.push_back(Task::Compact(next));
                queue.work.notify_one();
            }
            state.pending -= 1;
            if state.pending == 0 {
                queue.idle.notify_all();
            }
        }
    }

    /// Waits until every background seal — and every compaction round it
    /// chained — is installed, and returns the first build error, if any
    /// (a failed build's records are restored to their live memtable, so
    /// the error is retryable: seal again or snapshot).  A no-op without
    /// background sealing.
    pub fn flush(&self) -> Result<()> {
        if let Some(sealer) = &self.sealer {
            let mut state = sealer.queue.state.lock().expect("seal queue poisoned");
            while state.pending > 0 {
                state = sealer.queue.idle.wait(state).expect("seal queue poisoned");
            }
            if let Some(e) = state.error.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.inner.config
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.inner.config.partitions.n()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.inner.config.partitions.len()
    }

    fn write_shard(&self, p: usize) -> RwLockWriteGuard<'_, Shard> {
        self.inner.shards[p].write().expect("shard lock poisoned")
    }

    /// Shared read access to partition `p`'s shard, recovering from lock
    /// poisoning.  Poison recovery is sound for readers: a writer that
    /// panicked mid-mutation left the shard in whatever state its last
    /// completed assignment produced, and every shard field is a valid
    /// value at every assignment boundary (memtables and segment vectors
    /// are replaced wholesale, never patched in place) — so one crashed
    /// writer must not wedge every query forever.  Returns `None` when `p`
    /// is out of range, which readers treat as an empty partition.
    fn read_shard(&self, p: usize) -> Option<RwLockReadGuard<'_, Shard>> {
        self.inner
            .shards
            .get(p)
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// A point-in-time copy of partition `p`'s live memtable.
    ///
    /// # Panics
    ///
    /// Panics when `p >= num_partitions()` (like slice indexing).
    pub fn memtable_snapshot(&self, p: usize) -> Memtable {
        self.inner.shards[p]
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .memtable
            .clone()
    }

    /// A point-in-time copy of partition `p`'s sealed segments, oldest
    /// (lowest seal sequence) first.  Lazily-backed segments are decoded
    /// on the way out (off the shard lock); a segment whose synopsis
    /// block cannot be loaded is skipped — the failed load has already
    /// tripped the degraded latch with the cause
    /// ([`SynopsisStore::degraded`]).
    ///
    /// # Panics
    ///
    /// Panics when `p >= num_partitions()` (like slice indexing).
    pub fn segments(&self, p: usize) -> Vec<Segment> {
        let handles: Vec<Arc<SegmentHandle>> = self.inner.shards[p]
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .segments
            .iter()
            .map(|s| Arc::clone(&s.handle))
            .collect();
        handles
            .iter()
            .filter_map(|h| h.load().ok())
            .map(|segment| (*segment).clone())
            .collect()
    }

    /// Point-in-time counters.  Poison-recovering (see `read_shard`): a
    /// panicked writer cannot take the stats endpoint down with it.
    pub fn stats(&self) -> StoreStats {
        let mut live_records = 0u64;
        let mut segments = 0usize;
        for shard in &self.inner.shards {
            let shard = shard.read().unwrap_or_else(|e| e.into_inner());
            live_records += shard.memtable.len() as u64;
            // In-flight frozen memtables are still unsealed records.
            live_records += shard
                .frozen
                .iter()
                .map(|(_, m)| m.len() as u64)
                .sum::<u64>();
            segments += shard.segments.len();
        }
        StoreStats {
            ingested_records: self.inner.ingested.load(Ordering::Relaxed),
            live_records,
            seals: self.inner.seals.load(Ordering::Relaxed),
            segments,
            split_tuples: self.inner.split_tuples.load(Ordering::Relaxed),
        }
    }

    /// The store's Prometheus-style text exposition: every telemetry
    /// series (ingest/freeze/WAL/seal/compaction counters, latency
    /// histograms, the recovery gauge) plus the [`SynopsisStore::stats`]
    /// counters rendered as series.  Total on the panic-free serving
    /// contract — a scrape endpoint can expose this path directly; with
    /// [`StoreConfig::telemetry`] off the series exist but stay at zero
    /// (and `pds_store_telemetry_enabled` reads 0).
    pub fn render_metrics(&self) -> String {
        self.inner.telemetry.render(&self.stats())
    }

    /// The store's retained telemetry events (seal installs, compaction
    /// commits, WAL rotations, recovery), oldest first, one decoded line
    /// per event.  Panic-free; empty with telemetry off.
    pub fn render_events(&self) -> Vec<String> {
        self.inner.telemetry.render_events()
    }

    /// The cause that flipped this store into degraded read-only mode, or
    /// `None` while it is healthy.
    ///
    /// A store degrades when a durable-path write (WAL append/commit/rotate,
    /// blob publish, manifest install/replace) still fails after the
    /// configured retries ([`StoreConfig::io_retries`]).  Degradation is
    /// **sticky**: mutating calls return [`PdsError::Degraded`] from then
    /// on, queries keep serving everything acknowledged before the fault,
    /// and only reopening the directory (which replays the durable state)
    /// clears the condition.
    pub fn degraded(&self) -> Option<String> {
        self.inner.degraded.get().cloned()
    }

    /// Appends one stream record, routing it to the partition(s) owning its
    /// items; a partition whose memtable reaches the seal threshold is
    /// sealed automatically (inline, or on the background workers when
    /// enabled).  X-tuples spanning several partitions are split per
    /// partition (see the crate docs for the semantics).  Thread-safe
    /// through `&self`.
    ///
    /// # Errors
    ///
    /// Returns [`PdsError::Degraded`] without touching any state once the
    /// store has entered degraded read-only mode (see the crate docs).
    pub fn ingest(&self, record: StreamRecord) -> Result<()> {
        self.inner.check_writable()?;
        record.validate()?;
        let mut compactions: Vec<CompactTask> = Vec::new();
        match record {
            StreamRecord::Basic { item, .. } | StreamRecord::ValueDistribution { item, .. } => {
                let p = self.inner.config.partitions.partition_of(item)?;
                let inserted = {
                    let mut shard = self.write_shard(p);
                    // analyze:allow(lock-discipline) the shard lock is the WAL group-commit serialisation point by design; the append goes to this shard's own log only
                    self.insert_locked(p, &mut shard, record).and_then(|task| {
                        compactions.extend(task);
                        // analyze:allow(lock-discipline) commit of this shard's own WAL; acknowledging before the flush would lose acknowledged records on crash
                        self.commit_wal_locked(&mut shard)
                    })
                };
                if let Err(e) = inserted {
                    // A round reserved by the seal still runs even when the
                    // WAL commit failed, so the partition is never left
                    // flagged busy.
                    let _ = self.run_compactions(compactions);
                    return Err(e);
                }
                self.inner.ingested.fetch_add(1, Ordering::Relaxed);
            }
            StreamRecord::Alternatives(alts) => {
                let (by_partition, split) = self.split_x_tuple(&alts)?;
                self.inner.split_tuples.fetch_add(split, Ordering::Relaxed);
                self.inner.ingested.fetch_add(1, Ordering::Relaxed);
                let mut first_error = None;
                for (p, sub) in by_partition {
                    let mut shard = self.write_shard(p);
                    let inserted = self
                        // analyze:allow(lock-discipline) per-sub-tuple append to this shard's own WAL; the shard lock is the designed commit serialisation point
                        .insert_locked(p, &mut shard, StreamRecord::Alternatives(sub))
                        .and_then(|task| {
                            compactions.extend(task);
                            // analyze:allow(lock-discipline) commit of this shard's own WAL under its own lock; no other shard's lock is ever taken here
                            self.commit_wal_locked(&mut shard)
                        });
                    if let Err(e) = inserted {
                        first_error = Some(e);
                        break;
                    }
                }
                // Reserved compaction rounds run even on error, so a
                // partition is never left flagged busy.
                let compacted = self.run_compactions(compactions);
                return match first_error {
                    Some(e) => Err(e),
                    None => compacted,
                };
            }
        }
        self.run_compactions(compactions)
    }

    /// The group-commit boundary of one shard: flushes the WAL appends of
    /// the current ingest call (or the shard's whole sub-batch), adding
    /// `File::sync_data` on the [`WalSync::Fsync`] tier — one flush per
    /// batch per touched shard, never one per record.
    fn commit_wal_locked(&self, shard: &mut Shard) -> Result<()> {
        if let Some(wal) = shard.wal.as_mut() {
            let sw = self.inner.telemetry.maybe_start();
            wal.commit_group(self.inner.config.wal_sync)
                .map_err(|e| self.inner.degrade("wal-commit", e))?;
            self.inner.telemetry.record_wal_commit(sw);
            crashpoint::reached("post-wal-append");
        }
        Ok(())
    }

    /// Runs inline compaction chains (each round may select a follow-up).
    /// Only the inline paths produce tasks here — with background sealing
    /// the rounds run on the workers and [`SynopsisStore::flush`] awaits
    /// them.
    fn run_compactions(&self, tasks: Vec<CompactTask>) -> Result<()> {
        // Every reserved round must run (or fail through run_compact_task,
        // which clears its partition's flag): bailing out mid-list would
        // leave the remaining tasks' partitions flagged busy forever.
        let mut first_error = None;
        for task in tasks {
            let mut next = Some(task);
            while let Some(task) = next {
                match Self::run_compact_task(&self.inner, task) {
                    Ok(follow_up) => next = follow_up,
                    Err(e) => {
                        first_error.get_or_insert(e);
                        next = None;
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Records per [`SynopsisStore::ingest_all`] chunk: large enough to
    /// amortise shard locking and pool dispatch, small enough to bound the
    /// routing buffer.
    const INGEST_CHUNK: usize = 8192;

    /// Appends every record of an iterator by routing fixed-size chunks into
    /// reused per-partition buffers and inserting each partition's sub-batch
    /// with one shard-lock acquisition (in parallel on the thread pool), so
    /// shard locks are taken once per chunk, not once per record.  Chunking
    /// does not affect the result: each partition still sees exactly its
    /// sub-sequence of records in arrival order.
    pub fn ingest_all(&self, records: impl IntoIterator<Item = StreamRecord>) -> Result<()> {
        self.inner.check_writable()?;
        let mut routed: Vec<Vec<StreamRecord>> = vec![Vec::new(); self.num_partitions()];
        let mut pending = 0usize;
        let mut split = 0u64;
        let flush_counts = |pending: &mut usize, split: &mut u64| {
            self.inner
                .ingested
                .fetch_add(*pending as u64, Ordering::Relaxed);
            self.inner.split_tuples.fetch_add(*split, Ordering::Relaxed);
            (*pending, *split) = (0, 0);
        };
        for record in records {
            match self.route_one(record, &mut routed) {
                Ok(was_split) => {
                    split += was_split;
                    pending += 1;
                }
                Err(e) => {
                    // Same semantics as the old per-record loop: every valid
                    // record before the failing one is ingested (and only
                    // then counted), then the error surfaces.
                    self.insert_routed(&mut routed)?;
                    flush_counts(&mut pending, &mut split);
                    return Err(e);
                }
            }
            if pending == Self::INGEST_CHUNK {
                self.insert_routed(&mut routed)?;
                flush_counts(&mut pending, &mut split);
            }
        }
        self.insert_routed(&mut routed)?;
        flush_counts(&mut pending, &mut split);
        Ok(())
    }

    /// Appends a batch of records using the scoped thread pool: the batch is
    /// routed to per-partition sub-batches lock-free (one pass, arrival
    /// order preserved within each partition), then every partition's
    /// sub-batch is inserted on its own pool task, taking each shard lock
    /// once.  Because each partition sees exactly the sub-sequence of
    /// records it owns — in arrival order — the resulting state is
    /// **identical to serial ingest at every thread count**.
    ///
    /// Unlike [`SynopsisStore::ingest_all`] (which keeps the valid prefix
    /// when a record fails validation), a **validation** error here rejects
    /// the whole batch before anything is inserted — routing happens first,
    /// so the batch is the all-or-nothing unit for invalid input.  An
    /// **insert-time** error (a WAL write failure, an inline seal build
    /// error) can still leave the batch partially applied across
    /// partitions; such a failed batch is not added to the accepted-record
    /// counters.
    pub fn ingest_batch(&self, records: impl IntoIterator<Item = StreamRecord>) -> Result<()> {
        self.inner.check_writable()?;
        let mut routed: Vec<Vec<StreamRecord>> = vec![Vec::new(); self.num_partitions()];
        let mut ingested = 0u64;
        let mut split = 0u64;
        for record in records {
            split += self.route_one(record, &mut routed)?;
            ingested += 1;
        }
        // Count only after the inserts land, so a failed batch never
        // inflates the accepted-record counters.
        self.insert_routed(&mut routed)?;
        self.inner.ingested.fetch_add(ingested, Ordering::Relaxed);
        self.inner.split_tuples.fetch_add(split, Ordering::Relaxed);
        Ok(())
    }

    /// Validates one record and appends it (split per partition for
    /// x-tuples) to the routing buffers; returns 1 when an x-tuple was split
    /// across partitions.
    fn route_one(&self, record: StreamRecord, routed: &mut [Vec<StreamRecord>]) -> Result<u64> {
        record.validate()?;
        match record {
            StreamRecord::Basic { item, .. } | StreamRecord::ValueDistribution { item, .. } => {
                let p = self.inner.config.partitions.partition_of(item)?;
                routed[p].push(record);
                Ok(0)
            }
            StreamRecord::Alternatives(alts) => {
                let (by_partition, split) = self.split_x_tuple(&alts)?;
                for (p, sub) in by_partition {
                    routed[p].push(StreamRecord::Alternatives(sub));
                }
                Ok(split)
            }
        }
    }

    /// Splits an x-tuple's alternatives by owning partition.  Returns the
    /// per-partition groups plus 1 when the tuple actually spans several
    /// partitions — the single home of the splitting rule shared by every
    /// ingest path (per-record and batched must never diverge).
    fn split_x_tuple(&self, alts: &[(usize, f64)]) -> Result<(SplitAlternatives, u64)> {
        let mut by_partition = SplitAlternatives::new();
        for &(item, prob) in alts {
            let p = self.inner.config.partitions.partition_of(item)?;
            by_partition.entry(p).or_default().push((item, prob));
        }
        let split = u64::from(by_partition.len() > 1);
        Ok((by_partition, split))
    }

    /// Drains the routing buffers into their shards, one pool task per
    /// non-empty partition; buffer capacity is retained for the next chunk.
    /// Inline compaction rounds triggered by auto-seals run after every
    /// shard lock is released — even when a shard errored, so a reserved
    /// round is never abandoned with its partition flagged busy.
    fn insert_routed(&self, routed: &mut [Vec<StreamRecord>]) -> Result<()> {
        let batches: Vec<(usize, &mut Vec<StreamRecord>)> = routed
            .iter_mut()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .collect();
        if batches.is_empty() {
            return Ok(());
        }
        let results =
            pool::parallel_map(batches, |(p, batch)| self.ingest_partition_batch(p, batch));
        let mut compactions = Vec::new();
        let mut first_error = None;
        for (mut tasks, error) in results {
            compactions.append(&mut tasks);
            if let Some(e) = error {
                first_error.get_or_insert(e);
            }
        }
        let compacted = self.run_compactions(compactions);
        match first_error {
            Some(e) => Err(e),
            None => compacted,
        }
    }

    /// Inserts one partition's sub-batch under one shard-lock acquisition,
    /// group-committing the WAL once at the end.  Compaction rounds
    /// reserved by inline auto-seals are returned **alongside** any error
    /// (not instead of it), so the caller can always run them.
    fn ingest_partition_batch(
        &self,
        p: usize,
        records: &mut Vec<StreamRecord>,
    ) -> (Vec<CompactTask>, Option<PdsError>) {
        let mut compactions = Vec::new();
        let sw = self.inner.telemetry.maybe_start();
        let mut shard = self.write_shard(p);
        for record in records.drain(..) {
            // analyze:allow(lock-discipline) batch ingest holds the shard lock across its own WAL appends on purpose: one group commit per batch is the whole point
            match self.insert_locked(p, &mut shard, record) {
                Ok(task) => compactions.extend(task),
                Err(e) => return (compactions, Some(e)),
            }
        }
        // analyze:allow(lock-discipline) the batch's single group commit to this shard's own WAL
        let error = self.commit_wal_locked(&mut shard).err();
        drop(shard);
        self.inner.telemetry.record_batch(sw);
        (compactions, error)
    }

    /// Inserts one routed record into a locked shard (WAL first), sealing
    /// when the threshold is reached.  Returns a compaction round when the
    /// (inline) seal install filled a size tier — the caller runs it after
    /// releasing the shard lock.
    fn insert_locked(
        &self,
        p: usize,
        shard: &mut Shard,
        record: StreamRecord,
    ) -> Result<Option<CompactTask>> {
        if let Some(wal) = shard.wal.as_mut() {
            // Appends are not retryable (a partially buffered frame cannot
            // be rewound), so a failed append degrades immediately.  The
            // record was never acknowledged and never reached the
            // memtable; if the torn buffer ever flushes, replay drops it
            // as the tolerated torn tail.
            wal.append(&record)
                .map_err(|e| self.inner.degrade("wal-append", e))?;
        }
        shard.memtable.insert(record)?;
        self.inner.telemetry.record_ingest(p);
        if shard.memtable.len() >= self.inner.config.seal_threshold {
            return self.seal_locked(p, shard).map(|(_, task)| task);
        }
        Ok(None)
    }

    /// Freezes a non-empty memtable for sealing: swaps in an empty memtable,
    /// assigns the seal sequence and rotates the WAL.  `O(1)` plus one file
    /// rename; runs under the shard write lock.
    fn freeze(&self, p: usize, shard: &mut Shard) -> Result<Option<SealTask>> {
        if shard.memtable.is_empty() {
            return Ok(None);
        }
        let (start, width) = self.inner.config.partitions.range(p);
        let memtable = std::mem::replace(&mut shard.memtable, Memtable::new(start, width));
        let seq = shard.next_seq;
        shard.next_seq += 1;
        let wal_frozen = match shard.wal.as_mut() {
            Some(wal) => match wal.rotate(seq) {
                Ok(frozen) => Some(frozen),
                Err(e) => {
                    // The lock is held and the fresh memtable is untouched:
                    // swap the records straight back so a failed rotation
                    // (disk full, rename error) loses nothing.  The retry
                    // budget is already spent inside rotate, so the store
                    // degrades.
                    shard.memtable = memtable;
                    shard.next_seq = seq;
                    return Err(self.inner.degrade("wal-rotate", e));
                }
            },
            None => None,
        };
        self.inner.seals.fetch_add(1, Ordering::Relaxed);
        self.inner
            .telemetry
            .record_frozen(p, seq, wal_frozen.is_some());
        let memtable = Arc::new(memtable);
        shard.frozen.push((seq, Arc::clone(&memtable)));
        Ok(Some(SealTask {
            partition: p,
            seq,
            memtable,
            wal_frozen,
        }))
    }

    /// Builds the configured synopsis segment from a frozen memtable —
    /// and, on a durable store, its `PDSG` encoding (computed here, off
    /// the shard lock, so the install only does file I/O).
    fn build_task(inner: &StoreInner, task: &SealTask) -> Result<(Segment, Option<Vec<u8>>)> {
        crashpoint::reached("frozen-pre-build");
        let sw = inner.telemetry.maybe_start();
        let relation = task.memtable.to_relation()?;
        let budget = inner.config.segment_budget.min(task.memtable.width());
        let segment = Segment::build(
            task.memtable.start(),
            task.memtable.len() as u64,
            &relation,
            inner.config.synopsis,
            budget,
        )?;
        let binary = match inner.durable {
            Some(_) => Some(segment.to_binary()?),
            None => None,
        };
        inner.telemetry.record_seal_build(sw);
        Ok((segment, binary))
    }

    /// Publishes a segment's durable blob — the block-structured `PDSB`
    /// encoding, self-framed by its footer and per-block CRCs — as
    /// `seg-<p>-<seq>.bin` via an atomic tmp-rename.  Both halves are
    /// idempotent (staging re-creates the tmp from scratch, rename/dir-sync
    /// re-issue cleanly), so each gets the policy's bounded retry.  On
    /// failure, the faulting site (`blob-write` or `blob-publish`) is
    /// returned alongside the error so the caller can degrade with an
    /// accurate label.
    fn write_segment_blob(
        durable: &Durable,
        policy: &IoPolicy,
        sync: WalSync,
        partition: usize,
        seq: u64,
        blob: &[u8],
    ) -> std::result::Result<(), (&'static str, PdsError)> {
        let blob_io = |context: &str, e: std::io::Error| PdsError::InvalidParameter {
            message: format!("store: {context}: {e}"),
        };
        let name = segment_blob_name(partition, seq);
        let tmp = durable.dir.join(format!("{name}.tmp"));
        policy
            .run("blob-write", || {
                // `create` truncates, so a retry restages from byte zero.
                let mut staged = vfs::create("blob-write", &tmp)?;
                vfs::write_all("blob-write", &tmp, &mut staged, blob)?;
                if sync == WalSync::Fsync {
                    vfs::sync_data("blob-write", &tmp, &staged)?;
                }
                Ok(())
            })
            .map_err(|e| ("blob-write", blob_io("staging a segment blob", e)))?;
        crashpoint::reached("mid-blob-publish");
        policy
            .run("blob-publish", || {
                vfs::rename("blob-publish", &tmp, &durable.dir.join(&name))
            })
            .map_err(|e| ("blob-publish", blob_io("publishing a segment blob", e)))?;
        if sync == WalSync::Fsync {
            // The manifest entry written next is the seal's commit point:
            // the blob's directory entry must hit the device first, or a
            // power loss could persist the entry but not the blob.
            policy
                .run("blob-publish", || {
                    vfs::sync_dir("blob-publish", &durable.dir)
                })
                .map_err(|e| ("blob-publish", blob_io("fsyncing the store directory", e)))?;
        }
        Ok(())
    }

    /// Installs a built segment at its sequence position: on a durable
    /// store its blob is published and the manifest records it (the seal's
    /// commit point) **before** the frozen WAL file retires; then the
    /// frozen memtable it was built from is dropped (the segment now
    /// carries the mass).  Returns the compaction round the install
    /// triggered, if the size-tiered policy found a full tier.
    /// The durable half of an install: publishes the blob and the manifest
    /// record (the seal's commit point).  Needs **no shard lock** — the
    /// background path runs it before acquiring one, so seal commits never
    /// stall ingest or queries on the shard; returns the bytes to cache.
    fn commit_durable(
        inner: &StoreInner,
        partition: usize,
        seq: u64,
        segment: &Segment,
        binary: Option<Vec<u8>>,
    ) -> Result<Option<Arc<Vec<u8>>>> {
        crashpoint::reached("built-pre-install");
        match (&inner.durable, binary) {
            (Some(durable), binary) => {
                // The None arm only happens for callers that skipped the
                // off-lock encode; keep them correct.
                let binary = match binary {
                    Some(b) => b,
                    None => segment.to_binary()?,
                };
                // The disk blob is the block-structured v2 encoding; the
                // in-memory cache stays the raw PDSG bytes (the store
                // binary format embeds those directly).
                let blob = segment.to_blob()?;
                let sw = inner.telemetry.maybe_start();
                let policy = inner.io_policy();
                Self::write_segment_blob(
                    durable,
                    &policy,
                    inner.config.wal_sync,
                    partition,
                    seq,
                    &blob,
                )
                .map_err(|(site, e)| inner.degrade(site, e))?;
                durable
                    .manifest
                    .lock()
                    .expect("manifest lock poisoned")
                    .install(partition, seq)
                    .map_err(|e| inner.degrade("manifest-install", e))?;
                inner.telemetry.record_seal_commit(sw, blob.len() as u64);
                crashpoint::reached("installed-pre-wal-retire");
                Ok(Some(Arc::new(binary)))
            }
            (None, binary) => Ok(binary.map(Arc::new)),
        }
    }

    /// The in-memory half of an install, run under the shard write lock
    /// after [`SynopsisStore::commit_durable`]: retires the frozen WAL
    /// file, swaps the segment in at its sequence position, drops the
    /// frozen memtable (the segment now carries the mass) and evaluates
    /// the compaction policy.  Infallible by design — the commit already
    /// happened, so nothing past this point may lose it.
    fn install_in_memory(
        inner: &StoreInner,
        shard: &mut Shard,
        partition: usize,
        seq: u64,
        segment: Segment,
        binary: Option<Arc<Vec<u8>>>,
        wal_frozen: Option<&Path>,
    ) -> Option<CompactTask> {
        if let Some(frozen) = wal_frozen {
            // The seal is already manifest-committed, so a failed retire
            // costs nothing but disk space (the covered log is skipped at
            // reopen); count it rather than drop it.
            inner
                .io_policy()
                .cleanup("wal-retire", PartitionWal::retire(frozen));
        }
        inner
            .telemetry
            .record_installed(partition, seq, segment.records());
        let pos = shard.segments.partition_point(|s| s.seq < seq);
        shard.segments.insert(
            pos,
            SealedSegment {
                seq,
                handle: Arc::new(SegmentHandle::eager(Arc::new(segment))),
                binary,
            },
        );
        shard.frozen.retain(|&(s, _)| s != seq);
        // A structural commit, made visible under this shard's write lock:
        // invalidates the merge cache and fences snapshot-view captures.
        inner.version.fetch_add(1, Ordering::SeqCst);
        Self::maybe_compaction(inner, shard, partition)
    }

    /// Both install halves back to back, for callers already holding the
    /// shard write lock (the inline seal paths).
    fn install_segment(
        inner: &StoreInner,
        shard: &mut Shard,
        partition: usize,
        seq: u64,
        segment: Segment,
        binary: Option<Vec<u8>>,
        wal_frozen: Option<&Path>,
    ) -> Result<Option<CompactTask>> {
        let binary = Self::commit_durable(inner, partition, seq, &segment, binary)?;
        Ok(Self::install_in_memory(
            inner, shard, partition, seq, segment, binary, wal_frozen,
        ))
    }

    /// Evaluates the size-tiered policy after an install (or a completed
    /// compaction round): once the partition has no seals in flight and no
    /// round running, a full tier reserves the next round — the output
    /// sequence is taken and the input handles cloned here, under the held
    /// write lock, so the merge itself runs lock-free.
    fn maybe_compaction(
        inner: &StoreInner,
        shard: &mut Shard,
        partition: usize,
    ) -> Option<CompactTask> {
        let policy = inner.config.compaction?;
        if shard.compacting || !shard.frozen.is_empty() {
            return None;
        }
        let sizes: Vec<(u64, u64)> = shard
            .segments
            .iter()
            .map(|s| (s.seq, s.handle.records()))
            .collect();
        let selected = policy.select(&sizes)?;
        let inputs = shard
            .segments
            .iter()
            .filter(|s| selected.contains(&s.seq))
            .map(|s| (s.seq, Arc::clone(&s.handle)))
            .collect();
        let out_seq = shard.next_seq;
        shard.next_seq += 1;
        shard.compacting = true;
        Some(CompactTask {
            partition,
            out_seq,
            inputs,
        })
    }

    /// Returns a frozen memtable's records to the live buffer (and its
    /// frozen WAL file to the live log) after a segment build failed, so a
    /// build error never loses records.
    fn unfreeze(inner: &StoreInner, shard: &mut Shard, task: SealTask) {
        shard.frozen.retain(|&(s, _)| s != task.seq);
        // The shard's shared reference was just dropped, so this is the
        // last one; clone only in the (unreachable) contended case.
        let memtable = Arc::try_unwrap(task.memtable).unwrap_or_else(|shared| (*shared).clone());
        shard.memtable.absorb_front(memtable);
        if let (Some(wal), Some(frozen)) = (shard.wal.as_mut(), task.wal_frozen.as_deref()) {
            // Best-effort: the records are back in memory either way, and
            // at reopen the un-reabsorbed frozen log replays them (its
            // seal never committed) — but a failure is counted, not
            // dropped.
            if wal.reabsorb(frozen).is_err() {
                inner.telemetry.record_cleanup_error("cleanup");
            }
        }
        inner.seals.fetch_sub(1, Ordering::Relaxed);
    }

    /// Seals (or schedules the seal of) the frozen task: background workers
    /// when enabled, otherwise built inline under the held shard lock.  An
    /// inline build failure restores the frozen records to the memtable
    /// before surfacing the error.  The second return is the compaction
    /// round an inline install triggered — run it after the lock drops.
    fn seal_locked(&self, p: usize, shard: &mut Shard) -> Result<(bool, Option<CompactTask>)> {
        let Some(task) = self.freeze(p, shard)? else {
            return Ok((false, None));
        };
        match &self.sealer {
            Some(sealer) => {
                sealer.submit(Task::Seal(task));
                Ok((true, None))
            }
            None => match Self::build_task(&self.inner, &task) {
                Ok((segment, binary)) => {
                    match Self::install_segment(
                        &self.inner,
                        shard,
                        p,
                        task.seq,
                        segment,
                        binary,
                        task.wal_frozen.as_deref(),
                    ) {
                        Ok(next) => Ok((true, next)),
                        Err(e) => {
                            Self::unfreeze(&self.inner, shard, task);
                            Err(e)
                        }
                    }
                }
                Err(e) => {
                    Self::unfreeze(&self.inner, shard, task);
                    Err(e)
                }
            },
        }
    }

    /// Seals partition `p`'s memtable into an immutable segment (a no-op on
    /// an empty memtable).  Returns whether a seal was performed — or, with
    /// background sealing, scheduled ([`SynopsisStore::flush`] waits for
    /// it).
    pub fn seal_partition(&self, p: usize) -> Result<bool> {
        self.inner.check_writable()?;
        let (sealed, compaction) = {
            let mut shard = self.write_shard(p);
            // analyze:allow(lock-discipline) freeze + WAL rotation must be atomic with the memtable swap; the expensive segment build runs after this guard drops
            self.seal_locked(p, &mut shard)?
        };
        self.run_compactions(compaction.into_iter().collect())?;
        Ok(sealed)
    }

    /// Seals every non-empty memtable and waits for the resulting segments:
    /// the freezes happen serially (cheap swaps), the segment builds run on
    /// the background workers when enabled or on the scoped thread pool
    /// otherwise, and installation order follows the seal sequence — the
    /// sealed state is identical to serial sealing at every thread count.
    pub fn seal_all(&self) -> Result<()> {
        self.inner.check_writable()?;
        let mut tasks = Vec::new();
        for p in 0..self.num_partitions() {
            let mut shard = self.write_shard(p);
            // analyze:allow(lock-discipline) freeze only swaps the memtable and rotates this shard's own WAL; segment builds run outside the guard
            if let Some(task) = self.freeze(p, &mut shard)? {
                tasks.push(task);
            }
        }
        match &self.sealer {
            Some(sealer) => {
                for task in tasks {
                    sealer.submit(Task::Seal(task));
                }
                self.flush()
            }
            None => {
                let built = pool::parallel_map(tasks, |task| {
                    let result = Self::build_task(&self.inner, &task);
                    (task, result)
                });
                let mut first_error = None;
                let mut compactions = Vec::new();
                for (task, result) in built {
                    let installed = result.and_then(|(segment, binary)| {
                        // Commit durably before the lock; hold it only for
                        // the in-memory swap.
                        let binary = Self::commit_durable(
                            &self.inner,
                            task.partition,
                            task.seq,
                            &segment,
                            binary,
                        )?;
                        let mut shard = self.write_shard(task.partition);
                        Ok(Self::install_in_memory(
                            &self.inner,
                            &mut shard,
                            task.partition,
                            task.seq,
                            segment,
                            binary,
                            task.wal_frozen.as_deref(),
                        ))
                    });
                    match installed {
                        Ok(next) => compactions.extend(next),
                        Err(e) => {
                            // A failed build (or a failed durable commit)
                            // never loses records: they rejoin the live
                            // memtable.
                            let mut shard = self.write_shard(task.partition);
                            Self::unfreeze(&self.inner, &mut shard, task);
                            first_error.get_or_insert(e);
                        }
                    }
                }
                let compacted = self.run_compactions(compactions);
                match first_error {
                    Some(e) => Err(e),
                    None => compacted,
                }
            }
        }
    }

    /// The summed piecewise-constant summary of partition `p`'s sealed
    /// segments (`None` when the partition has no segments or `p` is out of
    /// range).  Poison-recovering (see `read_shard`).  Handles are cloned
    /// out of the read guard first, so a lazily-backed segment's block
    /// read never runs under a shard lock; an unreadable block fails the
    /// merge (which must be complete or an error, never silently partial).
    fn partition_pieces(&self, p: usize) -> Result<Option<Vec<Piece>>> {
        let handles: Vec<Arc<SegmentHandle>> = {
            let Some(shard) = self.read_shard(p) else {
                return Ok(None);
            };
            shard
                .segments
                .iter()
                .map(|s| Arc::clone(&s.handle))
                .collect()
        };
        let mut layers: Vec<Vec<Piece>> = Vec::with_capacity(handles.len());
        for handle in &handles {
            layers.push(handle.load()?.pieces());
        }
        match layers.len() {
            0 => Ok(None),
            1 => Ok(layers.pop()),
            _ => sum_pieces(&layers).map(Some),
        }
    }

    /// Builds a compaction round's merged segment from the cloned input
    /// handles — the expensive half (piece summing + the merge DP), run
    /// with **no lock held**.
    fn build_compacted(
        inner: &StoreInner,
        task: &CompactTask,
    ) -> Result<(Segment, Option<Vec<u8>>)> {
        // Lazily-backed inputs load here, with no lock held; a block that
        // cannot be read fails the round (the inputs stay authoritative)
        // rather than merging a silently incomplete set.
        let mut layers: Vec<Vec<Piece>> = Vec::with_capacity(task.inputs.len());
        for (_, handle) in &task.inputs {
            layers.push(handle.load()?.pieces());
        }
        let summed = sum_pieces(&layers)?;
        let (start, width) = inner.config.partitions.range(task.partition);
        let budget = inner.config.segment_budget.min(width);
        let synopsis = match inner.config.synopsis {
            SynopsisKind::Histogram(_) => {
                SegmentSynopsis::Histogram(optimal_piecewise_histogram(&summed, budget)?)
            }
            SynopsisKind::Wavelet => {
                // Re-threshold the summed estimate vector: wavelets have no
                // piece-level DP, so go through the dense reconstruction.
                let dense: Vec<f64> = summed
                    .iter()
                    .flat_map(|piece| std::iter::repeat_n(piece.value, piece.width))
                    .collect();
                let relation = ValuePdfModel::deterministic(&dense).into();
                SegmentSynopsis::Wavelet(build_sse_wavelet(&relation, budget)?)
            }
        };
        let records = task.inputs.iter().map(|(_, h)| h.records()).sum();
        let segment = Segment::new(start, records, synopsis)?;
        let binary = match inner.durable {
            Some(_) => Some(segment.to_binary()?),
            None => None,
        };
        Ok((segment, binary))
    }

    /// Runs one reserved compaction round end to end: merge off-lock, blob
    /// publish, then the **short write lock** — remove the inputs, insert
    /// the output at its reserved sequence, commit through the manifest
    /// (atomic publish retiring the superseded blobs) and re-evaluate the
    /// policy.  Returns the follow-up round, if the swap filled another
    /// tier.  Every exit clears the partition's `compacting` flag.
    fn run_compact_task(inner: &StoreInner, task: CompactTask) -> Result<Option<CompactTask>> {
        let sw = inner.telemetry.maybe_start();
        let clear_flag = || {
            inner.shards[task.partition]
                .write()
                .expect("shard lock poisoned")
                .compacting = false;
        };
        // A degraded store runs no rounds: the inputs stay authoritative
        // and queryable.  The reserved round still clears its flag.
        if let Err(e) = inner.check_writable() {
            clear_flag();
            return Err(e);
        }
        let (merged, binary) = match Self::build_compacted(inner, &task) {
            Ok(built) => built,
            Err(e) => {
                clear_flag();
                return Err(e);
            }
        };
        crashpoint::reached("mid-compaction-swap");
        let input_seqs: Vec<u64> = task.inputs.iter().map(|&(seq, _)| seq).collect();
        // The reservation serialises rounds per partition and seals only
        // add segments, so the inputs must still be present; anything else
        // is a logic error worth surfacing (checked before the durable
        // commit makes the round irreversible).
        {
            let shard = inner.shards[task.partition]
                .read()
                .expect("shard lock poisoned");
            if input_seqs
                .iter()
                .any(|seq| !shard.segments.iter().any(|s| s.seq == *seq))
            {
                drop(shard);
                clear_flag();
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "compaction inputs of partition {} changed under a reserved round",
                        task.partition
                    ),
                });
            }
        }
        // Durable: stage the output blob, then commit the replacement
        // through the manifest — all **before** the shard write lock, so
        // the lock is held only for the in-memory swap (same discipline as
        // seal installs).  A crash before the publish leaves the inputs
        // authoritative and the output blob an orphan (swept at open); a
        // crash after it reopens compacted.
        let mut blob_bytes = 0u64;
        if let Some(durable) = &inner.durable {
            let policy = inner.io_policy();
            let blob = match merged.to_blob() {
                Ok(blob) => blob,
                Err(e) => {
                    clear_flag();
                    return Err(e);
                }
            };
            blob_bytes = blob.len() as u64;
            if let Err((site, e)) = Self::write_segment_blob(
                durable,
                &policy,
                inner.config.wal_sync,
                task.partition,
                task.out_seq,
                &blob,
            ) {
                clear_flag();
                return Err(inner.degrade(site, e));
            }
            let committed = durable
                .manifest
                .lock()
                .expect("manifest lock poisoned")
                .replace(task.partition, &input_seqs, task.out_seq);
            if let Err(e) = committed {
                // The manifest still names the inputs; drop the orphan
                // output blob (counted on failure, and swept again at the
                // next open either way) and surface the error.
                policy.cleanup(
                    "cleanup",
                    vfs::remove_file(
                        "cleanup",
                        &durable
                            .dir
                            .join(segment_blob_name(task.partition, task.out_seq)),
                    ),
                );
                clear_flag();
                return Err(inner.degrade("manifest-replace", e));
            }
        }
        // Short write lock: swap the output in, release, then delete the
        // superseded blobs (the manifest no longer names them).
        let next = {
            let mut shard = inner.shards[task.partition]
                .write()
                .expect("shard lock poisoned");
            shard.segments.retain(|s| !input_seqs.contains(&s.seq));
            let pos = shard.segments.partition_point(|s| s.seq < task.out_seq);
            shard.segments.insert(
                pos,
                SealedSegment {
                    seq: task.out_seq,
                    handle: Arc::new(SegmentHandle::eager(Arc::new(merged))),
                    binary: binary.map(Arc::new),
                },
            );
            shard.compacting = false;
            // The swap is a structural commit (see `StoreInner::version`).
            inner.version.fetch_add(1, Ordering::SeqCst);
            Self::maybe_compaction(inner, &mut shard, task.partition)
        };
        inner.telemetry.record_compaction(
            sw,
            task.partition,
            task.out_seq,
            input_seqs.len() as u64,
            blob_bytes,
        );
        if let Some(durable) = &inner.durable {
            // Superseded input blobs are garbage once the replace record is
            // durable; a failed delete is counted, not fatal (the orphan
            // sweep at the next open removes the leftover).
            let policy = inner.io_policy();
            for seq in &input_seqs {
                policy.cleanup(
                    "cleanup",
                    vfs::remove_file(
                        "cleanup",
                        &durable.dir.join(segment_blob_name(task.partition, *seq)),
                    ),
                );
            }
        }
        Ok(next)
    }

    /// Compacts partition `p`: its sealed segments are summed on the union
    /// of their bucket boundaries and re-bucketed to the segment budget via
    /// the merge DP, leaving one segment.  A no-op with fewer than two
    /// segments, or while a background round is already running for the
    /// partition ([`SynopsisStore::flush`] settles it).
    ///
    /// The shard write lock is held only to reserve the round and to swap
    /// the merged segment in — the merge DP runs against cloned segment
    /// handles with no lock held, so ingest and queries proceed during
    /// compaction.
    pub fn compact_partition(&self, p: usize) -> Result<()> {
        self.inner.check_writable()?;
        let task = {
            let mut shard = self.write_shard(p);
            if shard.compacting || shard.segments.len() < 2 {
                return Ok(());
            }
            let inputs = shard
                .segments
                .iter()
                .map(|s| (s.seq, Arc::clone(&s.handle)))
                .collect();
            let out_seq = shard.next_seq;
            shard.next_seq += 1;
            shard.compacting = true;
            CompactTask {
                partition: p,
                out_seq,
                inputs,
            }
        };
        self.run_compactions(vec![task])
    }

    /// Compacts every partition, one pool task per partition (partitions
    /// are independent, so the result is identical to serial compaction).
    pub fn compact_all(&self) -> Result<()> {
        let results = pool::parallel_map((0..self.num_partitions()).collect(), |p| {
            self.compact_partition(p)
        });
        results.into_iter().collect()
    }

    /// Recombines the sealed per-partition synopses into one global
    /// `b`-bucket histogram via the partition-merge DP: the candidate cut
    /// points are exactly the partition/bucket boundaries, and partitions
    /// with no sealed data contribute a zero run.  Piece extraction runs one
    /// pool task per partition.  Live memtable records are **not** included
    /// — seal first for a full snapshot.
    pub fn merge_global(&self, b: usize) -> Result<Histogram> {
        let sw = self.inner.telemetry.maybe_start();
        let merged = self.merge_global_core(b);
        self.inner.telemetry.record_query(QueryOp::MergeGlobal, sw);
        merged
    }

    /// The untimed body of [`SynopsisStore::merge_global`] (the public
    /// wrapper only adds the query-latency observation).
    ///
    /// Memoised: the result is cached keyed on `(version, b)` (see
    /// `StoreInner::version`), so repeated merges over a quiet store are
    /// one mutex lock and a histogram clone — `O(b)`, not a re-run of the
    /// merge DP.  Any seal install or compaction swap bumps the version
    /// and the next merge recomputes; the cached value is always exactly
    /// what the recompute would produce (pinned by the
    /// `store_read_path` suite).
    fn merge_global_core(&self, b: usize) -> Result<Histogram> {
        if b == 0 {
            return Err(PdsError::InvalidParameter {
                message: "merge_global needs a bucket budget of at least 1".into(),
            });
        }
        // Read the version BEFORE extracting pieces: a structural commit
        // racing the computation can only make the stamp stale (a needless
        // later recompute), never a wrong cache hit.
        let v0 = self.inner.version.load(Ordering::SeqCst);
        {
            let cache = self
                .inner
                .merge_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = cache.as_ref() {
                if entry.version == v0 && entry.b == b {
                    self.inner.telemetry.record_merge_cache(true);
                    return Ok(entry.histogram.clone());
                }
            }
        }
        self.inner.telemetry.record_merge_cache(false);
        let per_partition = pool::parallel_map((0..self.num_partitions()).collect(), |p| {
            self.partition_pieces(p)
        });
        let mut pieces: Vec<Piece> = Vec::new();
        for (p, extracted) in per_partition.into_iter().enumerate() {
            match extracted? {
                Some(mut summed) => pieces.append(&mut summed),
                None => {
                    let (_, width) = self.inner.config.partitions.range(p);
                    pieces.push(Piece { width, value: 0.0 });
                }
            }
        }
        // More buckets than candidate cut ranges would silently clamp in
        // the DP and hand back fewer buckets than asked for; surface the
        // bad budget instead of a degenerate histogram.
        if b > pieces.len() {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "merge budget {b} exceeds the {} available synopsis piece(s); \
                     seal more data or lower b",
                    pieces.len()
                ),
            });
        }
        let merged = optimal_piecewise_histogram(&pieces, b)?;
        *self
            .inner
            .merge_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(MergeCache {
            version: v0,
            b,
            histogram: merged.clone(),
        });
        Ok(merged)
    }

    /// Estimated expected total frequency over the **global** inclusive
    /// item range `[lo, hi]`: sealed segments answer from their synopses,
    /// live memtables from their exact running expectations.  Read-locks
    /// only the shards overlapping the range.
    ///
    /// Total on the panic-free serving contract: a range lying (partly or
    /// wholly) outside the domain is clamped to it, an empty-domain store
    /// answers 0.0, and shard-lock poisoning is recovered from (see
    /// `read_shard`) — a network front-end can expose this path directly.
    pub fn range_estimate(&self, lo: usize, hi: usize) -> f64 {
        let sw = self.inner.telemetry.maybe_start();
        let total = self.range_estimate_core(lo, hi);
        self.inner.telemetry.record_query(QueryOp::Range, sw);
        total
    }

    /// The untimed body of [`SynopsisStore::range_estimate`], shared with
    /// [`SynopsisStore::estimate`] so a point query records one
    /// `op="estimate"` sample, never an extra `op="range_estimate"` one.
    /// Same panic-free serving contract as the public wrapper.
    fn range_estimate_core(&self, lo: usize, hi: usize) -> f64 {
        let Some((lo, hi)) = clamp_range(self.n(), lo, hi) else {
            return 0.0;
        };
        // `lo <= hi < n`, so both lookups are in-domain; degrade to an
        // empty answer rather than panic if that invariant ever breaks.
        let (Ok(first), Ok(last)) = (
            self.inner.config.partitions.partition_of(lo),
            self.inner.config.partitions.partition_of(hi),
        ) else {
            return 0.0;
        };
        let prune = self.inner.config.prune;
        let mut visited = 0u64;
        let mut pruned = 0u64;
        let mut total = 0.0;
        for p in first..=last {
            // Capture the shard's state under a brief read guard, then sum
            // off-guard: a lazily-backed handle's first touch reads its
            // synopsis block from disk, which must never run under a shard
            // lock.  The summation order is load-bearing — segments in
            // install order, then the live memtable, then each frozen
            // memtable individually (f64 addition is order- and
            // grouping-sensitive) — so the pruned, lazy and eager paths all
            // answer bitwise the same value (see `StoreConfig::prune` for
            // why skipping a fenced-out segment is exact).
            let Some(shard) = self.read_shard(p) else {
                continue;
            };
            let handles: Vec<Arc<SegmentHandle>> = shard
                .segments
                .iter()
                .map(|s| Arc::clone(&s.handle))
                .collect();
            let live = shard.memtable.range_sum(lo, hi);
            // A memtable frozen for an in-flight background seal still
            // carries its mass until the segment installs.
            let frozen_sums: Vec<f64> = shard
                .frozen
                .iter()
                .map(|(_, m)| m.range_sum(lo, hi))
                .collect();
            drop(shard);
            for handle in &handles {
                if prune && !handle.may_overlap(lo, hi) {
                    pruned += 1;
                    continue;
                }
                visited += 1;
                total += handle.range_sum(lo, hi);
            }
            total += live;
            for sum in frozen_sums {
                total += sum;
            }
        }
        self.inner.telemetry.record_scan(visited, pruned);
        total
    }

    /// The estimated expected frequency of one item.
    pub fn estimate(&self, item: usize) -> f64 {
        let sw = self.inner.telemetry.maybe_start();
        let value = self.range_estimate_core(item, item);
        self.inner.telemetry.record_query(QueryOp::Point, sw);
        value
    }

    /// An immutable point-in-time view of the whole store for serving
    /// queries: per partition, the `Arc`-cloned sealed-segment handles, the
    /// `Arc`-cloned frozen memtables and a copy of the live memtable, all
    /// captured under one brief read lock per shard (poison-recovering,
    /// see `read_shard`).  The view answers [`SnapshotView::range_estimate`]
    /// with **bitwise** the value the store itself would have answered at
    /// capture time, holds no locks, and is unaffected by later ingest —
    /// a network front-end can serve from it without ever holding a shard
    /// lock across I/O.
    pub fn snapshot_view(&self) -> SnapshotView {
        let sw = self.inner.telemetry.maybe_start();
        let view = self.snapshot_view_core();
        self.inner.telemetry.record_query(QueryOp::Snapshot, sw);
        view
    }

    /// The untimed body of [`SynopsisStore::snapshot_view`].
    ///
    /// Consistency: capturing shard by shard under per-shard read locks can
    /// interleave with a concurrent structural commit and observe partition
    /// `p` from *before* it and partition `q` from *after* it — a torn
    /// view (historically possible; now excluded).  The capture runs an
    /// optimistic loop against the store-wide structural version counter:
    /// read `v0`, capture every shard, re-read `v1` — equal versions prove
    /// no seal install or compaction swap landed inside the capture
    /// window, so the captured parts form one consistent cut.  Under
    /// sustained structural churn the loop falls back (after a bounded
    /// number of retries) to holding **all** shard read locks at once,
    /// acquired in ascending partition order: a capture that is consistent
    /// by construction and merely delays concurrent installs briefly.
    fn snapshot_view_core(&self) -> SnapshotView {
        const CAPTURE_RETRIES: usize = 8;
        for _ in 0..CAPTURE_RETRIES {
            let v0 = self.inner.version.load(Ordering::SeqCst);
            let parts = self.capture_parts();
            let v1 = self.inner.version.load(Ordering::SeqCst);
            if v0 == v1 {
                return self.view_from(parts);
            }
        }
        // Fallback: with every shard read-locked for the whole capture no
        // structural commit can interleave, so the cut is consistent.
        let guards: Vec<_> = self
            .inner
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let parts = guards.iter().map(|g| Self::capture_one(g)).collect();
        drop(guards);
        self.view_from(parts)
    }

    /// Captures one shard's contents as a [`ViewPartition`]: `Arc` clones
    /// for the segment handles and frozen memtables, one live-memtable
    /// copy.  No I/O, no allocation proportional to data volume.
    fn capture_one(shard: &Shard) -> ViewPartition {
        ViewPartition {
            segments: shard
                .segments
                .iter()
                .map(|s| Arc::clone(&s.handle))
                .collect(),
            memtable: shard.memtable.clone(),
            frozen: shard.frozen.iter().map(|(_, m)| Arc::clone(m)).collect(),
        }
    }

    /// Captures every shard one at a time under brief per-shard read
    /// locks.  The caller must validate cross-shard consistency (see
    /// `snapshot_view_core`) — a single pass on its own can tear.
    fn capture_parts(&self) -> Vec<ViewPartition> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                let shard = s.read().unwrap_or_else(|e| e.into_inner());
                Self::capture_one(&shard)
            })
            .collect()
    }

    /// Wraps captured parts into a [`SnapshotView`], stamping the store's
    /// partition spec and prune knob so the view answers queries exactly
    /// as the store would have at capture time.
    fn view_from(&self, parts: Vec<ViewPartition>) -> SnapshotView {
        SnapshotView {
            partitions: self.inner.config.partitions.clone(),
            prune: self.inner.config.prune,
            parts,
        }
    }

    /// Serialises the sealed state into the compact binary format.  Live
    /// memtable records are intentionally **not** persisted — the store
    /// refuses to serialise while unsealed data exists (including seals
    /// still in flight on background workers), so a snapshot can never
    /// silently drop records; call [`SynopsisStore::snapshot`] to seal and
    /// serialise in one step, or [`SynopsisStore::seal_all`] first.
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        if let Some(sealer) = &self.sealer {
            let state = sealer.queue.state.lock().expect("seal queue poisoned");
            if state.pending > 0 || state.error.is_some() {
                // An unacknowledged background failure also blocks
                // persistence: the failed seal's records were restored to a
                // memtable, but the error must reach the caller via
                // flush(), not vanish behind a snapshot.
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "store has {} background seal(s) in flight{}; call flush() before persisting",
                        state.pending,
                        if state.error.is_some() {
                            " and an unreported seal error"
                        } else {
                            ""
                        }
                    ),
                });
            }
        }
        let live = self.stats().live_records;
        if live > 0 {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "store has {live} unsealed records; call snapshot() or seal_all() before persisting"
                ),
            });
        }
        let mut w = ByteWriter::envelope(Self::BINARY_MAGIC, Self::BINARY_VERSION);
        let bounds = &self.inner.config.partitions.bounds;
        w.put_varint(bounds.len() as u64);
        let mut prev = 0u64;
        for &b in bounds {
            w.put_varint(b as u64 - prev);
            prev = b as u64;
        }
        w.put_varint(self.inner.config.seal_threshold as u64);
        w.put_varint(self.inner.config.segment_budget as u64);
        encode_synopsis_kind(&mut w, self.inner.config.synopsis);
        w.put_varint(self.inner.ingested.load(Ordering::Relaxed));
        w.put_varint(self.inner.seals.load(Ordering::Relaxed));
        w.put_varint(self.inner.split_tuples.load(Ordering::Relaxed));
        for shard in &self.inner.shards {
            // Capture the handles under a brief read guard, then encode
            // off-guard: the cold fallback below may lazily load a
            // synopsis block from disk, which must never run under a
            // shard lock.
            // A segment's handle plus its cached install-time blob bytes.
            type CapturedBlob = (Arc<SegmentHandle>, Option<Arc<Vec<u8>>>);
            let sealed: Vec<CapturedBlob> = {
                let shard = shard.read().unwrap_or_else(|e| e.into_inner());
                shard
                    .segments
                    .iter()
                    .map(|s| (Arc::clone(&s.handle), s.binary.clone()))
                    .collect()
            };
            w.put_varint(sealed.len() as u64);
            for (handle, binary) in sealed {
                // Installed segments carry their PDSG encoding from install
                // (or decode) time: the incremental-snapshot path — nothing
                // already serialised is serialised again.  The cold
                // fallback covers lazily reopened stores whose synopsis
                // block was never cached alongside the handle.
                let blob: Arc<Vec<u8>> = match binary {
                    Some(cached) => cached,
                    None => Arc::new(handle.load()?.to_binary()?),
                };
                w.put_varint(blob.len() as u64);
                w.put_bytes(&blob);
            }
        }
        Ok(w.into_bytes())
    }

    /// Seals every live memtable (waiting for background builds) and
    /// serialises the result: the "persist everything now" entry point.
    /// Sealing — rather than copying raw records into the snapshot — keeps
    /// the binary format segment-only and the write amplification bounded;
    /// records that must survive *without* being sealed into synopses
    /// belong to the write-ahead log ([`SynopsisStore::open_with_wal`]),
    /// which covers exactly the live/in-flight window this method closes.
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        self.seal_all()?;
        self.to_binary()
    }

    /// Reconstructs a store from [`SynopsisStore::to_binary`] output,
    /// rejecting truncation, version skew and segments that do not tile
    /// their partition with a [`PdsError`] — never a panic.
    pub fn from_binary(bytes: &[u8]) -> Result<Self> {
        let (mut r, version) = ByteReader::envelope(bytes, "synopsis store", Self::BINARY_MAGIC)?;
        if version != Self::BINARY_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "store binary version {version} is not supported (expected {})",
                    Self::BINARY_VERSION
                ),
            });
        }
        let bound_count = r.get_len(1 << 24)?;
        let mut bounds = Vec::with_capacity(bound_count);
        let mut acc = 0usize;
        for i in 0..bound_count {
            let delta = r.get_len(u32::MAX as usize)?;
            acc += delta;
            if i == 0 && delta != 0 {
                return Err(PdsError::InvalidParameter {
                    message: "store: partition bounds must start at 0".into(),
                });
            }
            bounds.push(acc);
        }
        let partitions = PartitionSpec::from_bounds(bounds)?;
        // Plain scalars, not allocation sizes: any value the writer accepted
        // must decode (the "never auto-seal" configs use huge thresholds).
        let seal_threshold = r.get_len(usize::MAX)?;
        let segment_budget = r.get_len(usize::MAX)?;
        let synopsis = decode_synopsis_kind(&mut r)?;
        let ingested = r.get_varint()?;
        let seals = r.get_varint()?;
        let split_tuples = r.get_varint()?;
        // The runtime knobs (compaction policy, durability tier) are not
        // part of the persistent format; a decoded store gets the defaults.
        let store = SynopsisStore::new(StoreConfig::new(
            partitions,
            seal_threshold,
            segment_budget,
            synopsis,
        ))?;
        for p in 0..store.num_partitions() {
            let count = r.get_len(1 << 24)?;
            let (start, width) = store.inner.config.partitions.range(p);
            let mut shard = store.write_shard(p);
            for seq in 0..count {
                let len = r.get_len(r.remaining())?;
                let blob = r.get_bytes(len)?;
                let segment = Segment::from_binary(blob)?;
                if segment.start() != start || segment.width() != width {
                    return Err(PdsError::InvalidParameter {
                        message: format!(
                            "segment [{}, {}] does not tile partition {p} ([{start}, {}])",
                            segment.start(),
                            segment.end(),
                            start + width - 1
                        ),
                    });
                }
                shard.segments.push(SealedSegment {
                    seq: seq as u64,
                    handle: Arc::new(SegmentHandle::eager(Arc::new(segment))),
                    binary: Some(Arc::new(blob.to_vec())),
                });
            }
            shard.next_seq = count as u64;
        }
        r.finish()?;
        store.inner.ingested.store(ingested, Ordering::Relaxed);
        store.inner.seals.store(seals, Ordering::Relaxed);
        store
            .inner
            .split_tuples
            .store(split_tuples, Ordering::Relaxed);
        Ok(store)
    }
}

fn encode_synopsis_kind(w: &mut ByteWriter, kind: SynopsisKind) {
    match kind {
        SynopsisKind::Histogram(metric) => {
            w.put_u8(0);
            match metric {
                ErrorMetric::Sse => w.put_u8(0),
                ErrorMetric::Ssre { c } => {
                    w.put_u8(1);
                    w.put_f64(c);
                }
                ErrorMetric::Sae => w.put_u8(2),
                ErrorMetric::Sare { c } => {
                    w.put_u8(3);
                    w.put_f64(c);
                }
                ErrorMetric::Mae => w.put_u8(4),
                ErrorMetric::Mare { c } => {
                    w.put_u8(5);
                    w.put_f64(c);
                }
            }
        }
        SynopsisKind::Wavelet => w.put_u8(1),
    }
}

fn decode_synopsis_kind(r: &mut ByteReader<'_>) -> Result<SynopsisKind> {
    match r.get_u8()? {
        0 => {
            let metric = match r.get_u8()? {
                0 => ErrorMetric::Sse,
                1 => ErrorMetric::Ssre { c: r.get_f64()? },
                2 => ErrorMetric::Sae,
                3 => ErrorMetric::Sare { c: r.get_f64()? },
                4 => ErrorMetric::Mae,
                5 => ErrorMetric::Mare { c: r.get_f64()? },
                other => {
                    return Err(PdsError::InvalidParameter {
                        message: format!("store: unknown error metric tag {other}"),
                    })
                }
            };
            Ok(SynopsisKind::Histogram(metric))
        }
        1 => Ok(SynopsisKind::Wavelet),
        other => Err(PdsError::InvalidParameter {
            message: format!("store: unknown synopsis kind tag {other}"),
        }),
    }
}

/// The one bound-handling contract shared by every read path: clamps the
/// inclusive query range `[lo, hi]` to the store domain `[0, n)`.
/// Returns `None` — the caller answers `0.0` — when the domain is empty,
/// `lo` lies at or past the domain end, or the range is inverted
/// (`hi < lo`); otherwise `Some((lo, min(hi, n - 1)))`.  Factoring this
/// into one helper keeps [`SynopsisStore::range_estimate`],
/// [`SynopsisStore::estimate`] and [`SnapshotView::range_estimate`] from
/// drifting apart on edge cases — historically each open-coded its own
/// clamp — and the server pins the resulting wire behaviour: an
/// out-of-domain `RANGE`/`EST` answers `OK 0`, never an error.
fn clamp_range(n: usize, lo: usize, hi: usize) -> Option<(usize, usize)> {
    if n == 0 || lo >= n || hi < lo {
        return None;
    }
    Some((lo, hi.min(n - 1)))
}

/// One partition of a [`SnapshotView`]: the `Arc`-shared sealed-segment
/// handles, the `Arc`-shared frozen memtables and a copy of the live
/// memtable at capture time.
#[derive(Debug, Clone)]
struct ViewPartition {
    segments: Vec<Arc<SegmentHandle>>,
    memtable: Memtable,
    frozen: Vec<Arc<Memtable>>,
}

/// An immutable point-in-time view of a [`SynopsisStore`], captured by
/// [`SynopsisStore::snapshot_view`]: answers point/range estimates
/// **bitwise-identically** to the store at capture time, holds no locks,
/// shares the sealed segments (and frozen memtables) by `Arc` rather than
/// copying them, and is isolated from every later ingest, seal or
/// compaction.  The serving surface for read paths that must never block
/// writers or hold a shard lock across I/O.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    partitions: PartitionSpec,
    /// The store's [`StoreConfig::prune`] knob at capture time, so the
    /// view prunes (or not) exactly as its store would have.
    prune: bool,
    parts: Vec<ViewPartition>,
}

impl SnapshotView {
    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.partitions.n()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Sealed segments captured by the view, summed over all partitions.
    pub fn segment_count(&self) -> usize {
        self.parts.iter().map(|p| p.segments.len()).sum()
    }

    /// Records still unsealed at capture time (live + frozen memtables).
    pub fn live_records(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.memtable.len() as u64 + p.frozen.iter().map(|m| m.len() as u64).sum::<u64>())
            .sum()
    }

    /// Estimated expected total frequency over the inclusive item range
    /// `[lo, hi]` **at capture time**: same clamping, same summation order
    /// and therefore bitwise the same value as
    /// [`SynopsisStore::range_estimate`] on the store the view was taken
    /// from.  Panic-free on any input.
    pub fn range_estimate(&self, lo: usize, hi: usize) -> f64 {
        let Some((lo, hi)) = clamp_range(self.n(), lo, hi) else {
            return 0.0;
        };
        let (Ok(first), Ok(last)) = (
            self.partitions.partition_of(lo),
            self.partitions.partition_of(hi),
        ) else {
            return 0.0;
        };
        // Same clamp, same prune gate, same summation order as
        // `range_estimate_core`, so the view's answer is bitwise the
        // store's answer at capture time.  Views intentionally do not
        // record scan telemetry: they are detached from the store and may
        // outlive it.
        let mut total = 0.0;
        for p in first..=last {
            let Some(part) = self.parts.get(p) else {
                continue;
            };
            for handle in &part.segments {
                if self.prune && !handle.may_overlap(lo, hi) {
                    continue;
                }
                total += handle.range_sum(lo, hi);
            }
            total += part.memtable.range_sum(lo, hi);
            for frozen in &part.frozen {
                total += frozen.range_sum(lo, hi);
            }
        }
        total
    }

    /// The estimated expected frequency of one item at capture time.
    pub fn estimate(&self, item: usize) -> f64 {
        self.range_estimate(item, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::stream::{basic_stream, BasicStreamConfig};

    fn config(n: usize, parts: usize, threshold: usize) -> StoreConfig {
        StoreConfig::new(
            PartitionSpec::uniform(n, parts).unwrap(),
            threshold,
            8,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        )
    }

    #[test]
    fn partition_spec_routes_and_validates() {
        let spec = PartitionSpec::uniform(10, 3).unwrap();
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.n(), 10);
        assert_eq!(spec.range(0), (0, 3));
        assert_eq!(spec.range(2), (6, 4));
        assert_eq!(spec.partition_of(0).unwrap(), 0);
        assert_eq!(spec.partition_of(5).unwrap(), 1);
        assert_eq!(spec.partition_of(9).unwrap(), 2);
        assert!(spec.partition_of(10).is_err());
        assert!(PartitionSpec::uniform(2, 3).is_err());
        assert!(PartitionSpec::from_bounds(vec![1, 5]).is_err());
        assert!(PartitionSpec::from_bounds(vec![0, 5, 5]).is_err());
        assert!(PartitionSpec::from_bounds(vec![0]).is_err());
    }

    #[test]
    fn ingest_routes_seals_and_serves() {
        let store = SynopsisStore::new(config(12, 3, 4)).unwrap();
        // Exactly threshold records into partition 0 trigger an auto-seal.
        for i in 0..4 {
            store
                .ingest(StreamRecord::Basic {
                    item: i % 4,
                    prob: 0.5,
                })
                .unwrap();
        }
        assert_eq!(store.segments(0).len(), 1);
        assert!(store.memtable_snapshot(0).is_empty());
        // Live records in another partition are served exactly.
        store
            .ingest(StreamRecord::Basic { item: 8, prob: 0.9 })
            .unwrap();
        assert!((store.range_estimate(8, 8) - 0.9).abs() < 1e-12);
        // The sealed partition serves from its synopsis; with 8 buckets over
        // width 4 the histogram is exact.
        assert!((store.range_estimate(0, 3) - 2.0).abs() < 1e-9);
        let stats = store.stats();
        assert_eq!(stats.ingested_records, 5);
        assert_eq!(stats.live_records, 1);
        assert_eq!(stats.seals, 1);
        assert_eq!(stats.segments, 1);
    }

    #[test]
    fn batch_ingest_matches_serial_ingest_exactly() {
        let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
            n: 48,
            skew: 0.6,
            seed: 77,
        })
        .take(500)
        .chain([
            StreamRecord::Alternatives(vec![(3, 0.25), (40, 0.5)]),
            StreamRecord::ValueDistribution {
                item: 9,
                entries: vec![(2.0, 0.5)],
            },
        ])
        .collect();
        let serial = SynopsisStore::new(config(48, 4, 64)).unwrap();
        serial.ingest_all(records.iter().cloned()).unwrap();
        let batched = SynopsisStore::new(config(48, 4, 64)).unwrap();
        batched.ingest_batch(records).unwrap();
        assert_eq!(batched.stats(), serial.stats());
        serial.seal_all().unwrap();
        batched.seal_all().unwrap();
        assert_eq!(batched.to_binary().unwrap(), serial.to_binary().unwrap());
    }

    #[test]
    fn background_sealing_matches_inline_sealing_byte_for_byte() {
        let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
            n: 32,
            skew: 0.8,
            seed: 5,
        })
        .take(400)
        .collect();
        let inline = SynopsisStore::new(config(32, 4, 16)).unwrap();
        inline.ingest_all(records.iter().cloned()).unwrap();
        inline.seal_all().unwrap();

        let background = SynopsisStore::new(config(32, 4, 16))
            .unwrap()
            .with_background_sealing(3);
        background.ingest_all(records.iter().cloned()).unwrap();
        background.seal_all().unwrap();
        assert_eq!(background.stats(), inline.stats());
        assert_eq!(background.to_binary().unwrap(), inline.to_binary().unwrap());
    }

    #[test]
    fn cross_partition_x_tuples_are_split_preserving_marginals() {
        let store = SynopsisStore::new(config(12, 3, 100)).unwrap();
        store
            .ingest(StreamRecord::Alternatives(vec![
                (1, 0.25),
                (5, 0.25),
                (10, 0.5),
            ]))
            .unwrap();
        assert_eq!(store.stats().split_tuples, 1);
        assert!((store.range_estimate(1, 1) - 0.25).abs() < 1e-12);
        assert!((store.range_estimate(5, 5) - 0.25).abs() < 1e-12);
        assert!((store.range_estimate(10, 10) - 0.5).abs() < 1e-12);
        assert!((store.range_estimate(0, 11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compaction_preserves_the_summed_estimates_when_lossless() {
        let store = SynopsisStore::new(config(8, 2, 100)).unwrap();
        // Two seal rounds for partition 0 produce two segments whose
        // histograms are exact (budget 8 >= width 4).
        for round in 0..2 {
            for i in 0..4 {
                store
                    .ingest(StreamRecord::Basic {
                        item: i,
                        prob: 0.25 * (round + 1) as f64,
                    })
                    .unwrap();
            }
            store.seal_partition(0).unwrap();
        }
        assert_eq!(store.segments(0).len(), 2);
        let before: Vec<f64> = (0..4).map(|i| store.estimate(i)).collect();
        store.compact_partition(0).unwrap();
        assert_eq!(store.segments(0).len(), 1);
        let after: Vec<f64> = (0..4).map(|i| store.estimate(i)).collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9);
        }
        assert_eq!(store.segments(0)[0].records(), 8);
        // Compacting a single segment is a no-op.
        store.compact_partition(0).unwrap();
        assert_eq!(store.segments(0).len(), 1);
    }

    #[test]
    fn merge_global_covers_empty_partitions_with_zero_runs() {
        let store = SynopsisStore::new(config(12, 3, 100)).unwrap();
        for i in 0..4 {
            store
                .ingest(StreamRecord::Basic {
                    item: i,
                    prob: 0.75,
                })
                .unwrap();
        }
        store.seal_all().unwrap();
        let merged = store.merge_global(4).unwrap();
        assert_eq!(merged.n(), 12);
        assert!((merged.estimates().iter().sum::<f64>() - 3.0).abs() < 1e-9);
        // Items in the never-touched partitions estimate to ~zero.
        assert!(merged.estimate(11).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip_preserves_queries_and_stats() {
        let store = SynopsisStore::new(config(32, 4, 16)).unwrap();
        let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
            n: 32,
            skew: 0.7,
            seed: 5,
        })
        .take(200)
        .collect();
        store.ingest_all(records).unwrap();
        // Unsealed data blocks persistence.
        if store.stats().live_records > 0 {
            assert!(store.to_binary().is_err());
        }
        store.seal_all().unwrap();
        let bytes = store.to_binary().unwrap();
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert_eq!(back.stats(), store.stats());
        assert_eq!(back.config(), store.config());
        for (lo, hi) in [(0usize, 31usize), (3, 17), (20, 20), (9, 30)] {
            assert!((back.range_estimate(lo, hi) - store.range_estimate(lo, hi)).abs() < 1e-12);
        }
        // Corruption surfaces as errors, never panics.
        for cut in 0..bytes.len().min(64) {
            assert!(SynopsisStore::from_binary(&bytes[..cut]).is_err());
        }
        assert!(SynopsisStore::from_binary(&bytes[..bytes.len() - 1]).is_err());
        let mut skewed = bytes.clone();
        skewed[4] = 9;
        assert!(SynopsisStore::from_binary(&skewed).is_err());
    }

    #[test]
    fn snapshot_seals_live_records_first() {
        let store = SynopsisStore::new(config(16, 2, 1000)).unwrap();
        store
            .ingest(StreamRecord::Basic { item: 3, prob: 0.5 })
            .unwrap();
        // to_binary still refuses while records are live ...
        assert!(store.to_binary().is_err());
        // ... but snapshot seals and serialises in one step.
        let bytes = store.snapshot().unwrap();
        assert_eq!(store.stats().live_records, 0);
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert!((back.range_estimate(3, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wal_replay_recovers_live_and_in_flight_records() {
        let dir = std::env::temp_dir().join(format!("pds-store-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = SynopsisStore::open_with_wal(config(16, 2, 100), &dir).unwrap();
            for i in 0..5 {
                store
                    .ingest(StreamRecord::Basic { item: i, prob: 0.5 })
                    .unwrap();
            }
            store
                .ingest(StreamRecord::Alternatives(vec![(1, 0.25), (12, 0.5)]))
                .unwrap();
            assert_eq!(store.stats().live_records, 7); // x-tuple split into 2
                                                       // Dropped without sealing: records survive only in the WAL.
        }
        // Simulate a crash mid-seal on top: a frozen log whose segment never
        // landed must replay as live records too.
        std::fs::write(
            dir.join("wal-1.7.sealing"),
            crate::wal::frame_record(&StreamRecord::Basic {
                item: 14,
                prob: 0.25,
            })
            .unwrap(),
        )
        .unwrap();
        let reopened = SynopsisStore::open_with_wal(config(16, 2, 100), &dir).unwrap();
        assert_eq!(reopened.stats().live_records, 8);
        for (item, expected) in [(0usize, 0.5), (1, 0.75), (4, 0.5), (12, 0.5), (14, 0.25)] {
            assert!(
                (reopened.range_estimate(item, item) - expected).abs() < 1e-12,
                "item {item}"
            );
        }
        // Sealing retires the logs and installs durable segment blobs: a
        // third open replays no live records but reloads every sealed
        // segment through the manifest — sealed state now survives a crash
        // without any snapshot.
        reopened.seal_all().unwrap();
        drop(reopened);
        let after_seal = SynopsisStore::open_with_wal(config(16, 2, 100), &dir).unwrap();
        assert_eq!(after_seal.stats().live_records, 0);
        assert_eq!(after_seal.stats().segments, 2);
        for (item, expected) in [(0usize, 0.5), (1, 0.75), (4, 0.5), (12, 0.5), (14, 0.25)] {
            assert!(
                (after_seal.range_estimate(item, item) - expected).abs() < 1e-9,
                "item {item} after reopen-from-blobs"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_wal_replay_destroys_nothing() {
        // A corrupt log in one partition must abort the open while leaving
        // every other partition's log intact for a later attempt.
        let dir =
            std::env::temp_dir().join(format!("pds-store-wal-partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = SynopsisStore::open_with_wal(config(16, 2, 100), &dir).unwrap();
            store
                .ingest(StreamRecord::Basic { item: 2, prob: 0.5 })
                .unwrap();
        }
        // Corrupt partition 1's live log by hand (a framed line whose
        // checksum does not match its payload — mid-file, so the torn-tail
        // lenience does not apply).
        let good = crate::wal::frame_record(&StreamRecord::Basic {
            item: 10,
            prob: 0.5,
        })
        .unwrap();
        std::fs::write(
            dir.join("wal-1.log"),
            format!("{}{good}", good.replace("0.5", "0.7")),
        )
        .unwrap();
        assert!(SynopsisStore::open_with_wal(config(16, 2, 100), &dir).is_err());
        // Partition 0's records survived the failed recovery.
        std::fs::write(
            dir.join("wal-1.log"),
            crate::wal::frame_record(&StreamRecord::Basic {
                item: 9,
                prob: 0.25,
            })
            .unwrap(),
        )
        .unwrap();
        let recovered = SynopsisStore::open_with_wal(config(16, 2, 100), &dir).unwrap();
        assert!((recovered.range_estimate(2, 2) - 0.5).abs() < 1e-12);
        assert!((recovered.range_estimate(9, 9) - 0.25).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segments_survive_reopen_through_manifest_and_blobs() {
        let dir = std::env::temp_dir().join(format!("pds-store-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = config(16, 2, 4);
        {
            let store = SynopsisStore::open_with_wal(cfg.clone(), &dir).unwrap();
            // Two auto-seals in partition 0, one manual in partition 1,
            // plus two live records.
            for i in 0..8 {
                store
                    .ingest(StreamRecord::Basic {
                        item: i % 4,
                        prob: 0.5,
                    })
                    .unwrap();
            }
            store
                .ingest(StreamRecord::Basic {
                    item: 9,
                    prob: 0.25,
                })
                .unwrap();
            store.seal_partition(1).unwrap();
            store
                .ingest(StreamRecord::Basic {
                    item: 2,
                    prob: 0.125,
                })
                .unwrap();
            store
                .ingest(StreamRecord::Basic {
                    item: 14,
                    prob: 0.5,
                })
                .unwrap();
            assert_eq!(store.stats().segments, 3);
            assert_eq!(store.stats().live_records, 2);
            // Blobs and manifest exist without any snapshot() call.
            assert!(dir.join("MANIFEST").exists());
            assert!(dir.join("seg-0-0.bin").exists());
            assert!(dir.join("seg-0-1.bin").exists());
            assert!(dir.join("seg-1-0.bin").exists());
        }
        // Reopen: segments come back from blobs, live records from the WAL.
        let reopened = SynopsisStore::open_with_wal(cfg, &dir).unwrap();
        let stats = reopened.stats();
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.live_records, 2);
        assert_eq!(stats.seals, 3);
        assert_eq!(stats.ingested_records, 11);
        // Dyadic probabilities: the estimates are exact, so equality is
        // bitwise.
        assert_eq!(reopened.range_estimate(0, 0), 1.0);
        assert_eq!(reopened.range_estimate(2, 2), 1.0 + 0.125);
        assert_eq!(reopened.range_estimate(9, 9), 0.25);
        assert_eq!(reopened.range_estimate(14, 14), 0.5);
        // A fresh seal continues the sequence without colliding.
        reopened.seal_all().unwrap();
        assert_eq!(reopened.stats().live_records, 0);
        assert!(dir.join("seg-0-2.bin").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_merges_full_tiers_and_preserves_estimates() {
        let mut cfg = config(8, 2, 4);
        cfg.compaction = Some(crate::CompactionPolicy {
            min_merge: 2,
            tier_ratio: 2.0,
        });
        let store = SynopsisStore::new(cfg).unwrap();
        // Eight records into partition 0 = two threshold seals; the second
        // install fills the 2-segment tier and auto-compacts to one.
        for round in 0..2 {
            for i in 0..4 {
                store
                    .ingest(StreamRecord::Basic {
                        item: i,
                        prob: 0.25 * (round + 1) as f64,
                    })
                    .unwrap();
            }
        }
        assert_eq!(store.segments(0).len(), 1, "tier of two auto-compacted");
        assert_eq!(store.segments(0)[0].records(), 8);
        for i in 0..4 {
            assert!((store.estimate(i) - 0.75).abs() < 1e-9, "item {i}");
        }
        // The compacted output participates in the next tier: two more
        // seals (8 records, similar size) eventually merge with it.
        for _ in 0..2 {
            for i in 0..4 {
                store
                    .ingest(StreamRecord::Basic { item: i, prob: 0.5 })
                    .unwrap();
            }
        }
        let sizes: Vec<u64> = store.segments(0).iter().map(Segment::records).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 16, "no records lost: {sizes:?}");
        for i in 0..4 {
            assert!((store.estimate(i) - 1.75).abs() < 1e-9, "item {i}");
        }
    }

    #[test]
    fn durable_auto_compaction_retires_superseded_blobs() {
        let dir =
            std::env::temp_dir().join(format!("pds-store-compact-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = config(8, 1, 4);
        cfg.compaction = Some(crate::CompactionPolicy {
            min_merge: 2,
            tier_ratio: 4.0,
        });
        {
            let store = SynopsisStore::open_with_wal(cfg.clone(), &dir).unwrap();
            for round in 0..2u32 {
                for i in 0..4 {
                    store
                        .ingest(StreamRecord::Basic {
                            item: i + 4 * ((round as usize) % 2),
                            prob: 0.5,
                        })
                        .unwrap();
                }
            }
            assert_eq!(store.segments(0).len(), 1);
            // Inputs 0 and 1 merged into seq 2: their blobs are gone, the
            // output's blob is live.
            assert!(!dir.join("seg-0-0.bin").exists());
            assert!(!dir.join("seg-0-1.bin").exists());
            assert!(dir.join("seg-0-2.bin").exists());
        }
        let reopened = SynopsisStore::open_with_wal(cfg, &dir).unwrap();
        assert_eq!(reopened.stats().segments, 1);
        assert_eq!(reopened.range_estimate(0, 7), 4.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wavelet_store_lifecycle() {
        let store = SynopsisStore::new(StoreConfig::new(
            PartitionSpec::uniform(16, 2).unwrap(),
            8,
            4,
            SynopsisKind::Wavelet,
        ))
        .unwrap();
        let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
            n: 16,
            skew: 0.5,
            seed: 9,
        })
        .take(40)
        .collect();
        store.ingest_all(records).unwrap();
        store.seal_all().unwrap();
        store.compact_all().unwrap();
        for p in 0..2 {
            assert_eq!(store.segments(p).len().min(1), store.segments(p).len());
        }
        let merged = store.merge_global(6).unwrap();
        assert_eq!(merged.n(), 16);
        let bytes = store.to_binary().unwrap();
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert!((back.range_estimate(0, 15) - store.range_estimate(0, 15)).abs() < 1e-12);
    }

    #[test]
    fn huge_seal_thresholds_survive_the_binary_round_trip() {
        // The "never auto-seal" configs (benches, manual-seal tests) use
        // near-usize::MAX thresholds; the snapshot must round-trip them.
        let store = SynopsisStore::new(StoreConfig::new(
            PartitionSpec::uniform(8, 2).unwrap(),
            usize::MAX >> 1,
            4,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        ))
        .unwrap();
        store
            .ingest(StreamRecord::Basic { item: 1, prob: 0.5 })
            .unwrap();
        store.seal_all().unwrap();
        let bytes = store.to_binary().unwrap();
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert_eq!(back.config(), store.config());
        assert_eq!(back.range_estimate(0, 7), store.range_estimate(0, 7));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let spec = PartitionSpec::uniform(8, 2).unwrap();
        assert!(
            SynopsisStore::new(StoreConfig::new(spec.clone(), 0, 4, SynopsisKind::Wavelet))
                .is_err()
        );
        assert!(SynopsisStore::new(StoreConfig::new(spec, 4, 0, SynopsisKind::Wavelet)).is_err());
    }

    #[test]
    fn empty_domain_store_answers_zero_not_panic() {
        // Regression: `estimate(0)` used to clamp `hi` to 0 via
        // `n().saturating_sub(1)` and then die on
        // `partition_of(lo).expect("lo in domain")`.  A degenerate spec is
        // only constructible in-module (from_bounds demands two bounds),
        // which is exactly how a decoder bug or future refactor would
        // produce it — the query path must shrug, not crash.
        let spec = PartitionSpec { bounds: vec![0] };
        assert_eq!(spec.n(), 0);
        assert_eq!(spec.len(), 0);
        let store = SynopsisStore::new(StoreConfig::new(
            spec,
            4,
            4,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        ))
        .unwrap();
        assert_eq!(store.n(), 0);
        assert_eq!(store.estimate(0), 0.0);
        assert_eq!(store.range_estimate(0, 0), 0.0);
        assert_eq!(store.range_estimate(0, usize::MAX), 0.0);
        assert_eq!(store.stats().live_records, 0);
        let view = store.snapshot_view();
        assert_eq!(view.estimate(0), 0.0);
        assert_eq!(view.range_estimate(3, 99), 0.0);
    }

    #[test]
    fn out_of_domain_ranges_clamp_to_zero() {
        let store = SynopsisStore::new(config(16, 4, 1 << 20)).unwrap();
        store
            .ingest(StreamRecord::Basic { item: 2, prob: 0.5 })
            .unwrap();
        // Both endpoints past the domain: nothing to sum.
        assert_eq!(store.range_estimate(16, 20), 0.0);
        assert_eq!(store.estimate(usize::MAX), 0.0);
        // `lo` in domain, `hi` clamped: the in-domain prefix still answers.
        assert!((store.range_estimate(0, usize::MAX) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn poisoned_shard_still_answers_queries() {
        let store = SynopsisStore::new(config(16, 2, 4)).unwrap();
        for i in 0..8 {
            store
                .ingest(StreamRecord::Basic {
                    item: i % 16,
                    prob: 0.5,
                })
                .unwrap();
        }
        let before = store.range_estimate(0, 15);
        let stats_before = store.stats();
        // Poison shard 0: a thread panics while holding the write lock.
        let lock = &store.inner.shards[0];
        let poisoned = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = lock.write().unwrap();
                panic!("poison the shard on purpose");
            })
            .join()
            .is_err()
        });
        assert!(poisoned);
        assert!(lock.is_poisoned(), "the write lock must now be poisoned");
        // Read-only paths recover instead of propagating the panic.
        assert_eq!(store.range_estimate(0, 15), before);
        assert_eq!(store.estimate(2), store.estimate(2));
        let stats_after = store.stats();
        assert_eq!(stats_after.live_records, stats_before.live_records);
        assert!(store.partition_pieces(0).is_ok());
        let view = store.snapshot_view();
        assert_eq!(view.range_estimate(0, 15), before);
        let _ = store.memtable_snapshot(0);
        let _ = store.segments(0);
        let clone = store.clone();
        assert_eq!(clone.range_estimate(0, 15), before);
    }

    #[test]
    fn merge_global_rejects_zero_budget() {
        let store = SynopsisStore::new(config(16, 4, 2)).unwrap();
        store
            .ingest_all(
                basic_stream(BasicStreamConfig {
                    n: 16,
                    skew: 0.5,
                    seed: 9,
                })
                .take(24),
            )
            .unwrap();
        store.seal_all().unwrap();
        assert!(matches!(
            store.merge_global(0),
            Err(PdsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn merge_global_rejects_budget_over_available_pieces() {
        // No sealed data: every partition contributes exactly one zero-run
        // piece, so the available piece count is the partition count.
        let store = SynopsisStore::new(config(16, 4, 1 << 20)).unwrap();
        let merged = store.merge_global(4).unwrap();
        assert_eq!(merged.n(), 16);
        assert!(matches!(
            store.merge_global(5),
            Err(PdsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            store.merge_global(usize::MAX),
            Err(PdsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn snapshot_view_is_bitwise_equal_and_isolated() {
        let store = SynopsisStore::new(config(64, 4, 8)).unwrap();
        store
            .ingest_all(
                basic_stream(BasicStreamConfig {
                    n: 64,
                    skew: 0.5,
                    seed: 41,
                })
                .take(300),
            )
            .unwrap();
        let view = store.snapshot_view();
        assert_eq!(view.n(), 64);
        assert_eq!(view.num_partitions(), 4);
        // Bitwise equality against the live store on a sweep of ranges,
        // including clamped and inverted ones.
        for lo in (0..64).step_by(7) {
            for hi in [lo, lo + 3, 63, 200] {
                assert_eq!(
                    view.range_estimate(lo, hi).to_bits(),
                    store.range_estimate(lo, hi).to_bits(),
                    "view must answer bitwise-identically at [{lo}, {hi}]"
                );
            }
        }
        let frozen_answer = view.range_estimate(0, 63);
        let live_before = store.range_estimate(0, 63);
        // Later ingest and sealing change the store, never the view.
        store
            .ingest_all(
                basic_stream(BasicStreamConfig {
                    n: 64,
                    skew: 0.5,
                    seed: 42,
                })
                .take(100),
            )
            .unwrap();
        store.seal_all().unwrap();
        assert!(store.range_estimate(0, 63) > live_before);
        assert_eq!(
            view.range_estimate(0, 63).to_bits(),
            frozen_answer.to_bits()
        );
        assert!(view.live_records() + view.segment_count() as u64 > 0);
    }

    #[test]
    fn stats_json_round_trips_and_rejects_skew() {
        let store = SynopsisStore::new(config(12, 3, 4)).unwrap();
        for i in 0..7 {
            store
                .ingest(StreamRecord::Basic {
                    item: i % 12,
                    prob: 0.5,
                })
                .unwrap();
        }
        store
            .ingest(StreamRecord::Alternatives(vec![(0, 0.25), (11, 0.5)]))
            .unwrap();
        let stats = store.stats();
        let json = stats.to_json().unwrap();
        // Single line (the server sends it as one `OK <json>` reply) with
        // the versioned envelope shape.
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"version\":1,"));
        assert_eq!(StoreStats::from_json(&json).unwrap(), stats);
        // Version skew and malformed payloads are errors, not panics.
        assert!(StoreStats::from_json(&json.replace("\"version\":1", "\"version\":99")).is_err());
        assert!(StoreStats::from_json("not json").is_err());
        assert!(StoreStats::from_json("{\"version\":1}").is_err());
    }

    #[test]
    fn clone_seals_counter_excludes_in_flight_freezes() {
        let store = SynopsisStore::new(config(12, 3, 100)).unwrap();
        for i in 0..9 {
            store
                .ingest(StreamRecord::Basic {
                    item: i % 12,
                    prob: 0.5,
                })
                .unwrap();
        }
        // One completed seal in partition 0, then a freeze in partition 1
        // held in-flight by hand (exactly the state a clone racing a
        // background seal observes).
        store.seal_partition(0).unwrap();
        let task = {
            let mut shard = store.write_shard(1);
            store.freeze(1, &mut shard).unwrap().unwrap()
        };
        assert_eq!(store.stats().seals, 2, "the in-flight freeze is counted");
        let cloned = store.clone();
        let stats = cloned.stats();
        // The folded-back freeze is no longer a seal of the clone: every
        // counted seal has its installed segment present.
        assert_eq!(stats.seals, 1);
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.seals, stats.segments as u64);
        // No records were lost: the frozen memtable's mass is live again.
        assert_eq!(stats.ingested_records, 9);
        // Partition 0 sealed its 4 records (items 0..4); the other 5 are
        // live again after the fold-back.
        assert_eq!(stats.live_records, 5);
        for lo in 0..12 {
            assert_eq!(
                cloned.range_estimate(lo, 11).to_bits(),
                store.range_estimate(lo, 11).to_bits()
            );
        }
        // Settle the original so its worker state stays consistent.
        let mut shard = store.write_shard(1);
        SynopsisStore::unfreeze(&store.inner, &mut shard, task);
        drop(shard);
        assert_eq!(store.stats().seals, 1);
    }

    #[test]
    fn render_metrics_exposes_store_series_and_events() {
        let mut cfg = config(12, 3, 4);
        cfg.compaction = Some(CompactionPolicy {
            min_merge: 2,
            tier_ratio: 2.0,
        });
        let store = SynopsisStore::new(cfg).unwrap();
        for i in 0..24 {
            store
                .ingest(StreamRecord::Basic {
                    item: i % 4,
                    prob: 0.5,
                })
                .unwrap();
        }
        let _ = store.estimate(0);
        let _ = store.range_estimate(0, 11);
        let _ = store.snapshot_view();
        store.seal_all().unwrap();
        let text = store.render_metrics();
        assert!(text.contains("pds_store_telemetry_enabled 1"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"0\"} 24"));
        assert!(text.contains("pds_store_freezes_total"));
        assert!(text.contains("pds_store_query_seconds_count{op=\"estimate\"} 1"));
        assert!(text.contains("pds_store_query_seconds_count{op=\"range_estimate\"} 1"));
        assert!(text.contains("pds_store_query_seconds_count{op=\"snapshot_view\"} 1"));
        assert!(text.contains("pds_store_ingested_records_total 24"));
        assert!(text.contains("pds_store_compaction_rounds_total"));
        let events = store.render_events();
        assert!(
            events.iter().any(|e| e.contains("seal-installed")),
            "{events:?}"
        );
        assert!(
            events.iter().any(|e| e.contains("compaction-committed")),
            "{events:?}"
        );

        // With the knob off the same workload records nothing.
        let mut cfg = config(12, 3, 4);
        cfg.telemetry = false;
        let quiet = SynopsisStore::new(cfg).unwrap();
        for i in 0..8 {
            quiet
                .ingest(StreamRecord::Basic {
                    item: i % 12,
                    prob: 0.5,
                })
                .unwrap();
        }
        let _ = quiet.estimate(0);
        let text = quiet.render_metrics();
        assert!(text.contains("pds_store_telemetry_enabled 0"));
        assert!(text.contains("pds_store_ingest_records_total{partition=\"0\"} 0"));
        assert!(text.contains("pds_store_query_seconds_count{op=\"estimate\"} 0"));
        // The stats-derived series still report the real counters.
        assert!(text.contains("pds_store_ingested_records_total 8"));
        assert!(quiet.render_events().is_empty());
    }
}
