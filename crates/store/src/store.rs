//! The partitioned synopsis store: routing, sealing, compaction, queries
//! and whole-store persistence.

use std::collections::BTreeMap;

use pds_core::binio::{ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};
use pds_core::metrics::ErrorMetric;
use pds_core::model::ValuePdfModel;
use pds_core::stream::StreamRecord;
use pds_histogram::merge::{optimal_piecewise_histogram, sum_pieces, Piece};
use pds_histogram::Histogram;
use pds_wavelet::build_sse_wavelet;

use crate::memtable::Memtable;
use crate::segment::{Segment, SegmentSynopsis, SynopsisKind};

/// A partition of the item domain `[0, n)` into contiguous ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Ascending boundary positions: partition `i` covers
    /// `[bounds[i], bounds[i+1])`.
    bounds: Vec<usize>,
}

impl PartitionSpec {
    /// Builds a spec from explicit boundaries (`bounds[0] == 0`, strictly
    /// ascending, last entry is the domain size).
    pub fn from_bounds(bounds: Vec<usize>) -> Result<Self> {
        if bounds.len() < 2 || bounds[0] != 0 {
            return Err(PdsError::InvalidParameter {
                message: "partition bounds must start at 0 and name at least one range".into(),
            });
        }
        if bounds.windows(2).any(|w| w[1] <= w[0]) {
            return Err(PdsError::InvalidParameter {
                message: "partition bounds must be strictly ascending".into(),
            });
        }
        Ok(PartitionSpec { bounds })
    }

    /// Splits `[0, n)` into `parts` near-equal contiguous ranges.
    pub fn uniform(n: usize, parts: usize) -> Result<Self> {
        if parts == 0 || n < parts {
            return Err(PdsError::InvalidParameter {
                message: format!("cannot split a domain of {n} items into {parts} partitions"),
            });
        }
        let mut bounds = Vec::with_capacity(parts + 1);
        for i in 0..=parts {
            bounds.push(i * n / parts);
        }
        PartitionSpec::from_bounds(bounds)
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        *self.bounds.last().expect("non-empty bounds")
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Always false: a spec names at least one partition.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The global item range `(start, width)` of partition `p`.
    pub fn range(&self, p: usize) -> (usize, usize) {
        (self.bounds[p], self.bounds[p + 1] - self.bounds[p])
    }

    /// The partition owning `item`, or an error outside the domain.
    pub fn partition_of(&self, item: usize) -> Result<usize> {
        if item >= self.n() {
            return Err(PdsError::ItemOutOfDomain {
                item,
                domain: self.n(),
            });
        }
        Ok(self.bounds.partition_point(|&b| b <= item) - 1)
    }
}

/// Configuration of a [`SynopsisStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// How the item domain is partitioned.
    pub partitions: PartitionSpec,
    /// Records a partition's memtable buffers before it is auto-sealed.
    pub seal_threshold: usize,
    /// Synopsis budget (buckets or coefficients) per sealed segment.
    pub segment_budget: usize,
    /// Which synopsis sealed segments get.
    pub synopsis: SynopsisKind,
}

/// Point-in-time counters describing a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Stream records accepted by [`SynopsisStore::ingest`].
    pub ingested_records: u64,
    /// Records currently buffered in live memtables (not yet sealed).
    pub live_records: u64,
    /// Seal operations performed.
    pub seals: u64,
    /// Segments currently stored (compaction shrinks this).
    pub segments: usize,
    /// X-tuples whose alternatives were split across partitions.
    pub split_tuples: u64,
}

/// The partitioned streaming-ingest synopsis store (see the crate docs for
/// the lifecycle).
#[derive(Debug, Clone)]
pub struct SynopsisStore {
    config: StoreConfig,
    memtables: Vec<Memtable>,
    /// Sealed segments per partition, oldest first.
    segments: Vec<Vec<Segment>>,
    ingested: u64,
    seals: u64,
    split_tuples: u64,
}

impl SynopsisStore {
    /// Magic bytes of the whole-store binary encoding.
    pub const BINARY_MAGIC: [u8; 4] = *b"PDST";

    /// Version stamp of the whole-store binary encoding.
    pub const BINARY_VERSION: u16 = 1;

    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> Result<Self> {
        if config.seal_threshold == 0 || config.segment_budget == 0 {
            return Err(PdsError::InvalidParameter {
                message: "the seal threshold and the segment budget must be positive".into(),
            });
        }
        let memtables = (0..config.partitions.len())
            .map(|p| {
                let (start, width) = config.partitions.range(p);
                Memtable::new(start, width)
            })
            .collect();
        let segments = vec![Vec::new(); config.partitions.len()];
        Ok(SynopsisStore {
            config,
            memtables,
            segments,
            ingested: 0,
            seals: 0,
            split_tuples: 0,
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.config.partitions.n()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.config.partitions.len()
    }

    /// The live memtable of partition `p`.
    pub fn memtable(&self, p: usize) -> &Memtable {
        &self.memtables[p]
    }

    /// The sealed segments of partition `p`, oldest first.
    pub fn segments(&self, p: usize) -> &[Segment] {
        &self.segments[p]
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            ingested_records: self.ingested,
            live_records: self.memtables.iter().map(|m| m.len() as u64).sum(),
            seals: self.seals,
            segments: self.segments.iter().map(Vec::len).sum(),
            split_tuples: self.split_tuples,
        }
    }

    /// Appends one stream record, routing it to the partition(s) owning its
    /// items; a partition whose memtable reaches the seal threshold is
    /// sealed automatically.  X-tuples spanning several partitions are split
    /// per partition (see the crate docs for the semantics).
    pub fn ingest(&mut self, record: StreamRecord) -> Result<()> {
        record.validate()?;
        match record {
            StreamRecord::Basic { item, .. } | StreamRecord::ValueDistribution { item, .. } => {
                let p = self.config.partitions.partition_of(item)?;
                self.memtables[p].insert(record)?;
                self.ingested += 1;
                self.maybe_seal(p)
            }
            StreamRecord::Alternatives(alts) => {
                let mut by_partition: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
                for &(item, prob) in &alts {
                    let p = self.config.partitions.partition_of(item)?;
                    by_partition.entry(p).or_default().push((item, prob));
                }
                if by_partition.len() > 1 {
                    self.split_tuples += 1;
                }
                self.ingested += 1;
                for (p, sub) in by_partition {
                    self.memtables[p].insert(StreamRecord::Alternatives(sub))?;
                    self.maybe_seal(p)?;
                }
                Ok(())
            }
        }
    }

    /// Appends every record of an iterator.
    pub fn ingest_all(&mut self, records: impl IntoIterator<Item = StreamRecord>) -> Result<()> {
        for record in records {
            self.ingest(record)?;
        }
        Ok(())
    }

    fn maybe_seal(&mut self, p: usize) -> Result<()> {
        if self.memtables[p].len() >= self.config.seal_threshold {
            self.seal_partition(p)?;
        }
        Ok(())
    }

    /// Seals partition `p`'s memtable into an immutable segment (a no-op on
    /// an empty memtable).  Returns whether a segment was produced.
    pub fn seal_partition(&mut self, p: usize) -> Result<bool> {
        let memtable = &self.memtables[p];
        if memtable.is_empty() {
            return Ok(false);
        }
        let relation = memtable.to_relation()?;
        let budget = self.config.segment_budget.min(memtable.width());
        let segment = Segment::build(
            memtable.start(),
            memtable.len() as u64,
            &relation,
            self.config.synopsis,
            budget,
        )?;
        self.segments[p].push(segment);
        self.memtables[p].clear();
        self.seals += 1;
        Ok(true)
    }

    /// Seals every non-empty memtable.
    pub fn seal_all(&mut self) -> Result<()> {
        for p in 0..self.num_partitions() {
            self.seal_partition(p)?;
        }
        Ok(())
    }

    /// The summed piecewise-constant summary of partition `p`'s sealed
    /// segments (`None` when the partition has no segments).
    fn partition_pieces(&self, p: usize) -> Result<Option<Vec<Piece>>> {
        let segs = &self.segments[p];
        match segs.len() {
            0 => Ok(None),
            1 => Ok(Some(segs[0].pieces())),
            _ => {
                let layers: Vec<Vec<Piece>> = segs.iter().map(Segment::pieces).collect();
                sum_pieces(&layers).map(Some)
            }
        }
    }

    /// Compacts partition `p`: its sealed segments are summed on the union
    /// of their bucket boundaries and re-bucketed to the segment budget via
    /// the merge DP, leaving one segment.  A no-op with fewer than two
    /// segments.
    pub fn compact_partition(&mut self, p: usize) -> Result<()> {
        if self.segments[p].len() < 2 {
            return Ok(());
        }
        let summed = self.partition_pieces(p)?.expect("at least two segments");
        let (start, width) = self.config.partitions.range(p);
        let budget = self.config.segment_budget.min(width);
        let synopsis = match self.config.synopsis {
            SynopsisKind::Histogram(_) => {
                SegmentSynopsis::Histogram(optimal_piecewise_histogram(&summed, budget)?)
            }
            SynopsisKind::Wavelet => {
                // Re-threshold the summed estimate vector: wavelets have no
                // piece-level DP, so go through the dense reconstruction.
                let dense: Vec<f64> = summed
                    .iter()
                    .flat_map(|piece| std::iter::repeat_n(piece.value, piece.width))
                    .collect();
                let relation = ValuePdfModel::deterministic(&dense).into();
                SegmentSynopsis::Wavelet(build_sse_wavelet(&relation, budget)?)
            }
        };
        let records = self.segments[p].iter().map(Segment::records).sum();
        self.segments[p] = vec![Segment::new(start, records, synopsis)?];
        Ok(())
    }

    /// Compacts every partition.
    pub fn compact_all(&mut self) -> Result<()> {
        for p in 0..self.num_partitions() {
            self.compact_partition(p)?;
        }
        Ok(())
    }

    /// Recombines the sealed per-partition synopses into one global
    /// `b`-bucket histogram via the partition-merge DP: the candidate cut
    /// points are exactly the partition/bucket boundaries, and partitions
    /// with no sealed data contribute a zero run.  Live memtable records are
    /// **not** included — seal first for a full snapshot.
    pub fn merge_global(&self, b: usize) -> Result<Histogram> {
        let mut pieces: Vec<Piece> = Vec::new();
        for p in 0..self.num_partitions() {
            match self.partition_pieces(p)? {
                Some(mut summed) => pieces.append(&mut summed),
                None => {
                    let (_, width) = self.config.partitions.range(p);
                    pieces.push(Piece { width, value: 0.0 });
                }
            }
        }
        optimal_piecewise_histogram(&pieces, b)
    }

    /// Estimated expected total frequency over the **global** inclusive
    /// item range `[lo, hi]`: sealed segments answer from their synopses,
    /// live memtables from their exact running expectations.
    pub fn range_estimate(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.n().saturating_sub(1));
        if lo > hi {
            return 0.0;
        }
        let first = self
            .config
            .partitions
            .partition_of(lo)
            .expect("lo in domain");
        let last = self
            .config
            .partitions
            .partition_of(hi)
            .expect("hi in domain");
        let mut total = 0.0;
        for p in first..=last {
            for segment in &self.segments[p] {
                total += segment.range_sum(lo, hi);
            }
            total += self.memtables[p].range_sum(lo, hi);
        }
        total
    }

    /// The estimated expected frequency of one item.
    pub fn estimate(&self, item: usize) -> f64 {
        self.range_estimate(item, item)
    }

    /// Serialises the sealed state into the compact binary format.  Live
    /// memtable records are intentionally **not** persisted — the store
    /// refuses to serialise while unsealed data exists, so a snapshot can
    /// never silently drop records; call [`SynopsisStore::seal_all`] first.
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        let live = self.stats().live_records;
        if live > 0 {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "store has {live} unsealed records; call seal_all() before persisting"
                ),
            });
        }
        let mut w = ByteWriter::envelope(Self::BINARY_MAGIC, Self::BINARY_VERSION);
        let bounds = &self.config.partitions.bounds;
        w.put_varint(bounds.len() as u64);
        let mut prev = 0u64;
        for &b in bounds {
            w.put_varint(b as u64 - prev);
            prev = b as u64;
        }
        w.put_varint(self.config.seal_threshold as u64);
        w.put_varint(self.config.segment_budget as u64);
        encode_synopsis_kind(&mut w, self.config.synopsis);
        w.put_varint(self.ingested);
        w.put_varint(self.seals);
        w.put_varint(self.split_tuples);
        for segs in &self.segments {
            w.put_varint(segs.len() as u64);
            for segment in segs {
                let blob = segment.to_binary()?;
                w.put_varint(blob.len() as u64);
                w.put_bytes(&blob);
            }
        }
        Ok(w.into_bytes())
    }

    /// Reconstructs a store from [`SynopsisStore::to_binary`] output,
    /// rejecting truncation, version skew and segments that do not tile
    /// their partition with a [`PdsError`] — never a panic.
    pub fn from_binary(bytes: &[u8]) -> Result<Self> {
        let (mut r, version) = ByteReader::envelope(bytes, "synopsis store", Self::BINARY_MAGIC)?;
        if version != Self::BINARY_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "store binary version {version} is not supported (expected {})",
                    Self::BINARY_VERSION
                ),
            });
        }
        let bound_count = r.get_len(1 << 24)?;
        let mut bounds = Vec::with_capacity(bound_count);
        let mut acc = 0usize;
        for i in 0..bound_count {
            let delta = r.get_len(u32::MAX as usize)?;
            acc += delta;
            if i == 0 && delta != 0 {
                return Err(PdsError::InvalidParameter {
                    message: "store: partition bounds must start at 0".into(),
                });
            }
            bounds.push(acc);
        }
        let partitions = PartitionSpec::from_bounds(bounds)?;
        // Plain scalars, not allocation sizes: any value the writer accepted
        // must decode (the "never auto-seal" configs use huge thresholds).
        let seal_threshold = r.get_len(usize::MAX)?;
        let segment_budget = r.get_len(usize::MAX)?;
        let synopsis = decode_synopsis_kind(&mut r)?;
        let ingested = r.get_varint()?;
        let seals = r.get_varint()?;
        let split_tuples = r.get_varint()?;
        let mut store = SynopsisStore::new(StoreConfig {
            partitions,
            seal_threshold,
            segment_budget,
            synopsis,
        })?;
        for p in 0..store.num_partitions() {
            let count = r.get_len(1 << 24)?;
            let (start, width) = store.config.partitions.range(p);
            for _ in 0..count {
                let len = r.get_len(r.remaining())?;
                let blob = r.get_bytes(len)?;
                let segment = Segment::from_binary(blob)?;
                if segment.start() != start || segment.width() != width {
                    return Err(PdsError::InvalidParameter {
                        message: format!(
                            "segment [{}, {}] does not tile partition {p} ([{start}, {}])",
                            segment.start(),
                            segment.end(),
                            start + width - 1
                        ),
                    });
                }
                store.segments[p].push(segment);
            }
        }
        r.finish()?;
        store.ingested = ingested;
        store.seals = seals;
        store.split_tuples = split_tuples;
        Ok(store)
    }
}

fn encode_synopsis_kind(w: &mut ByteWriter, kind: SynopsisKind) {
    match kind {
        SynopsisKind::Histogram(metric) => {
            w.put_u8(0);
            match metric {
                ErrorMetric::Sse => w.put_u8(0),
                ErrorMetric::Ssre { c } => {
                    w.put_u8(1);
                    w.put_f64(c);
                }
                ErrorMetric::Sae => w.put_u8(2),
                ErrorMetric::Sare { c } => {
                    w.put_u8(3);
                    w.put_f64(c);
                }
                ErrorMetric::Mae => w.put_u8(4),
                ErrorMetric::Mare { c } => {
                    w.put_u8(5);
                    w.put_f64(c);
                }
            }
        }
        SynopsisKind::Wavelet => w.put_u8(1),
    }
}

fn decode_synopsis_kind(r: &mut ByteReader<'_>) -> Result<SynopsisKind> {
    match r.get_u8()? {
        0 => {
            let metric = match r.get_u8()? {
                0 => ErrorMetric::Sse,
                1 => ErrorMetric::Ssre { c: r.get_f64()? },
                2 => ErrorMetric::Sae,
                3 => ErrorMetric::Sare { c: r.get_f64()? },
                4 => ErrorMetric::Mae,
                5 => ErrorMetric::Mare { c: r.get_f64()? },
                other => {
                    return Err(PdsError::InvalidParameter {
                        message: format!("store: unknown error metric tag {other}"),
                    })
                }
            };
            Ok(SynopsisKind::Histogram(metric))
        }
        1 => Ok(SynopsisKind::Wavelet),
        other => Err(PdsError::InvalidParameter {
            message: format!("store: unknown synopsis kind tag {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::stream::{basic_stream, BasicStreamConfig};

    fn config(n: usize, parts: usize, threshold: usize) -> StoreConfig {
        StoreConfig {
            partitions: PartitionSpec::uniform(n, parts).unwrap(),
            seal_threshold: threshold,
            segment_budget: 8,
            synopsis: SynopsisKind::Histogram(ErrorMetric::Sse),
        }
    }

    #[test]
    fn partition_spec_routes_and_validates() {
        let spec = PartitionSpec::uniform(10, 3).unwrap();
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.n(), 10);
        assert_eq!(spec.range(0), (0, 3));
        assert_eq!(spec.range(2), (6, 4));
        assert_eq!(spec.partition_of(0).unwrap(), 0);
        assert_eq!(spec.partition_of(5).unwrap(), 1);
        assert_eq!(spec.partition_of(9).unwrap(), 2);
        assert!(spec.partition_of(10).is_err());
        assert!(PartitionSpec::uniform(2, 3).is_err());
        assert!(PartitionSpec::from_bounds(vec![1, 5]).is_err());
        assert!(PartitionSpec::from_bounds(vec![0, 5, 5]).is_err());
        assert!(PartitionSpec::from_bounds(vec![0]).is_err());
    }

    #[test]
    fn ingest_routes_seals_and_serves() {
        let mut store = SynopsisStore::new(config(12, 3, 4)).unwrap();
        // Exactly threshold records into partition 0 trigger an auto-seal.
        for i in 0..4 {
            store
                .ingest(StreamRecord::Basic {
                    item: i % 4,
                    prob: 0.5,
                })
                .unwrap();
        }
        assert_eq!(store.segments(0).len(), 1);
        assert!(store.memtable(0).is_empty());
        // Live records in another partition are served exactly.
        store
            .ingest(StreamRecord::Basic { item: 8, prob: 0.9 })
            .unwrap();
        assert!((store.range_estimate(8, 8) - 0.9).abs() < 1e-12);
        // The sealed partition serves from its synopsis; with 8 buckets over
        // width 4 the histogram is exact.
        assert!((store.range_estimate(0, 3) - 2.0).abs() < 1e-9);
        let stats = store.stats();
        assert_eq!(stats.ingested_records, 5);
        assert_eq!(stats.live_records, 1);
        assert_eq!(stats.seals, 1);
        assert_eq!(stats.segments, 1);
    }

    #[test]
    fn cross_partition_x_tuples_are_split_preserving_marginals() {
        let mut store = SynopsisStore::new(config(12, 3, 100)).unwrap();
        store
            .ingest(StreamRecord::Alternatives(vec![
                (1, 0.25),
                (5, 0.25),
                (10, 0.5),
            ]))
            .unwrap();
        assert_eq!(store.stats().split_tuples, 1);
        assert!((store.range_estimate(1, 1) - 0.25).abs() < 1e-12);
        assert!((store.range_estimate(5, 5) - 0.25).abs() < 1e-12);
        assert!((store.range_estimate(10, 10) - 0.5).abs() < 1e-12);
        assert!((store.range_estimate(0, 11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compaction_preserves_the_summed_estimates_when_lossless() {
        let mut store = SynopsisStore::new(config(8, 2, 100)).unwrap();
        // Two seal rounds for partition 0 produce two segments whose
        // histograms are exact (budget 8 >= width 4).
        for round in 0..2 {
            for i in 0..4 {
                store
                    .ingest(StreamRecord::Basic {
                        item: i,
                        prob: 0.25 * (round + 1) as f64,
                    })
                    .unwrap();
            }
            store.seal_partition(0).unwrap();
        }
        assert_eq!(store.segments(0).len(), 2);
        let before: Vec<f64> = (0..4).map(|i| store.estimate(i)).collect();
        store.compact_partition(0).unwrap();
        assert_eq!(store.segments(0).len(), 1);
        let after: Vec<f64> = (0..4).map(|i| store.estimate(i)).collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9);
        }
        assert_eq!(store.segments(0)[0].records(), 8);
        // Compacting a single segment is a no-op.
        store.compact_partition(0).unwrap();
        assert_eq!(store.segments(0).len(), 1);
    }

    #[test]
    fn merge_global_covers_empty_partitions_with_zero_runs() {
        let mut store = SynopsisStore::new(config(12, 3, 100)).unwrap();
        for i in 0..4 {
            store
                .ingest(StreamRecord::Basic {
                    item: i,
                    prob: 0.75,
                })
                .unwrap();
        }
        store.seal_all().unwrap();
        let merged = store.merge_global(4).unwrap();
        assert_eq!(merged.n(), 12);
        assert!((merged.estimates().iter().sum::<f64>() - 3.0).abs() < 1e-9);
        // Items in the never-touched partitions estimate to ~zero.
        assert!(merged.estimate(11).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip_preserves_queries_and_stats() {
        let mut store = SynopsisStore::new(config(32, 4, 16)).unwrap();
        let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
            n: 32,
            skew: 0.7,
            seed: 5,
        })
        .take(200)
        .collect();
        store.ingest_all(records).unwrap();
        // Unsealed data blocks persistence.
        if store.stats().live_records > 0 {
            assert!(store.to_binary().is_err());
        }
        store.seal_all().unwrap();
        let bytes = store.to_binary().unwrap();
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert_eq!(back.stats(), store.stats());
        assert_eq!(back.config(), store.config());
        for (lo, hi) in [(0usize, 31usize), (3, 17), (20, 20), (9, 30)] {
            assert!((back.range_estimate(lo, hi) - store.range_estimate(lo, hi)).abs() < 1e-12);
        }
        // Corruption surfaces as errors, never panics.
        for cut in 0..bytes.len().min(64) {
            assert!(SynopsisStore::from_binary(&bytes[..cut]).is_err());
        }
        assert!(SynopsisStore::from_binary(&bytes[..bytes.len() - 1]).is_err());
        let mut skewed = bytes.clone();
        skewed[4] = 9;
        assert!(SynopsisStore::from_binary(&skewed).is_err());
    }

    #[test]
    fn wavelet_store_lifecycle() {
        let mut store = SynopsisStore::new(StoreConfig {
            partitions: PartitionSpec::uniform(16, 2).unwrap(),
            seal_threshold: 8,
            segment_budget: 4,
            synopsis: SynopsisKind::Wavelet,
        })
        .unwrap();
        let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
            n: 16,
            skew: 0.5,
            seed: 9,
        })
        .take(40)
        .collect();
        store.ingest_all(records).unwrap();
        store.seal_all().unwrap();
        store.compact_all().unwrap();
        for p in 0..2 {
            assert_eq!(store.segments(p).len().min(1), store.segments(p).len());
        }
        let merged = store.merge_global(6).unwrap();
        assert_eq!(merged.n(), 16);
        let bytes = store.to_binary().unwrap();
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert!((back.range_estimate(0, 15) - store.range_estimate(0, 15)).abs() < 1e-12);
    }

    #[test]
    fn huge_seal_thresholds_survive_the_binary_round_trip() {
        // The "never auto-seal" configs (benches, manual-seal tests) use
        // near-usize::MAX thresholds; the snapshot must round-trip them.
        let mut store = SynopsisStore::new(StoreConfig {
            partitions: PartitionSpec::uniform(8, 2).unwrap(),
            seal_threshold: usize::MAX >> 1,
            segment_budget: 4,
            synopsis: SynopsisKind::Histogram(ErrorMetric::Sse),
        })
        .unwrap();
        store
            .ingest(StreamRecord::Basic { item: 1, prob: 0.5 })
            .unwrap();
        store.seal_all().unwrap();
        let bytes = store.to_binary().unwrap();
        let back = SynopsisStore::from_binary(&bytes).unwrap();
        assert_eq!(back.config(), store.config());
        assert_eq!(back.range_estimate(0, 7), store.range_estimate(0, 7));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let spec = PartitionSpec::uniform(8, 2).unwrap();
        assert!(SynopsisStore::new(StoreConfig {
            partitions: spec.clone(),
            seal_threshold: 0,
            segment_budget: 4,
            synopsis: SynopsisKind::Wavelet,
        })
        .is_err());
        assert!(SynopsisStore::new(StoreConfig {
            partitions: spec,
            seal_threshold: 4,
            segment_budget: 0,
            synopsis: SynopsisKind::Wavelet,
        })
        .is_err());
    }
}
