//! The per-store `MANIFEST`: the durable source of truth for which sealed
//! segment blobs are live.
//!
//! Sealing writes a `seg-<p>-<seq>.bin` blob at install time (the segment's
//! `PDSG` binary encoding plus a CRC-32 trailer, published by tmp-rename);
//! the manifest records which of those blobs a reopen should load.  Reopen
//! order is **manifest → segment blobs → WAL tail**: the manifest names the
//! segments, their blobs are decoded (checksum first), and only then is the
//! WAL scanned — skipping frozen logs whose seal sequence the manifest
//! already covers, because *the manifest entry is a seal's commit point*.
//! A crash before the entry replays the seal's records from its frozen WAL
//! log; a crash after it loads the segment and ignores the log.  Never
//! both, never neither.
//!
//! ## On-disk format
//!
//! `MANIFEST` is an append-only, versioned binio artefact of
//! **fixed-width** records:
//!
//! ```text
//! "PDSM" <u16 version>
//! repeated 17-byte records:
//!   <u8 op = 0 (install)> <u32 partition LE> <u64 seq LE>
//!   <u32 crc32 LE over the preceding 13 bytes>
//! ```
//!
//! Records are fixed-width on purpose: framing never depends on a length
//! field a bit flip could corrupt, so a torn append is *exactly* "the
//! file length is not a whole number of records" and any complete record
//! whose checksum fails is corruption — the two cases can never be
//! confused, and mid-file damage can never silently swallow the records
//! behind it.
//!
//! Installs **append** one record (one write — and on the
//! [`WalSync::Fsync`](crate::WalSync) tier one `sync_data` — per install).
//! Compound edits that must be atomic — compaction replacing several
//! segments with one, and the compacting rewrite at open — **publish** a
//! fresh manifest instead: the full live set is staged to `MANIFEST.tmp`
//! and renamed over the old file, so a crash at any byte of the publish
//! leaves the previous manifest intact (the `mid-manifest-publish` crash
//! point sits exactly between the staging write and the rename).
//!
//! ## Tail tolerance
//!
//! A crash can tear the final appended record; an **incomplete** final
//! record (trailing bytes shorter than one record) is dropped on load —
//! safe, because the frozen WAL log it would have committed still exists
//! and replays.  A *complete* record failing its checksum, anywhere, is
//! corruption and errors with the file intact.

use std::collections::BTreeSet;
use std::fs::File;
use std::path::{Path, PathBuf};

use pds_core::binio::{crc32, ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};
use pds_core::vfs;

use crate::crashpoint;
use crate::telemetry::IoPolicy;
use crate::wal::WalSync;

fn io_err(context: &str, e: std::io::Error) -> PdsError {
    PdsError::InvalidParameter {
        message: format!("manifest: {context}: {e}"),
    }
}

/// File name of a sealed segment's blob: the `PDSG` binary encoding plus a
/// 4-byte CRC-32 trailer.
pub fn segment_blob_name(partition: usize, seq: u64) -> String {
    format!("seg-{partition}-{seq}.bin")
}

/// The store's manifest of live segment blobs (see the module docs for the
/// commit-point discipline and the on-disk format).
#[derive(Debug)]
pub struct Manifest {
    dir: PathBuf,
    path: PathBuf,
    /// Live segments as `(partition, seal sequence)`.
    live: BTreeSet<(usize, u64)>,
    writer: File,
    sync: WalSync,
    /// Retry/backoff policy plus the telemetry hook for every durable
    /// operation this handle performs.
    policy: IoPolicy,
}

impl Manifest {
    /// Magic bytes of the manifest encoding.
    pub const MAGIC: [u8; 4] = *b"PDSM";

    /// Version stamp of the manifest encoding.
    pub const VERSION: u16 = 1;

    /// Width of one fixed-size record: op + partition + seq + crc32.
    const RECORD_LEN: usize = 1 + 4 + 8 + 4;

    /// One fixed-width install record.
    fn frame(partition: usize, seq: u64) -> [u8; Self::RECORD_LEN] {
        let mut record = [0u8; Self::RECORD_LEN];
        record[0] = 0; // op: install
        record[1..5].copy_from_slice(&(partition as u32).to_le_bytes());
        record[5..13].copy_from_slice(&seq.to_le_bytes());
        let crc = crc32(&record[..13]);
        record[13..].copy_from_slice(&crc.to_le_bytes());
        record
    }

    /// Parses the manifest file's bytes into the live-segment set.  Framing
    /// is positional (fixed-width records), so the only tolerated anomaly
    /// is a trailing partial record — a torn append, dropped because its
    /// seal never committed (the frozen WAL replays it).  Everything else
    /// — a checksum mismatch, a bad op, a duplicate — errors with the file
    /// intact; mid-file damage can never silently swallow later records.
    fn parse(bytes: &[u8]) -> Result<BTreeSet<(usize, u64)>> {
        if bytes.is_empty() {
            // A crash between creating the file and the first publish
            // leaves a zero-byte manifest: an empty store, not corruption.
            return Ok(BTreeSet::new());
        }
        let (r, version) = ByteReader::envelope(bytes, "manifest", Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "manifest version {version} is not supported (expected {})",
                    Self::VERSION
                ),
            });
        }
        let body = &bytes[bytes.len() - r.remaining()..];
        let mut live = BTreeSet::new();
        for record in body.chunks(Self::RECORD_LEN) {
            if record.len() < Self::RECORD_LEN {
                // Torn final append.
                break;
            }
            let mut stored = [0u8; 4];
            stored.copy_from_slice(&record[13..]);
            let stored = u32::from_le_bytes(stored);
            if crc32(&record[..13]) != stored {
                return Err(PdsError::InvalidParameter {
                    message: "manifest: record checksum mismatch — the file is corrupted".into(),
                });
            }
            if record[0] != 0 {
                return Err(PdsError::InvalidParameter {
                    message: format!("manifest: unknown record op {}", record[0]),
                });
            }
            let mut partition_bytes = [0u8; 4];
            partition_bytes.copy_from_slice(&record[1..5]);
            let partition = u32::from_le_bytes(partition_bytes) as usize;
            let mut seq_bytes = [0u8; 8];
            seq_bytes.copy_from_slice(&record[5..13]);
            let seq = u64::from_le_bytes(seq_bytes);
            if !live.insert((partition, seq)) {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "manifest: duplicate install of segment \
                         (partition {partition}, seq {seq})"
                    ),
                });
            }
        }
        Ok(live)
    }

    /// Parses raw manifest bytes into the live `(partition, seq)` list,
    /// ascending — the decoder surface the fuzz harness (`pds-analyze`)
    /// drives directly.  Same tolerance contract as reopen: an empty file
    /// is an empty store, a torn *final* record is dropped, and any other
    /// anomaly (checksum mismatch, bad op, duplicate install, bad header)
    /// is a [`PdsError`].
    pub fn parse_bytes(bytes: &[u8]) -> Result<Vec<(usize, u64)>> {
        Ok(Self::parse(bytes)?.into_iter().collect())
    }

    /// Serialises a full manifest (header plus one install record per live
    /// entry, ascending) — the staging payload of a publish.
    fn encode(live: &BTreeSet<(usize, u64)>) -> Vec<u8> {
        let mut bytes = ByteWriter::envelope(Self::MAGIC, Self::VERSION).into_bytes();
        for &(partition, seq) in live {
            bytes.extend_from_slice(&Self::frame(partition, seq));
        }
        bytes
    }

    /// Stages the full live set to `MANIFEST.tmp` and atomically renames it
    /// over `MANIFEST` — the all-or-nothing edit used by compaction and the
    /// compacting rewrite at open.  Reopens the append handle afterwards.
    ///
    /// Every step is idempotent from a clean staging write, so transient
    /// failures get the policy's bounded retry: a retried publish simply
    /// restages the tmp file and renames again.
    fn publish(&mut self) -> Result<()> {
        let tmp = self.dir.join("MANIFEST.tmp");
        let bytes = Self::encode(&self.live);
        let Manifest {
            dir,
            path,
            sync,
            policy,
            ..
        } = &*self;
        policy
            .run("manifest-replace", || {
                vfs::write("manifest-replace", &tmp, &bytes)
            })
            .map_err(|e| io_err("staging the manifest", e))?;
        if *sync == WalSync::Fsync {
            policy
                .run("manifest-replace", || {
                    vfs::sync_path("manifest-replace", &tmp)
                })
                .map_err(|e| io_err("fsyncing the staged manifest", e))?;
        }
        crashpoint::reached("mid-manifest-publish");
        policy
            .run("manifest-replace", || {
                vfs::rename("manifest-replace", &tmp, path)
            })
            .map_err(|e| io_err("publishing the manifest", e))?;
        if *sync == WalSync::Fsync {
            // Make the rename itself power-loss durable: the directory
            // entry must reach the device, not just the file contents.
            policy
                .run("manifest-replace", || {
                    vfs::sync_dir("manifest-replace", dir)
                })
                .map_err(|e| io_err("fsyncing the store directory", e))?;
        }
        self.writer = self
            .policy
            .run("manifest-replace", || {
                vfs::open_append("manifest-replace", &self.path, false)
            })
            .map_err(|e| io_err("reopening the manifest for append", e))?;
        Ok(())
    }

    /// Opens (or creates) the manifest in `dir`, returning the handle and
    /// the live segments to load, ascending by `(partition, seq)`.
    ///
    /// Loading is recovery-safe: a stale `MANIFEST.tmp` from a crashed
    /// publish is ignored, a torn final frame is dropped, and the loaded
    /// set is immediately **republished** (atomic tmp-rename), which
    /// compacts the append log and guarantees subsequent appends land on a
    /// well-formed file.  Orphaned segment blobs — written by a seal whose
    /// manifest record never landed — are deleted; their records replay
    /// from the still-present frozen WAL logs.
    pub fn open(dir: &Path, sync: WalSync) -> Result<(Self, Vec<(usize, u64)>)> {
        Self::open_with(dir, sync, IoPolicy::default())
    }

    /// [`Manifest::open`] with an explicit I/O policy — the store threads
    /// its configured retry budget and telemetry through here.
    pub(crate) fn open_with(
        dir: &Path,
        sync: WalSync,
        policy: IoPolicy,
    ) -> Result<(Self, Vec<(usize, u64)>)> {
        vfs::create_dir_all("recovery-read", dir)
            .map_err(|e| io_err("creating the store directory", e))?;
        let path = dir.join("MANIFEST");
        let live = if path.exists() {
            let bytes =
                vfs::read("recovery-read", &path).map_err(|e| io_err("reading the manifest", e))?;
            Self::parse(&bytes)?
        } else {
            BTreeSet::new()
        };
        // Writer is replaced by the publish below; create/open the file so
        // the struct is well-formed first.
        let writer = vfs::open_append("recovery-read", &path, true)
            .map_err(|e| io_err("opening the manifest for append", e))?;
        let mut manifest = Manifest {
            dir: dir.to_path_buf(),
            path,
            live,
            writer,
            sync,
            policy,
        };
        manifest.publish()?;
        manifest.remove_orphan_blobs()?;
        let entries = manifest.live.iter().copied().collect();
        Ok((manifest, entries))
    }

    /// Deletes `seg-*.bin` blobs that no live manifest entry references —
    /// the sweep keys on the name, not the contents, so v1 CRC-trailed and
    /// v2 block-structured blobs are recognised alike — and any stale
    /// `*.tmp` staging file (blob, manifest or WAL-recovery) left by a
    /// crash between stage and rename: every publish re-stages from
    /// scratch, so a leftover `.tmp` is always garbage.  Removal failures
    /// are counted as cleanup errors, never fatal: an unremoved orphan is
    /// swept again at the next open.
    fn remove_orphan_blobs(&self) -> Result<()> {
        let entries = vfs::read_dir("recovery-read", &self.dir)
            .map_err(|e| io_err("listing the store directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing the store directory", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                self.policy
                    .cleanup("cleanup", vfs::remove_file("cleanup", &entry.path()));
                continue;
            }
            let Some(stem) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".bin"))
            else {
                continue;
            };
            let Some((p, seq)) = stem.split_once('-') else {
                continue;
            };
            let (Ok(p), Ok(seq)) = (p.parse::<usize>(), seq.parse::<u64>()) else {
                continue;
            };
            if !self.live.contains(&(p, seq)) {
                self.policy
                    .cleanup("cleanup", vfs::remove_file("cleanup", &entry.path()));
            }
        }
        Ok(())
    }

    /// The live segments, ascending by `(partition, seq)`.
    pub fn live(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.live.iter().copied()
    }

    /// Seal sequences the manifest covers for one partition (the frozen WAL
    /// logs a reopen must skip).
    pub fn covered_seqs(&self, partition: usize) -> BTreeSet<u64> {
        self.live
            .iter()
            .filter(|&&(p, _)| p == partition)
            .map(|&(_, seq)| seq)
            .collect()
    }

    /// Commits a seal: appends one install record (flushed, and on the
    /// fsync tier synced, before returning).  After this call the segment
    /// belongs to the manifest and the seal's frozen WAL log may retire.
    pub fn install(&mut self, partition: usize, seq: u64) -> Result<()> {
        if u32::try_from(partition).is_err() {
            return Err(PdsError::InvalidParameter {
                message: format!("manifest: partition {partition} exceeds the u32 record field"),
            });
        }
        if !self.live.insert((partition, seq)) {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "manifest: segment (partition {partition}, seq {seq}) is already installed"
                ),
            });
        }
        let frame = Self::frame(partition, seq);
        // Remember the pre-append length: a failed append (partial write,
        // or a write that landed but whose fsync failed) is truncated away
        // entirely, so the file never carries a phantom or partial record
        // that a later successful append would bury mid-file.  The same
        // truncation makes the append idempotent, so the whole
        // rewind-write-sync sequence is safe under the policy's bounded
        // retry.
        let pre_len = vfs::file_len("manifest-install", &self.path, &self.writer)
            .map_err(|e| io_err("sizing the manifest", e))?;
        let Manifest {
            path,
            writer,
            sync,
            policy,
            ..
        } = &mut *self;
        let result = policy.run("manifest-install", || {
            vfs::set_len("manifest-install", path, writer, pre_len)?;
            vfs::write_all("manifest-install", path, writer, &frame)?;
            if *sync == WalSync::Fsync {
                vfs::sync_data("manifest-install", path, writer)?;
            }
            Ok(())
        });
        if let Err(e) = result {
            self.live.remove(&(partition, seq));
            // Best-effort rewind of whatever the failed attempts left
            // behind; a leftover partial frame is the tolerated torn tail.
            self.policy.cleanup(
                "manifest-install",
                vfs::set_len("manifest-install", &self.path, &self.writer, pre_len),
            );
            return Err(io_err("appending an install record", e));
        }
        Ok(())
    }

    /// Commits a compaction: atomically replaces `retired` segments of
    /// `partition` with the single `installed` one via a full publish.
    /// After this call the superseded blobs may be deleted.
    pub fn replace(&mut self, partition: usize, retired: &[u64], installed: u64) -> Result<()> {
        let before = self.live.clone();
        for &seq in retired {
            if !self.live.remove(&(partition, seq)) {
                self.live = before;
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "manifest: cannot retire unknown segment (partition {partition}, seq {seq})"
                    ),
                });
            }
        }
        if !self.live.insert((partition, installed)) {
            self.live = before;
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "manifest: segment (partition {partition}, seq {installed}) is already installed"
                ),
            });
        }
        if let Err(e) = self.publish() {
            self.live = before;
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pds-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn installs_survive_reopen_and_replace_is_atomic() {
        let dir = tmp_dir("round-trip");
        {
            let (mut m, live) = Manifest::open(&dir, WalSync::Flush).unwrap();
            assert!(live.is_empty());
            m.install(0, 0).unwrap();
            m.install(1, 0).unwrap();
            m.install(0, 1).unwrap();
        }
        let (mut m, live) = Manifest::open(&dir, WalSync::Flush).unwrap();
        assert_eq!(live, vec![(0, 0), (0, 1), (1, 0)]);
        assert_eq!(m.covered_seqs(0), [0u64, 1].into_iter().collect());
        // Compaction: 0/{0,1} -> 0/2.
        m.replace(0, &[0, 1], 2).unwrap();
        drop(m);
        let (_m, live) = Manifest::open(&dir, WalSync::Flush).unwrap();
        assert_eq!(live, vec![(0, 2), (1, 0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_install_and_unknown_retire_are_rejected() {
        let dir = tmp_dir("dupes");
        let (mut m, _) = Manifest::open(&dir, WalSync::Flush).unwrap();
        m.install(0, 7).unwrap();
        assert!(m.install(0, 7).is_err());
        assert!(m.replace(0, &[3], 8).is_err());
        // The failed edits left the live set unchanged.
        assert_eq!(m.live().collect::<Vec<_>>(), vec![(0, 7)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_dropped_mid_file_corruption_errors() {
        let dir = tmp_dir("torn");
        {
            let (mut m, _) = Manifest::open(&dir, WalSync::Flush).unwrap();
            m.install(0, 0).unwrap();
            m.install(1, 4).unwrap();
        }
        let path = dir.join("MANIFEST");
        let bytes = fs::read(&path).unwrap();
        // Tear the final record: the first install survives, the torn one
        // is dropped (its frozen WAL would replay it).
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (_m, live) = Manifest::open(&dir, WalSync::Flush).unwrap();
        assert_eq!(live, vec![(0, 0)]);
        // Open republished a well-formed manifest.
        drop(_m);
        // A bit flip inside a complete record is corruption, not a tear.
        let bytes = fs::read(&path).unwrap();
        let mut bad = bytes.clone();
        let last = bad.len() - 2; // inside the final record's crc/payload
        bad[last] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        assert!(Manifest::open(&dir, WalSync::Flush).is_err());
        // The corrupt file is left intact for inspection.
        assert_eq!(fs::read(&path).unwrap(), bad);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_and_orphan_blobs_are_cleaned_at_open() {
        let dir = tmp_dir("orphans");
        {
            let (mut m, _) = Manifest::open(&dir, WalSync::Flush).unwrap();
            m.install(0, 0).unwrap();
        }
        // A blob whose manifest record never landed (the sweep is
        // name-keyed, so its contents — v1, v2 block-structured or
        // garbage — are irrelevant), a stale blob staging file, a stale
        // manifest staging file and a stale WAL-recovery staging file:
        // all swept at open.
        fs::write(dir.join(segment_blob_name(0, 9)), b"orphan").unwrap();
        fs::write(dir.join("seg-0-3.bin.tmp"), b"stale").unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"stale").unwrap();
        fs::write(dir.join("wal-0.log.tmp"), b"stale").unwrap();
        // The live blob survives.
        fs::write(dir.join(segment_blob_name(0, 0)), b"live").unwrap();
        let (_m, live) = Manifest::open(&dir, WalSync::Flush).unwrap();
        assert_eq!(live, vec![(0, 0)]);
        assert!(dir.join(segment_blob_name(0, 0)).exists());
        assert!(!dir.join(segment_blob_name(0, 9)).exists());
        assert!(!dir.join("seg-0-3.bin.tmp").exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(!dir.join("wal-0.log.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
