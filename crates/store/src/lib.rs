//! # pds-store
//!
//! A **partitioned streaming-ingest and persistent synopsis store** on top
//! of the paper's probabilistic histogram and wavelet synopses: the
//! scale-out path from "build one synopsis over one relation" to "serve
//! approximate queries over a stream of arriving uncertain tuples".
//!
//! The lifecycle mirrors an LSM tree, with synopses in place of sorted runs:
//!
//! 1. **Ingest** — arriving [`StreamRecord`]s (any of the three uncertainty
//!    models) are routed to the item-range partition that owns them and
//!    buffered in that partition's [`Memtable`], which keeps exact expected
//!    frequencies incrementally so live data stays queryable.
//! 2. **Seal** — when a memtable reaches the configured threshold it is
//!    sealed into an immutable [`Segment`]: the buffered records become a
//!    probabilistic relation and the configured synopsis (histogram via the
//!    batched-sweep DP, or an SSE-optimal wavelet) is built over it.
//! 3. **Compact** — segments of one partition are recombined by summing
//!    their piecewise-constant estimates on the union of their boundaries
//!    and re-running the merge DP; [`SynopsisStore::merge_global`] does the
//!    same across all partitions to produce one global `B`-bucket histogram
//!    (the candidate cut points are exactly the partition/bucket edges).
//! 4. **Serve** — range-sum/count estimates combine live memtables with
//!    sealed segments; the umbrella crate's `aqp` module routes its
//!    [`FrequencyQuery`]s here.
//!
//! Persistence uses the versioned **compact binary format** (see
//! `pds_core::binio`): segments and whole stores encode to self-describing
//! byte blobs whose corrupted/truncated/version-skewed variants decode to
//! [`PdsError`]s, never panics.  JSON (`Segment::to_json`) stays available
//! as the debug encoding.  Live memtable contents are covered by optional
//! per-partition **write-ahead logs** ([`wal`], replayed on
//! [`SynopsisStore::open_with_wal`]); [`SynopsisStore::snapshot`] seals
//! everything live and serialises in one step.
//!
//! ## Concurrency
//!
//! The store is **concurrent and sharded**: every partition sits behind its
//! own reader–writer lock, all mutating operations take `&self`, batches
//! route to shards lock-free ([`SynopsisStore::ingest_batch`]), and sealing
//! can run on background workers
//! ([`SynopsisStore::with_background_sealing`]) so ingest, sealing and
//! serving overlap.  Per-partition seal sequence numbers keep results
//! **deterministic**: the same record stream yields byte-identical sealed
//! segments at every thread count (pinned by the `store_concurrency`
//! suite).  Thread counts come from `pds_core::pool` (the `PDS_THREADS`
//! environment variable or `pool::set_num_threads`).
//!
//! ## Sharding semantics
//!
//! Basic-model and value-pdf records are per-item and route exactly.  An
//! x-tuple whose alternatives span several partitions is **split** into one
//! sub-tuple per partition: this preserves every per-item marginal (hence
//! every expected frequency and every synopsis built from moments) and
//! drops only the cross-partition exclusivity correlation — the same
//! boundary approximation the paper already accepts for its tuple-pdf
//! prefix arrays (Section 3.1).
//!
//! [`StreamRecord`]: pds_core::stream::StreamRecord
//! [`FrequencyQuery`]: https://docs.rs/probsyn
//! [`PdsError`]: pds_core::error::PdsError

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod memtable;
mod segment;
mod store;
pub mod wal;

pub use memtable::Memtable;
pub use segment::{Segment, SegmentSynopsis, SynopsisKind};
pub use store::{PartitionSpec, StoreConfig, StoreStats, SynopsisStore};
pub use wal::PartitionWal;
