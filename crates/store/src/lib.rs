//! # pds-store
//!
//! A **partitioned streaming-ingest and persistent synopsis store** on top
//! of the paper's probabilistic histogram and wavelet synopses: the
//! scale-out path from "build one synopsis over one relation" to "serve
//! approximate queries over a stream of arriving uncertain tuples".
//!
//! The lifecycle mirrors an LSM tree, with synopses in place of sorted runs:
//!
//! 1. **Ingest** — arriving [`StreamRecord`]s (any of the three uncertainty
//!    models) are routed to the item-range partition that owns them and
//!    buffered in that partition's [`Memtable`], which keeps exact expected
//!    frequencies incrementally so live data stays queryable.
//! 2. **Seal** — when a memtable reaches the configured threshold it is
//!    sealed into an immutable [`Segment`]: the buffered records become a
//!    probabilistic relation and the configured synopsis (histogram via the
//!    batched-sweep DP, or an SSE-optimal wavelet) is built over it.
//! 3. **Compact** — segments of one partition are recombined by summing
//!    their piecewise-constant estimates on the union of their boundaries
//!    and re-running the merge DP.  A size-tiered [`CompactionPolicy`]
//!    triggers rounds automatically at install time (run on the background
//!    seal workers against cloned segment handles, swapped in under a
//!    short write lock); [`SynopsisStore::merge_global`] recombines all
//!    partitions into one global `B`-bucket histogram (the candidate cut
//!    points are exactly the partition/bucket edges).
//! 4. **Serve** — range-sum/count estimates combine live memtables with
//!    sealed segments; the umbrella crate's `aqp` module routes its
//!    [`FrequencyQuery`]s here.  The read path is **sub-linear in store
//!    size** (see below): segment pruning, lazily-loaded synopsis blocks
//!    and a merged-synopsis cache keep a point query from touching cold
//!    segments at all.
//!
//! ## Read path
//!
//! Three layers make reads skip work without changing a single bit of any
//! answer (the equivalence is pinned bitwise by `tests/store_read_path.rs`
//! and the `pds_store_pipeline --read-gate` bench gate):
//!
//! * **Segment pruning.**  Every sealed segment carries prune metadata in
//!   its blob: the item-range fence and a small presence filter over the
//!   items its synopsis actually supports.  [`SynopsisStore::range_estimate`]
//!   and [`SnapshotView`] consult the fence/filter first and skip segments
//!   whose metadata proves a zero contribution.  Skipping is
//!   **bit-invisible** because a skipped segment's range sum is exactly
//!   `0.0` and the accumulation order of the remaining terms is preserved
//!   (segments in install order, then the live memtable, then each frozen
//!   memtable).  The [`StoreConfig::prune`] knob (default on) disables it
//!   for A/B runs; `pds_store_segments_{visited,pruned}_total` count the
//!   effect.
//! * **Lazy synopsis blocks.**  Blobs are block-structured (see below), so
//!   [`SynopsisStore::open_with_wal`] verifies and maps only each blob's
//!   footer and prune-metadata block at recovery; the synopsis block loads
//!   on first touch — a pruned-away or never-queried segment is never read
//!   from disk again.  Loads go through the fault-injectable vfs under the
//!   `block-read` site: a corrupt or unreadable block surfaces at first
//!   touch as the sticky degraded mode (the segment contributes `0.0`;
//!   reads keep serving; a clean reopen recovers), while
//!   [`StoreConfig::lazy_blocks`]` = false` restores the eager contract —
//!   every block verified at open, corruption fails the open.
//! * **Merged-synopsis cache.**  [`SynopsisStore::merge_global`] memoises
//!   its result keyed on the store's version counter (bumped at every
//!   structural commit: a sealed-segment install or a compaction swap) and
//!   the bucket budget; a repeat merge over a structurally unchanged store
//!   replays the cached histogram bit-identically.
//!   `pds_store_merge_cache_{hits,misses}_total` make the hit rate
//!   observable.
//!
//! Query bounds share one contract, `clamp_range`: an empty store, a
//! window past the domain, or an inverted window answers `0.0` (the
//! server pins this as the literal `OK 0` wire line); an in-domain `lo`
//! with an oversized `hi` clamps to the last item.
//!
//! ## Crash durability
//!
//! A store opened with [`SynopsisStore::open_with_wal`] is **restart-safe
//! end to end**.  Three artefacts share its directory, each CRC-checked:
//!
//! * **WAL** ([`wal`]) — every routed record, CRC-framed, group-committed
//!   once per ingest call/batch; covers the live and mid-seal window.
//! * **Segment blobs** — at install, each sealed segment is published as
//!   `seg-<p>-<seq>.bin` in the block-structured `PDSB` v2 container
//!   ([`blob`]): a prune-metadata block (item fence + presence filter) and
//!   the `PDSG` synopsis block, each CRC-checked, behind an index footer —
//!   so reopen can verify and map the metadata without reading the
//!   synopsis bytes (atomic tmp-rename publish; v1 single-block blobs
//!   still decode, eagerly).
//! * **`MANIFEST`** ([`manifest`]) — the append-only, versioned record of
//!   which blobs are live; *a manifest entry is a seal's commit point*, and
//!   compaction replaces entries through an atomic tmp-rename publish.
//!
//! Reopen order is **manifest → segment blobs → WAL tail**.  What a crash
//! can cost at each lifecycle stage — and, since the fault-injectable vfs
//! layer, what a *failing disk* at the same stage does to a store that
//! stays up (fault sites from [`FAULT_SITES`]; "degrades" means the sticky
//! read-only mode of [`SynopsisStore::degraded`], entered only after the
//! [`StoreConfig::io_retries`] budget is exhausted):
//!
//! | crash while the record/segment is… | crash outcome | I/O failure at the same stage (site) |
//! |---|---|---|
//! | buffered in a live memtable | replayed from the WAL (CRC-framed: a torn-but-parseable line is detected, not replayed wrong) | `wal-append` degrades before the memtable insert (nothing acknowledged, nothing lost); `wal-commit` degrades after it (the batch is unacknowledged but visible — the documented over-inclusion window) |
//! | frozen, segment build in flight | replayed from the frozen WAL log | `wal-rotate` restores the records to the live memtable and degrades |
//! | built, blob/manifest not yet written | replayed from the frozen WAL log | `blob-write` / `blob-publish` unfreeze the records back into the live memtable and WAL, then degrade |
//! | **installed** | reloaded from its blob via the manifest | `manifest-install` unfreezes and degrades (the published blob becomes an orphan, swept at the next reopen); a failed `wal-retire` afterwards is counted, never fatal — the manifest entry already covers the log |
//! | mid-compaction (merge or swap) | inputs stay authoritative until the manifest publish; the half-done output blob is swept at reopen | `manifest-replace` degrades with the inputs still authoritative; a failed superseded-blob `cleanup` is counted, never fatal |
//! | being recovered at reopen | n/a | `recovery-read` / `recovery-commit` abort [`SynopsisStore::open_with_wal`] with a [`PdsError`] — an open never half-succeeds or degrades |
//! | installed, synopsis block loaded lazily at first query | n/a (blocks reload from the blob) | `block-read` degrades at first touch: the segment contributes `0.0`, reads keep serving, writes refuse; a clean reopen recovers (eager mode moves the failure to the open instead) |
//!
//! Every deliverable of that table is pinned by the deterministic
//! crash-injection matrix (`tests/store_crash_matrix.rs`, labels in
//! [`crashpoint`]), the exhaustive **fault matrix**
//! (`tests/store_fault_matrix.rs`: every [`FAULT_SITES`] label × every
//! `pds_core::vfs::fault::ErrorClass`, 60 rows) and the corruption/fault
//! property suites: a torn file replays exactly the acknowledged prefix, a
//! bit-flipped blob or frame is a [`PdsError`], an injected EIO/ENOSPC/
//! short-write/fsync/rename failure is retried, degraded or counted per
//! the table — never a panic, never a silently wrong answer.  Transient
//! faults on idempotent steps are absorbed by the bounded retry
//! ([`StoreConfig::io_retries`] attempts, [`StoreConfig::io_backoff_ms`]
//! exponential backoff); appends are the designed exception (a partially
//! buffered frame cannot be rewound), so they degrade on first failure.
//! Dropping a degraded handle and reopening the directory recovers a
//! healthy, writable store.
//!
//! Persistence of whole stores additionally uses the versioned **compact
//! binary format** (see `pds_core::binio`): segments and stores encode to
//! self-describing byte blobs whose corrupted/truncated/version-skewed
//! variants decode to [`PdsError`]s.  JSON (`Segment::to_json`) stays
//! available as the debug encoding.  [`SynopsisStore::snapshot`] seals
//! everything live and serialises in one step.
//!
//! ## Concurrency
//!
//! The store is **concurrent and sharded**: every partition sits behind its
//! own reader–writer lock, all mutating operations take `&self`, batches
//! route to shards lock-free ([`SynopsisStore::ingest_batch`]), and sealing
//! can run on background workers
//! ([`SynopsisStore::with_background_sealing`]) so ingest, sealing and
//! serving overlap.  Compaction holds the shard write lock only to reserve
//! a round and to swap the merged segment in — the merge DP runs against
//! cloned segment handles.  Per-partition seal sequence numbers keep
//! results **deterministic**: the same record stream yields byte-identical
//! sealed segments at every thread count (pinned by the
//! `store_concurrency` suite; automatic compaction schedules rounds by
//! policy, so its *estimates* — not its byte layout — are the cross-thread
//! invariant).  Thread counts come from `pds_core::pool` (the
//! `PDS_THREADS` environment variable or `pool::set_num_threads`).
//!
//! ## Observability
//!
//! Every store carries a lock-free telemetry layer (`pds_core::telemetry`
//! primitives, wired in the crate-private `telemetry` module):
//! per-partition ingest counters,
//! freeze/WAL-rotation/compaction counters, log₂-bucketed latency
//! histograms for WAL group commits, seal builds, durable seal commits,
//! compaction rounds and every query operation
//! (`estimate`/`range_estimate`/`merge_global`/`snapshot_view`), a
//! recovery-time gauge, read-path effectiveness counters
//! (`pds_store_segments_{visited,pruned}_total`,
//! `pds_store_block_loads_total`,
//! `pds_store_merge_cache_{hits,misses}_total`), and a bounded event ring
//! of recent notable events
//! (seal installed, compaction committed, WAL rotated, recovery).  The
//! fault-injectable I/O layer feeds the same surface: retry counts
//! (`pds_store_io_retries_total`), I/O errors split by injected/real
//! (`pds_store_io_errors_total`), tolerated cleanup failures
//! (`pds_store_io_cleanup_errors_total`) and the
//! `pds_store_degraded` health gauge — which is maintained even with the
//! telemetry knob off, because degradation is operational state, not
//! observability.
//! [`SynopsisStore::render_metrics`] renders the Prometheus-style text
//! exposition (including the [`SynopsisStore::stats`] counters as
//! series); [`SynopsisStore::render_events`] dumps the decoded event
//! lines.  The [`StoreConfig::telemetry`] runtime knob (default on)
//! gates all recording; telemetry never takes a lock, never allocates on
//! the record path, and is **bit-invisible**: estimates, snapshots and
//! segment bytes are identical with the knob on or off (pinned by the
//! `telemetry_invisibility` suite), and ingest throughput with telemetry
//! enabled stays within 5% of disabled (asserted by the
//! `pds_store_pipeline --telemetry-gate` bench gate).
//!
//! ## Sharding semantics
//!
//! Basic-model and value-pdf records are per-item and route exactly.  An
//! x-tuple whose alternatives span several partitions is **split** into one
//! sub-tuple per partition: this preserves every per-item marginal (hence
//! every expected frequency and every synopsis built from moments) and
//! drops only the cross-partition exclusivity correlation — the same
//! boundary approximation the paper already accepts for its tuple-pdf
//! prefix arrays (Section 3.1).
//!
//! [`StreamRecord`]: pds_core::stream::StreamRecord
//! [`FrequencyQuery`]: https://docs.rs/probsyn
//! [`PdsError`]: pds_core::error::PdsError

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blob;
mod compaction;
pub mod crashpoint;
pub mod manifest;
mod memtable;
mod segment;
mod store;
mod telemetry;
pub mod wal;

pub use compaction::CompactionPolicy;
pub use memtable::Memtable;
pub use segment::{Segment, SegmentSynopsis, SynopsisKind};
pub use store::{PartitionSpec, SnapshotView, StoreConfig, StoreStats, SynopsisStore};
pub use telemetry::FAULT_SITES;
pub use wal::{PartitionWal, WalSync};
