//! Deterministic crash-injection matrix for the durable store.
//!
//! For every labeled crash point of the seal/compaction/WAL lifecycle (see
//! `pds_store::crashpoint`) and for `PDS_THREADS ∈ {1, 4}`, this suite
//! re-runs the test binary as a **child process** that executes a fixed
//! ingest workload against a durable store and genuinely aborts
//! (`std::process::abort`, no destructors, no buffered flushes) at the
//! armed point.  The parent then reopens the directory — manifest →
//! segment blobs → WAL tail — and asserts:
//!
//! * the child actually died at the point (a label that never fires is a
//!   test bug and fails loudly);
//! * the recovered record set is an **exact prefix** of the workload
//!   (nothing acknowledged lost, nothing replayed twice);
//! * every range estimate is **bitwise equal** to an uninterrupted
//!   in-memory store fed the same prefix (the workload uses dyadic
//!   probabilities and full per-segment budgets, so all arithmetic is
//!   exact and equality is not a tolerance check);
//! * the reopened store keeps working: it seals, snapshots and reopens
//!   again cleanly.

use std::path::PathBuf;
use std::process::Command;

use pds_core::metrics::ErrorMetric;
use pds_core::stream::StreamRecord;
use pds_store::{CompactionPolicy, PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 16;
const PARTS: usize = 2; // partition 0: items 0..8, partition 1: items 8..16
const THRESHOLD: usize = 6;
const RECORDS: usize = 26;

/// Dyadic probabilities (multiples of 1/8): every partial sum any replay
/// order can produce is exact in `f64`, so estimate comparisons are `==`.
const PROBS: [f64; 6] = [0.5, 0.25, 0.125, 0.75, 0.375, 0.625];

fn workload() -> Vec<StreamRecord> {
    (0..RECORDS)
        .map(|i| {
            let item = match i {
                // 18 records into partition 0: seals at i = 5, 11, 17; the
                // second and third installs each fill a size tier, so two
                // compaction rounds run mid-workload.
                0..=17 => i % 4,
                // 6 records into partition 1: seal at i = 23.
                18..=23 => 8 + i % 4,
                // Two records that stay live in the memtables.
                24 => 0,
                _ => 9,
            };
            StreamRecord::Basic {
                item,
                prob: PROBS[i % PROBS.len()],
            }
        })
        .collect()
}

fn config() -> StoreConfig {
    let mut cfg = StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        THRESHOLD,
        // Budget >= partition width: every synopsis is exact.
        N,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    cfg.compaction = Some(CompactionPolicy {
        min_merge: 2,
        tier_ratio: 4.0,
    });
    cfg
}

/// The child half: runs the workload against `PDS_CRASH_DIR` and lets the
/// armed crash point abort the process.  Ignored so ordinary test runs skip
/// it; the matrix spawns it with `--ignored --exact`.
#[test]
#[ignore = "child entry point of the crash matrix; spawned as a subprocess"]
fn crash_child() {
    let Ok(dir) = std::env::var("PDS_CRASH_DIR") else {
        return;
    };
    let threads: usize = std::env::var("PDS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
    let store = if threads > 1 {
        store.with_background_sealing(2)
    } else {
        store
    };
    for record in workload() {
        store.ingest(record).unwrap();
    }
    store.flush().unwrap();
    // Reaching this line means the armed label never fired.
    eprintln!("crash_child: workload completed without crashing");
}

/// One matrix row: the crash label, which hit of it to crash on, and the
/// exact acknowledged-record count under serial (inline) execution.  With
/// background sealing the main thread keeps ingesting while a worker dies,
/// so the count is only bounded below by the serial value.
struct Row {
    label: &'static str,
    at: usize,
    serial_count: u64,
}

const MATRIX: [Row; 12] = [
    // Crash right after the very first WAL append is flushed: exactly one
    // record is acknowledged and must replay.
    Row {
        label: "post-wal-append",
        at: 1,
        serial_count: 1,
    },
    // ... and mid-stream.
    Row {
        label: "post-wal-append",
        at: 13,
        serial_count: 13,
    },
    // First seal: the memtable froze (WAL rotated) but no segment exists.
    Row {
        label: "frozen-pre-build",
        at: 1,
        serial_count: 6,
    },
    // Fourth seal (partition 1), two compactions already behind us.
    Row {
        label: "frozen-pre-build",
        at: 4,
        serial_count: 24,
    },
    // The segment is built but neither blob nor manifest entry landed.
    Row {
        label: "built-pre-install",
        at: 1,
        serial_count: 6,
    },
    // The first blob is staged to `seg-*.bin.tmp` but never renamed: the
    // manifest has no entry, the staging file is swept, the frozen WAL
    // replays the seal.
    Row {
        label: "mid-blob-publish",
        at: 1,
        serial_count: 6,
    },
    Row {
        label: "built-pre-install",
        at: 3,
        serial_count: 18,
    },
    // Blob + manifest entry landed, the frozen WAL log did not retire:
    // the manifest entry must win (no double replay).
    Row {
        label: "installed-pre-wal-retire",
        at: 1,
        serial_count: 6,
    },
    Row {
        label: "installed-pre-wal-retire",
        at: 4,
        serial_count: 24,
    },
    // The merged segment is built (and staged) but never swapped in.
    Row {
        label: "mid-compaction-swap",
        at: 1,
        serial_count: 12,
    },
    // The rewritten manifest is staged to .tmp but never renamed (hit 1 is
    // the open-time republish, hit 2 the first compaction's publish).
    Row {
        label: "mid-manifest-publish",
        at: 2,
        serial_count: 12,
    },
    // The recovered live log is staged to `wal-*.log.tmp` but never
    // renamed.  Hit 1 fires during the child's *initial* `open_with_wal`
    // (the phase-3 commit of partition 0 on an empty directory), so the
    // child dies before acknowledging anything and the parent recovers an
    // empty store.
    Row {
        label: "mid-wal-recovery-commit",
        at: 1,
        serial_count: 0,
    },
];

fn run_matrix(threads: usize) {
    let records = workload();
    for row in &MATRIX {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "pds-crash-{}-{}-t{threads}-{}",
            row.label,
            row.at,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Run the workload in a child armed to abort at the labeled point.
        let exe = std::env::current_exe().unwrap();
        let status = Command::new(&exe)
            .args(["crash_child", "--exact", "--ignored", "--nocapture"])
            .env("PDS_CRASH_DIR", &dir)
            .env("PDS_CRASH_POINT", row.label)
            .env("PDS_CRASH_AT", row.at.to_string())
            .env("PDS_THREADS", threads.to_string())
            .status()
            .unwrap();
        assert!(
            !status.success(),
            "{} (at={}, threads={threads}): the crash point never fired",
            row.label,
            row.at
        );

        // Reopen: manifest -> segment blobs -> WAL tail.
        let reopened = SynopsisStore::open_with_wal(config(), &dir)
            .unwrap_or_else(|e| panic!("{} (at={}): reopen failed: {e}", row.label, row.at));
        let recovered = reopened.stats().ingested_records;
        assert!(
            recovered as usize <= records.len(),
            "{}: {recovered} records recovered, more than were ever ingested",
            row.label
        );
        if threads == 1 {
            assert_eq!(
                recovered, row.serial_count,
                "{} (at={}): serial execution must recover exactly the \
                 acknowledged prefix",
                row.label, row.at
            );
        } else {
            assert!(
                recovered >= row.serial_count,
                "{} (at={}, threads={threads}): recovered {recovered} < serial {}",
                row.label,
                row.at,
                row.serial_count
            );
        }

        // The recovered state must answer exactly like an uninterrupted
        // in-memory run over the same acknowledged prefix.
        let reference = SynopsisStore::new(config()).unwrap();
        reference
            .ingest_all(records[..recovered as usize].iter().cloned())
            .unwrap();
        let ranges = [
            (0usize, N - 1),
            (0, 7),
            (8, 15),
            (2, 5),
            (0, 0),
            (3, 3),
            (9, 9),
            (12, 14),
        ];
        for &(lo, hi) in &ranges {
            assert_eq!(
                reopened.range_estimate(lo, hi),
                reference.range_estimate(lo, hi),
                "{} (at={}, threads={threads}): range [{lo}, {hi}] diverged \
                 after recovery of {recovered} records",
                row.label,
                row.at
            );
        }

        // No half-installed leftovers: every blob on disk is manifest-live
        // (reopen swept orphans), and no `.tmp` staging files remain.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "{}: stale staging file {name} survived reopen",
                row.label
            );
        }
        // Frozen WAL logs and manifest entries never overlap: the record
        // mass carried by segments plus the live memtables must equal the
        // acknowledged prefix exactly (a double replay would inflate it).
        let segment_records: u64 = (0..PARTS)
            .flat_map(|p| reopened.segments(p))
            .map(|s| s.records())
            .sum();
        assert_eq!(
            segment_records + reopened.stats().live_records,
            recovered,
            "{} (at={}): records double-counted or lost between segments \
             and memtables",
            row.label,
            row.at
        );

        // The store keeps working after recovery: seal, snapshot, reopen
        // from the snapshot, and answer identically.
        reopened.seal_all().unwrap();
        let bytes = reopened.to_binary().unwrap();
        let restored = SynopsisStore::from_binary(&bytes).unwrap();
        for &(lo, hi) in &ranges {
            assert_eq!(
                restored.range_estimate(lo, hi),
                reference.range_estimate(lo, hi),
                "{}: snapshot round-trip diverged",
                row.label
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_matrix_serial() {
    run_matrix(1);
}

#[test]
fn crash_matrix_threaded() {
    run_matrix(4);
}
