//! Telemetry is **bit-invisible**: two stores differing only in the
//! [`StoreConfig::telemetry`] knob, fed the same stream through the same
//! lifecycle (batched ingest, sealing, automatic compaction, WAL
//! durability), answer every query bitwise-identically and serialise to
//! byte-identical snapshots and segments.  Scraping `render_metrics`
//! mid-stream on the instrumented store must not perturb anything either
//! — recording and rendering never touch the data path.  (Sealing runs
//! inline here: background workers make automatic-compaction *timing*
//! nondeterministic between any two runs, which would mask the knob.)

use pds_core::metrics::ErrorMetric;
use pds_core::stream::{basic_stream, BasicStreamConfig, StreamRecord};
use pds_store::{CompactionPolicy, PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 48;

fn config(telemetry: bool) -> StoreConfig {
    let mut cfg = StoreConfig::new(
        PartitionSpec::uniform(N, 4).unwrap(),
        40,
        6,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    cfg.compaction = Some(CompactionPolicy {
        min_merge: 2,
        tier_ratio: 4.0,
    });
    cfg.telemetry = telemetry;
    cfg
}

/// A mixed-model stream: basic records plus cross-partition x-tuples and
/// value pdfs, so the split path and every memtable shape is exercised.
fn workload() -> Vec<StreamRecord> {
    let mut records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 23,
    })
    .take(1_500)
    .collect();
    for i in 0..200 {
        let a = (i * 7) % N;
        let b = (i * 13 + N / 2) % N;
        if a != b {
            records.push(StreamRecord::Alternatives(vec![(a, 0.4), (b, 0.3)]));
        }
        records.push(StreamRecord::ValueDistribution {
            item: (i * 3) % N,
            entries: vec![(1.5, 0.5), (3.0, 0.25)],
        });
    }
    records
}

/// Drives one store through the full lifecycle; when `scrape` is set, the
/// metrics/events surfaces are rendered between phases (their output is
/// discarded — only their side effects, which must be none, matter).
fn run(store: &SynopsisStore, records: &[StreamRecord], scrape: bool) {
    for batch in records.chunks(113) {
        store.ingest_batch(batch.iter().cloned()).unwrap();
        if scrape {
            let _ = store.render_metrics();
        }
    }
    store.seal_all().unwrap();
    store.flush().unwrap();
    if scrape {
        let _ = store.render_metrics();
        let _ = store.render_events();
    }
}

fn grid_estimates(store: &SynopsisStore) -> Vec<u64> {
    let mut out = Vec::new();
    for lo in 0..N {
        for hi in [lo, (lo + 5).min(N - 1), N - 1] {
            out.push(store.range_estimate(lo, hi).to_bits());
        }
    }
    for item in 0..N {
        out.push(store.estimate(item).to_bits());
    }
    out
}

#[test]
fn estimates_snapshots_and_segments_are_identical_on_and_off() {
    let records = workload();
    let on = SynopsisStore::new(config(true)).unwrap();
    let off = SynopsisStore::new(config(false)).unwrap();
    run(&on, &records, true);
    run(&off, &records, false);

    assert_eq!(grid_estimates(&on), grid_estimates(&off));
    for p in 0..4 {
        assert_eq!(on.segments(p), off.segments(p), "partition {p}");
    }
    assert_eq!(on.to_binary().unwrap(), off.to_binary().unwrap());
    assert_eq!(on.stats(), off.stats());

    // Snapshot views and the global merge agree bitwise too.
    let (view_on, view_off) = (on.snapshot_view(), off.snapshot_view());
    for item in 0..N {
        assert_eq!(
            view_on.estimate(item).to_bits(),
            view_off.estimate(item).to_bits()
        );
    }
    let (merged_on, merged_off) = (on.merge_global(5).unwrap(), off.merge_global(5).unwrap());
    assert_eq!(
        merged_on.to_binary().unwrap(),
        merged_off.to_binary().unwrap()
    );

    // The knob actually took effect: only the instrumented store carries
    // non-zero instrumented series.
    let scrape_on = on.render_metrics();
    let scrape_off = off.render_metrics();
    assert!(scrape_on.contains("pds_store_telemetry_enabled 1"));
    assert!(scrape_off.contains("pds_store_telemetry_enabled 0"));
    assert!(scrape_on.contains("pds_store_ingest_records_total{partition=\"0\"}"));
    assert!(scrape_off.contains("pds_store_ingest_batches_total 0"));
    assert!(!on.render_events().is_empty());
    assert!(off.render_events().is_empty());
}

#[test]
fn wal_recovery_is_identical_on_and_off() {
    let records = workload();
    let base = std::env::temp_dir().join(format!("pds-telemetry-invis-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut reopened_bits: Vec<Vec<u64>> = Vec::new();
    let mut reopened_bytes: Vec<Vec<u8>> = Vec::new();
    for (label, telemetry) in [("on", true), ("off", false)] {
        let dir = base.join(label);
        {
            let store = SynopsisStore::open_with_wal(config(telemetry), &dir).unwrap();
            store.ingest_batch(records.iter().cloned()).unwrap();
            store.seal_all().unwrap();
            store.flush().unwrap();
            // More live records on top, left unsealed: the WAL tail must
            // replay them at reopen.
            store
                .ingest_batch(records.iter().take(77).cloned())
                .unwrap();
        }
        let reopened = SynopsisStore::open_with_wal(config(telemetry), &dir).unwrap();
        if telemetry {
            // Recovery is itself observable on the instrumented store.
            assert!(reopened
                .render_events()
                .iter()
                .any(|line| line.contains("recovery")));
        }
        reopened_bits.push(grid_estimates(&reopened));
        // snapshot() seals the replayed tail before serialising.
        reopened_bytes.push(reopened.snapshot().unwrap());
    }
    assert_eq!(reopened_bits[0], reopened_bits[1]);
    assert_eq!(reopened_bytes[0], reopened_bytes[1]);
    let _ = std::fs::remove_dir_all(&base);
}
