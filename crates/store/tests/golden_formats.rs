//! Byte-pinned golden fixtures for the on-disk formats: `PDSG` (segment),
//! `PDST` (whole store), the block-structured `PDSB` segment blob (and its
//! v1 CRC-trailed predecessor) and the `MANIFEST`.
//!
//! The fixtures in `tests/golden/` are checked into the repository.  Every
//! test here (a) re-encodes a deterministic artefact and asserts the bytes
//! are **identical** to the fixture, and (b) decodes the fixture and
//! asserts it still means the same thing — so an accidental format change
//! fails review instead of silently breaking stores written by older
//! builds.
//!
//! To bless an *intentional* format change, bump the affected
//! `BINARY_VERSION`, run with `PDS_GOLDEN_BLESS=1`, and commit the new
//! fixtures together with the decoder that still reads the old version.

use std::path::PathBuf;

use pds_core::metrics::ErrorMetric;
use pds_core::stream::StreamRecord;
use pds_store::blob;
use pds_store::manifest::Manifest;
use pds_store::{PartitionSpec, Segment, StoreConfig, SynopsisKind, SynopsisStore, WalSync};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `bytes` against the checked-in fixture (or writes it under
/// `PDS_GOLDEN_BLESS=1`).
fn check_golden(name: &str, bytes: &[u8]) {
    let path = golden_dir().join(name);
    if std::env::var("PDS_GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with PDS_GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, bytes,
        "the {name} disk format drifted from its golden fixture; if the change \
         is intentional, bump the format version and re-bless"
    );
}

/// The deterministic store every fixture derives from: 2 partitions over
/// 16 items, dyadic probabilities, two seals in partition 0 and one in
/// partition 1.
fn fixture_store() -> SynopsisStore {
    let store = SynopsisStore::new(StoreConfig::new(
        PartitionSpec::uniform(16, 2).unwrap(),
        4,
        8,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    ))
    .unwrap();
    let probs = [0.5, 0.25, 0.125, 0.75];
    for round in 0..2 {
        for (i, &prob) in probs.iter().enumerate() {
            store
                .ingest(StreamRecord::Basic {
                    item: i + 2 * round,
                    prob,
                })
                .unwrap();
        }
    }
    for (i, &prob) in probs.iter().enumerate() {
        store
            .ingest(StreamRecord::Basic { item: 10 + i, prob })
            .unwrap();
    }
    store.seal_all().unwrap();
    store
}

#[test]
fn segment_pdsg_format_is_pinned() {
    let store = fixture_store();
    let segment = &store.segments(0)[0];
    let bytes = segment.to_binary().unwrap();
    check_golden("segment.pdsg", &bytes);
    // The fixture still decodes to the same segment.
    let decoded =
        Segment::from_binary(&std::fs::read(golden_dir().join("segment.pdsg")).unwrap()).unwrap();
    assert_eq!(&decoded, segment);
}

#[test]
fn segment_blob_format_is_pinned() {
    let store = fixture_store();
    let segment = &store.segments(1)[0];
    let encoded = segment.to_blob().unwrap();
    check_golden("segment.blob", &encoded);
    let fixture = std::fs::read(golden_dir().join("segment.blob")).unwrap();
    let decoded = Segment::from_blob(&fixture).unwrap();
    assert_eq!(&decoded, segment);
    // The v2 block structure itself is pinned, not just the whole-blob
    // round trip: the footer describes the fixture's exact geometry, the
    // meta block decodes on its own (the lazy-open path reads nothing
    // else), and the synopsis block is byte-for-byte the segment's PDSG
    // encoding (the lazy-load path decodes it in isolation).
    let footer = blob::decode_footer(&fixture).unwrap();
    assert_eq!(footer.total_len, fixture.len() as u64);
    let meta = blob::decode_blob_meta(&fixture).unwrap();
    assert_eq!(meta.start, segment.start());
    assert_eq!(meta.width, segment.width());
    assert_eq!(meta.records, segment.records());
    let syn_off = footer.synopsis_offset() as usize;
    let syn = &fixture[syn_off..syn_off + footer.syn_len as usize];
    assert_eq!(syn, segment.to_binary().unwrap().as_slice());
    let block = blob::decode_synopsis_block(syn, footer.syn_crc, &meta).unwrap();
    assert_eq!(&block, segment);
}

#[test]
fn segment_blob_v1_format_still_decodes() {
    // v1 blobs (raw PDSG bytes + CRC-32 trailer) predate the
    // block-structured PDSB container; directories written by older builds
    // must keep opening, so the v1 fixture is pinned decode-only.
    let store = fixture_store();
    let segment = &store.segments(1)[0];
    let fixture = std::fs::read(golden_dir().join("segment-v1.blob")).unwrap();
    let decoded = Segment::from_blob(&fixture).unwrap();
    assert_eq!(&decoded, segment);
    // And a v1 blob is recognisably *not* a v2 container: the lazy opener
    // relies on the footer probe failing cleanly to fall back to eager.
    assert!(blob::decode_footer(&fixture).is_err());
}

#[test]
fn store_pdst_format_is_pinned() {
    let store = fixture_store();
    let bytes = store.to_binary().unwrap();
    check_golden("store.pdst", &bytes);
    let decoded =
        SynopsisStore::from_binary(&std::fs::read(golden_dir().join("store.pdst")).unwrap())
            .unwrap();
    assert_eq!(decoded.config(), store.config());
    assert_eq!(decoded.stats(), store.stats());
    for (lo, hi) in [(0usize, 15usize), (0, 7), (10, 13), (5, 5)] {
        assert_eq!(decoded.range_estimate(lo, hi), store.range_estimate(lo, hi));
    }
}

#[test]
fn manifest_format_is_pinned() {
    // A deterministic manifest history: three installs, then a compaction
    // replacing partition 0's two segments with one.  `replace` publishes a
    // full rewrite, so the resulting file is exactly the canonical encoding
    // of the final live set.
    let dir = std::env::temp_dir().join(format!("pds-golden-manifest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut manifest, live) = Manifest::open(&dir, WalSync::Flush).unwrap();
        assert!(live.is_empty());
        manifest.install(0, 0).unwrap();
        manifest.install(1, 0).unwrap();
        manifest.install(0, 1).unwrap();
        manifest.replace(0, &[0, 1], 2).unwrap();
    }
    let bytes = std::fs::read(dir.join("MANIFEST")).unwrap();
    check_golden("MANIFEST.golden", &bytes);
    // The fixture still loads to the same live set.
    let golden_dir_copy =
        std::env::temp_dir().join(format!("pds-golden-manifest-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&golden_dir_copy);
    std::fs::create_dir_all(&golden_dir_copy).unwrap();
    std::fs::copy(
        golden_dir().join("MANIFEST.golden"),
        golden_dir_copy.join("MANIFEST"),
    )
    .unwrap();
    let (_m, live) = Manifest::open(&golden_dir_copy, WalSync::Flush).unwrap();
    assert_eq!(live, vec![(0, 2), (1, 0)]);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&golden_dir_copy);
}
