//! Read-path acceleration equivalence suite: segment pruning, lazy
//! synopsis blocks and the merged-synopsis cache must all be **bitwise
//! invisible** — every estimate, view answer and merged histogram is
//! bit-identical with each knob on or off, at every pool width — while
//! the telemetry counters prove the fast paths actually engaged.

use pds_core::metrics::ErrorMetric;
use pds_core::pool;
use pds_core::stream::StreamRecord;
use pds_store::{PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

/// Domain and partitioning: 4 partitions of 12 items each.
const N: usize = 48;
const PARTS: usize = 4;
const BAND: usize = 2;
const BANDS: usize = 6;

fn config() -> StoreConfig {
    StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        1 << 20, // manual seals only: bursts control segment fences
        8,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    )
}

/// One burst of records confined to band `k` of every partition: items
/// `p*12 + [2k, 2k+2)`.  Sealing after each burst yields `BANDS` segments
/// per partition with narrow, disjoint support fences — the shape pruning
/// exists for.
fn burst(k: usize) -> Vec<StreamRecord> {
    let width = N / PARTS;
    let mut records = Vec::new();
    for p in 0..PARTS {
        for j in 0..BAND {
            let item = p * width + k * BAND + j;
            for rep in 0..4usize {
                let prob = 0.05 + ((item * 7 + rep * 3) % 17) as f64 * 0.05;
                records.push(StreamRecord::Basic { item, prob });
            }
        }
    }
    records
}

/// Builds a store segment-band by segment-band under `cfg`.
fn banded_store(cfg: StoreConfig) -> SynopsisStore {
    let store = SynopsisStore::new(cfg).unwrap();
    for k in 0..BANDS {
        store.ingest_batch(burst(k)).unwrap();
        store.seal_all().unwrap();
    }
    assert_eq!(store.stats().segments, PARTS * BANDS);
    store
}

/// The full bitwise answer surface: every point estimate, a grid of range
/// estimates, and the matching snapshot-view answers.
fn answer_bits(store: &SynopsisStore) -> Vec<u64> {
    let view = store.snapshot_view();
    let mut out = Vec::new();
    for lo in 0..N {
        out.push(store.estimate(lo).to_bits());
        out.push(view.estimate(lo).to_bits());
        for hi in [lo, lo + 2, lo + 11, N - 1, N + 100] {
            out.push(store.range_estimate(lo, hi).to_bits());
            out.push(view.range_estimate(lo, hi).to_bits());
        }
    }
    out
}

/// The value of one counter in the Prometheus-style exposition.
fn metric(store: &SynopsisStore, name: &str) -> u64 {
    let text = store.render_metrics();
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
}

/// Pruning answers bit-identically to the unpruned path — per point, per
/// range, per view — at every pool width, while actually skipping most
/// segments on narrow queries.
#[test]
fn pruning_is_bitwise_invisible_at_every_pool_width() {
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4] {
        pool::set_num_threads(Some(threads));
        let pruned = banded_store(config());
        let unpruned = banded_store(StoreConfig {
            prune: false,
            ..config()
        });

        let bits = answer_bits(&pruned);
        assert_eq!(
            bits,
            answer_bits(&unpruned),
            "pruned vs unpruned diverged at {threads} threads"
        );
        match &reference {
            None => reference = Some(bits),
            Some(reference) => assert_eq!(
                &bits, reference,
                "answers drifted across pool widths at {threads} threads"
            ),
        }

        // The knob did real work: narrow queries skipped segments on the
        // pruning store and visited everything on the other.
        assert!(
            metric(&pruned, "pds_store_segments_pruned_total") > 0,
            "banded narrow queries must prune segments"
        );
        assert_eq!(metric(&unpruned, "pds_store_segments_pruned_total"), 0);
    }
    pool::set_num_threads(None);
}

/// A point query inside a segment's fence but outside its synopsis
/// support is pruned by the presence filter — the fence alone could not
/// have skipped it.
#[test]
fn point_queries_consult_the_presence_filter() {
    let store = SynopsisStore::new(StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        1 << 20,
        N / PARTS, // lossless per partition: support is exactly the fed items
        SynopsisKind::Histogram(ErrorMetric::Sse),
    ))
    .unwrap();
    // Support {0, 5} in partition 0: the fence is [0, 5], so only the
    // filter can prove item 3 absent.
    for item in [0usize, 5] {
        for _ in 0..3 {
            store
                .ingest(StreamRecord::Basic { item, prob: 0.4 })
                .unwrap();
        }
    }
    store.seal_all().unwrap();
    assert_eq!(store.stats().segments, 1);

    let before = metric(&store, "pds_store_segments_pruned_total");
    assert_eq!(store.range_estimate(3, 3).to_bits(), 0f64.to_bits());
    assert_eq!(
        metric(&store, "pds_store_segments_pruned_total"),
        before + 1,
        "an in-fence point miss must be pruned by the filter"
    );
    // The supported item is visited, not pruned, and answers its mass.
    let before = metric(&store, "pds_store_segments_pruned_total");
    assert!(store.range_estimate(5, 5) > 0.0);
    assert_eq!(metric(&store, "pds_store_segments_pruned_total"), before);
}

/// Lazy reopen answers bit-identically to an eager reopen, loads no
/// synopsis block until a query touches it, and loads only the touched
/// segments for a narrow query.
#[test]
fn lazy_reopen_is_bitwise_identical_and_loads_on_touch() {
    let dir = std::env::temp_dir().join(format!("pds-read-path-lazy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        for k in 0..BANDS {
            store.ingest_batch(burst(k)).unwrap();
            store.seal_all().unwrap();
        }
    }

    let lazy = SynopsisStore::open_with_wal(config(), &dir).unwrap();
    assert_eq!(
        metric(&lazy, "pds_store_block_loads_total"),
        0,
        "a lazy reopen must not read any synopsis block"
    );
    // A one-band query in one partition touches exactly one segment.
    let narrow = lazy.range_estimate(0, BAND - 1);
    assert!(narrow > 0.0);
    assert_eq!(metric(&lazy, "pds_store_block_loads_total"), 1);

    let lazy_bits = answer_bits(&lazy);
    assert!(
        metric(&lazy, "pds_store_block_loads_total") <= (PARTS * BANDS) as u64,
        "each block loads at most once"
    );

    let eager = SynopsisStore::open_with_wal(
        StoreConfig {
            lazy_blocks: false,
            ..config()
        },
        &dir,
    )
    .unwrap();
    assert_eq!(
        lazy_bits,
        answer_bits(&eager),
        "lazy vs eager reopen diverged"
    );
    drop(lazy);
    drop(eager);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A repeated `merge_global` over a structurally unchanged store replays
/// the cached histogram bit-identically; a seal or compaction invalidates
/// the entry and the recomputed merge matches a cache-less store.
#[test]
fn merge_cache_replays_bitwise_and_invalidates_on_structural_commits() {
    let store = banded_store(config());
    let cold = store.merge_global(6).unwrap();
    assert_eq!(metric(&store, "pds_store_merge_cache_misses_total"), 1);

    let warm = store.merge_global(6).unwrap();
    assert_eq!(
        cold.to_binary().unwrap(),
        warm.to_binary().unwrap(),
        "cache replay must be byte-identical"
    );
    assert_eq!(metric(&store, "pds_store_merge_cache_hits_total"), 1);

    // A different budget is a different merge — never served from the
    // cached entry.
    let other = store.merge_global(4).unwrap();
    assert_eq!(other.num_buckets(), 4);
    assert_eq!(metric(&store, "pds_store_merge_cache_misses_total"), 2);

    // A structural commit (a sealed install) invalidates; the recomputed
    // merge equals the merge of a fresh store with the same content.
    store.ingest_batch(burst(0)).unwrap();
    store.seal_all().unwrap();
    let after = store.merge_global(6).unwrap();
    assert_eq!(metric(&store, "pds_store_merge_cache_misses_total"), 3);

    let mirror = SynopsisStore::new(config()).unwrap();
    for k in 0..BANDS {
        mirror.ingest_batch(burst(k)).unwrap();
        mirror.seal_all().unwrap();
    }
    mirror.ingest_batch(burst(0)).unwrap();
    mirror.seal_all().unwrap();
    assert_eq!(
        after.to_binary().unwrap(),
        mirror.merge_global(6).unwrap().to_binary().unwrap(),
        "post-invalidation merge must equal a cache-cold rebuild"
    );

    // Compaction is a structural commit too.
    store.compact_all().unwrap();
    let compacted = store.merge_global(6).unwrap();
    assert_eq!(metric(&store, "pds_store_merge_cache_misses_total"), 4);
    let _ = compacted;
}
