//! The deterministic I/O fault matrix: every labelled fault site
//! ([`pds_store::FAULT_SITES`]) crossed with every injectable error class
//! ([`ErrorClass::ALL`]) — 60 rows.  Each row arms the vfs fault injector
//! at one site, drives the store operation that crosses it, and asserts
//! the robustness contract:
//!
//! - **no panic** — every failure surfaces as a [`PdsError`];
//! - **no acknowledged data loss** — queries stay bitwise-equal to an
//!   in-memory mirror of the acknowledged records, during the failure and
//!   after a reopen;
//! - **accurate degradation** — persistent durable-path failures flip the
//!   store into sticky read-only mode ([`PdsError::Degraded`]), cleanup
//!   failures are counted but never degrade, and recovery failures abort
//!   the open instead of degrading a half-built store;
//! - **clean recovery** — dropping the fault and reopening the directory
//!   restores a healthy, writable store.
//!
//! Transient rows (a fault that clears before the retry budget is spent)
//! assert the opposite: the operation succeeds, the store stays healthy,
//! and the retry is visible in telemetry.
//!
//! Rows serialise on the injector's process-wide test lock (armed via
//! [`fault::arm`]) and scope every fault to their own temp directory, so
//! the suite is safe under any `--test-threads`.
//!
//! [`PdsError`]: pds_core::error::PdsError
//! [`PdsError::Degraded`]: pds_core::error::PdsError::Degraded
//! [`ErrorClass::ALL`]: pds_core::vfs::fault::ErrorClass::ALL
//! [`fault::arm`]: pds_core::vfs::fault::arm

use pds_core::error::PdsError;
use pds_core::metrics::ErrorMetric;
use pds_core::stream::StreamRecord;
use pds_core::vfs::fault::{self, ErrorClass, FaultSpec};
use pds_store::{CompactionPolicy, PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 24;
const PARTS: usize = 2;

/// Base configuration: huge seal threshold (seals are driven manually),
/// full synopsis budget (exact segments, so mirror comparisons are
/// bitwise), fsync-tier durability so every labelled fsync site actually
/// executes.
fn config() -> StoreConfig {
    let mut cfg = StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        usize::MAX >> 1,
        N,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    cfg.wal_sync = pds_store::WalSync::Fsync;
    cfg
}

/// [`config`] plus automatic size-tiered compaction — the rows that need a
/// compaction round (`manifest-replace`, `cleanup`) trigger it by sealing
/// two same-sized segments.
fn compact_config() -> StoreConfig {
    let mut cfg = config();
    cfg.compaction = Some(CompactionPolicy {
        min_merge: 2,
        tier_ratio: 3.0,
    });
    cfg
}

fn unique_dir(site: &str, class: ErrorClass) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pds-fault-{site}-{}-{}",
        class.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `k` acknowledged records, all routed to partition 0 (items `0..12`
/// under the uniform 24/2 split) so a single `seal_partition(0)` covers
/// them.
fn acked_records(k: usize) -> Vec<StreamRecord> {
    (0..k)
        .map(|i| StreamRecord::Basic {
            item: i % 12,
            prob: 0.05 + 0.07 * i as f64,
        })
        .collect()
}

/// The record whose acknowledgement the armed fault prevents.
fn failing_record() -> StreamRecord {
    StreamRecord::Basic {
        item: 7,
        prob: 0.33,
    }
}

/// Bitwise query equivalence over the same ranges the durability
/// proptests pin.
fn assert_same_estimates(got: &SynopsisStore, want: &SynopsisStore, ctx: &str) {
    for (lo, hi) in [(0usize, N - 1), (0, 9), (10, 17), (5, 5), (20, 23)] {
        assert_eq!(
            got.range_estimate(lo, hi),
            want.range_estimate(lo, hi),
            "range [{lo}, {hi}] diverged: {ctx}"
        );
    }
}

/// True when `store`'s estimates bitwise-match `want` on every pinned
/// range (the membership half of [`assert_same_estimates`]).
fn matches_estimates(got: &SynopsisStore, want: &SynopsisStore) -> bool {
    [(0usize, N - 1), (0, 9), (10, 17), (5, 5), (20, 23)]
        .into_iter()
        .all(|(lo, hi)| got.range_estimate(lo, hi) == want.range_estimate(lo, hi))
}

fn assert_degraded(result: Result<(), PdsError>, ctx: &str) {
    match result {
        Err(PdsError::Degraded { cause }) => {
            assert!(
                cause.contains("injected"),
                "degradation cause must carry the injected error: {cause} ({ctx})"
            );
        }
        other => panic!("expected PdsError::Degraded, got {other:?} ({ctx})"),
    }
}

/// Extracts a counter's value from the Prometheus text rendering.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

/// Reopening the directory after the fault clears must yield a healthy,
/// writable store answering exactly like `mirror`.
fn assert_clean_reopen(dir: &std::path::Path, mirror: &SynopsisStore, ctx: &str) {
    let reopened = SynopsisStore::open_with_wal(config(), dir)
        .unwrap_or_else(|e| panic!("reopen after disarm must succeed ({ctx}): {e}"));
    assert!(
        reopened.degraded().is_none(),
        "degradation must not survive a reopen ({ctx})"
    );
    assert_same_estimates(&reopened, mirror, &format!("after clean reopen ({ctx})"));
    // Writable again: the degraded mode was the handle's, not the disk's.
    reopened
        .ingest(StreamRecord::Basic {
            item: 11,
            prob: 0.5,
        })
        .unwrap_or_else(|e| panic!("reopened store must accept writes ({ctx}): {e}"));
}

/// `wal-append` × every class: appends are not retryable, so the first
/// injected failure degrades the store.  The failed record was never
/// acknowledged and never reached the memtable — queries keep answering
/// from the acknowledged prefix, bitwise.
#[test]
fn wal_append_faults_degrade_without_losing_acked_records() {
    for class in ErrorClass::ALL {
        let ctx = format!("wal-append/{}", class.name());
        let dir = unique_dir("wal-append", class);
        let mirror = SynopsisStore::new(config()).unwrap();
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        for record in acked_records(6) {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record).unwrap();
        }

        let guard = fault::arm(FaultSpec::persistent("wal-append", class).scoped(&dir));
        let before = fault::injected_total();
        assert_degraded(store.ingest(failing_record()), &ctx);
        assert!(
            fault::injected_total() > before,
            "the row must actually inject its fault ({ctx})"
        );
        assert_eq!(
            store.degraded().as_deref().map(|c| &c[..10]),
            Some("wal-append"),
            "degradation must name the faulting site ({ctx})"
        );
        assert_same_estimates(&store, &mirror, &format!("during degradation ({ctx})"));

        // Sticky: the next write is refused up front, without touching the
        // (still-faulty) disk.
        let quiesced = fault::injected_total();
        assert_degraded(store.ingest(failing_record()), &ctx);
        assert_eq!(
            fault::injected_total(),
            quiesced,
            "degraded writes must not reach the vfs layer ({ctx})"
        );

        drop(store);
        drop(guard);
        assert_clean_reopen(&dir, &mirror, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `wal-commit` × every class: the group-commit flush fails after the
/// append landed, so the record sits in the memtable unacknowledged — the
/// documented over-inclusion window.  Queries match the mirror *with* the
/// failed record; a reopen may serve either side of the acknowledgement
/// boundary, but never loses an acknowledged record.
#[test]
fn wal_commit_faults_degrade_with_bounded_over_inclusion() {
    for class in ErrorClass::ALL {
        let ctx = format!("wal-commit/{}", class.name());
        let dir = unique_dir("wal-commit", class);
        let mirror_acked = SynopsisStore::new(config()).unwrap();
        let mirror_over = SynopsisStore::new(config()).unwrap();
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        for record in acked_records(6) {
            mirror_acked.ingest(record.clone()).unwrap();
            mirror_over.ingest(record.clone()).unwrap();
            store.ingest(record).unwrap();
        }

        let guard = fault::arm(FaultSpec::persistent("wal-commit", class).scoped(&dir));
        let before = fault::injected_total();
        assert_degraded(store.ingest(failing_record()), &ctx);
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        mirror_over.ingest(failing_record()).unwrap();
        assert!(store.degraded().is_some(), "store must degrade ({ctx})");
        assert_same_estimates(&store, &mirror_over, &format!("during degradation ({ctx})"));

        drop(store);
        drop(guard);
        let reopened = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        assert!(reopened.degraded().is_none(), "sticky past reopen ({ctx})");
        assert!(
            matches_estimates(&reopened, &mirror_acked)
                || matches_estimates(&reopened, &mirror_over),
            "a reopen must serve the acknowledged prefix, with at most the \
             one unacknowledged record over-included ({ctx})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The seal commit path — `wal-rotate`, `blob-write`, `blob-publish`,
/// `manifest-install` — × every class: a persistent failure anywhere in
/// the freeze→build→publish→install chain degrades the store *and*
/// restores the frozen records to the live memtable, so queries never
/// miss them and a later reopen replays them from the WAL.
#[test]
fn seal_path_faults_restore_records_and_degrade() {
    for site in [
        "wal-rotate",
        "blob-write",
        "blob-publish",
        "manifest-install",
    ] {
        for class in ErrorClass::ALL {
            let ctx = format!("{site}/{}", class.name());
            let dir = unique_dir(site, class);
            let mirror = SynopsisStore::new(config()).unwrap();
            let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
            for record in acked_records(6) {
                mirror.ingest(record.clone()).unwrap();
                store.ingest(record).unwrap();
            }

            let guard = fault::arm(FaultSpec::persistent(site, class).scoped(&dir));
            let before = fault::injected_total();
            assert_degraded(store.seal_partition(0).map(|_| ()), &ctx);
            assert!(fault::injected_total() > before, "no injection ({ctx})");
            assert!(store.degraded().is_some(), "store must degrade ({ctx})");
            // The unfreeze restored every record: the un-sealed mirror
            // still matches bitwise.
            assert_same_estimates(&store, &mirror, &format!("during degradation ({ctx})"));
            // Sticky: seals are refused up front now.
            assert_degraded(store.seal_partition(0).map(|_| ()), &ctx);

            drop(store);
            drop(guard);
            let reopened = SynopsisStore::open_with_wal(config(), &dir).unwrap();
            assert!(reopened.degraded().is_none(), "healthy reopen ({ctx})");
            assert_same_estimates(&reopened, &mirror, &format!("after reopen ({ctx})"));
            // The disk recovered: the same seal now commits, and the
            // sealed stores still agree.
            assert!(reopened.seal_partition(0).unwrap(), "seal retry ({ctx})");
            assert!(mirror.seal_partition(0).unwrap());
            assert_same_estimates(&reopened, &mirror, &format!("after healed seal ({ctx})"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// `manifest-replace` × every class: a failed compaction commit leaves the
/// input segments authoritative — the all-or-nothing manifest rewrite
/// never lands, so queries (and a reopen) answer from the un-compacted
/// segments, bitwise-equal to a mirror that never compacted.
#[test]
fn manifest_replace_faults_leave_compaction_inputs_authoritative() {
    for class in ErrorClass::ALL {
        let ctx = format!("manifest-replace/{}", class.name());
        let dir = unique_dir("manifest-replace", class);
        // The mirror never compacts: on a failed round the durable store's
        // inputs must stay exactly equivalent to it.
        let mirror = SynopsisStore::new(config()).unwrap();
        let store = SynopsisStore::open_with_wal(compact_config(), &dir).unwrap();
        let batch = acked_records(6);
        for record in &batch {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record.clone()).unwrap();
        }
        assert!(store.seal_partition(0).unwrap());
        assert!(mirror.seal_partition(0).unwrap());
        for record in &batch {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record.clone()).unwrap();
        }
        assert!(mirror.seal_partition(0).unwrap());

        // The second seal installs a same-sized segment, filling the
        // min_merge=2 tier: the compaction round runs inline right after
        // the install — and its manifest rewrite hits the armed fault.
        let guard = fault::arm(FaultSpec::persistent("manifest-replace", class).scoped(&dir));
        let before = fault::injected_total();
        assert_degraded(store.seal_partition(0).map(|_| ()), &ctx);
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        assert!(store.degraded().is_some(), "store must degrade ({ctx})");
        assert_same_estimates(&store, &mirror, &format!("inputs authoritative ({ctx})"));

        drop(store);
        drop(guard);
        let reopened = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        assert!(reopened.degraded().is_none(), "healthy reopen ({ctx})");
        assert_same_estimates(&reopened, &mirror, &format!("after reopen ({ctx})"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `recovery-read` and `recovery-commit` × every class: a fault during
/// recovery aborts `open_with_wal` with an error — never a panic, never a
/// half-recovered store that would then degrade.  Disarming and reopening
/// recovers every acknowledged record.
#[test]
fn recovery_faults_fail_the_open_cleanly() {
    for site in ["recovery-read", "recovery-commit"] {
        for class in ErrorClass::ALL {
            let ctx = format!("{site}/{}", class.name());
            let dir = unique_dir(site, class);
            let mirror = SynopsisStore::new(config()).unwrap();
            {
                let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
                for record in acked_records(6) {
                    mirror.ingest(record.clone()).unwrap();
                    store.ingest(record).unwrap();
                }
                // Half the records sealed: recovery must read the
                // manifest and blobs, then re-commit the WAL tail.
                store.seal_partition(0).unwrap();
                mirror.seal_partition(0).unwrap();
                let tail = StreamRecord::Basic {
                    item: 3,
                    prob: 0.21,
                };
                store.ingest(tail.clone()).unwrap();
                mirror.ingest(tail).unwrap();
            }

            let guard = fault::arm(FaultSpec::persistent(site, class).scoped(&dir));
            let before = fault::injected_total();
            let result = SynopsisStore::open_with_wal(config(), &dir);
            assert!(
                result.is_err(),
                "a faulted recovery must abort the open ({ctx})"
            );
            assert!(fault::injected_total() > before, "no injection ({ctx})");
            drop(result);

            drop(guard);
            assert_clean_reopen(&dir, &mirror, &ctx);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// `wal-retire` × every class: the seal already manifest-committed when
/// the frozen log retires, so a failed retire costs disk space, not data —
/// the seal succeeds, the store stays healthy, the failure is counted, and
/// the reopen skips the covered log.
#[test]
fn wal_retire_faults_are_counted_not_fatal() {
    for class in ErrorClass::ALL {
        let ctx = format!("wal-retire/{}", class.name());
        let dir = unique_dir("wal-retire", class);
        let mirror = SynopsisStore::new(config()).unwrap();
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        for record in acked_records(6) {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record).unwrap();
        }

        let guard = fault::arm(FaultSpec::persistent("wal-retire", class).scoped(&dir));
        let before = fault::injected_total();
        assert!(
            store
                .seal_partition(0)
                .unwrap_or_else(|e| panic!("a failed retire must not fail the seal ({ctx}): {e}")),
            "the seal must commit ({ctx})"
        );
        assert!(mirror.seal_partition(0).unwrap());
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        assert!(
            store.degraded().is_none(),
            "cleanup failures must never degrade ({ctx})"
        );
        let metrics = store.render_metrics();
        assert!(
            metric_value(&metrics, "pds_store_io_cleanup_errors_total") >= 1,
            "the failed retire must be counted ({ctx}):\n{metrics}"
        );
        assert_same_estimates(&store, &mirror, &format!("after tolerated fault ({ctx})"));
        // The un-retired frozen log is still on disk; the manifest entry
        // covers it, so the reopen must skip (and sweep) it, not replay it.
        let stale = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".sealing"));
        assert!(
            stale,
            "the frozen log must survive the failed retire ({ctx})"
        );

        drop(store);
        drop(guard);
        assert_clean_reopen(&dir, &mirror, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `cleanup` × every class: deleting a compaction's superseded blobs is
/// best-effort — the round commits, the store stays healthy, the failures
/// are counted, the orphaned blobs survive on disk, and the next reopen
/// sweeps them.
#[test]
fn cleanup_faults_leave_orphans_swept_at_reopen() {
    for class in ErrorClass::ALL {
        let ctx = format!("cleanup/{}", class.name());
        let dir = unique_dir("cleanup", class);
        let mirror = SynopsisStore::new(compact_config()).unwrap();
        let store = SynopsisStore::open_with_wal(compact_config(), &dir).unwrap();
        let batch = acked_records(6);
        for record in &batch {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record.clone()).unwrap();
        }
        assert!(store.seal_partition(0).unwrap());
        assert!(mirror.seal_partition(0).unwrap());
        for record in &batch {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record.clone()).unwrap();
        }

        // The second seal triggers the inline compaction round; only the
        // superseded-blob deletion is armed to fail.
        let guard = fault::arm(FaultSpec::persistent("cleanup", class).scoped(&dir));
        let before = fault::injected_total();
        assert!(store.seal_partition(0).unwrap(), "seal must commit ({ctx})");
        assert!(mirror.seal_partition(0).unwrap());
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        assert!(
            store.degraded().is_none(),
            "cleanup failures must never degrade ({ctx})"
        );
        let metrics = store.render_metrics();
        assert!(
            metric_value(&metrics, "pds_store_io_cleanup_errors_total") >= 2,
            "both superseded input blobs must be counted ({ctx}):\n{metrics}"
        );
        assert_same_estimates(&store, &mirror, &format!("after tolerated fault ({ctx})"));
        let orphans = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("seg-") && n.ends_with(".bin"))
            .count();
        assert!(
            orphans >= 3,
            "the superseded blobs must survive the failed delete ({ctx}): {orphans}"
        );

        drop(store);
        drop(guard);
        let reopened = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        assert!(reopened.degraded().is_none(), "healthy reopen ({ctx})");
        assert_same_estimates(&reopened, &mirror, &format!("after reopen ({ctx})"));
        let survivors = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("seg-") && n.ends_with(".bin"))
            .count();
        assert_eq!(
            survivors, 1,
            "the reopen must sweep the orphaned inputs ({ctx})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Transient faults at every retried site: a single injected failure is
/// absorbed by the bounded retry — the operation succeeds, the store stays
/// healthy, queries stay bitwise-correct, and the retry shows up in
/// telemetry.  Classes rotate across the sites so every class is exercised
/// on the transient path too.
#[test]
fn transient_faults_are_absorbed_by_retry() {
    // (site, trigger op) — `manifest-install` triggers on its second
    // matching op because the first (the pre-install length probe) sits
    // outside the retry loop by design.
    let rows: [(&str, u64); 6] = [
        ("wal-commit", 1),
        ("wal-rotate", 1),
        ("blob-write", 1),
        ("blob-publish", 1),
        ("manifest-install", 2),
        ("manifest-replace", 1),
    ];
    for (i, (site, at)) in rows.into_iter().enumerate() {
        let class = ErrorClass::ALL[i % ErrorClass::ALL.len()];
        let ctx = format!("transient {site}/{}", class.name());
        let dir = unique_dir("transient", class);
        let needs_compaction = site == "manifest-replace";
        let cfg = if needs_compaction {
            compact_config()
        } else {
            config()
        };
        let mirror = SynopsisStore::new(cfg.clone()).unwrap();
        let store = SynopsisStore::open_with_wal(cfg, &dir).unwrap();
        let batch = acked_records(6);
        for record in &batch {
            mirror.ingest(record.clone()).unwrap();
            store.ingest(record.clone()).unwrap();
        }
        if needs_compaction {
            assert!(store.seal_partition(0).unwrap());
            assert!(mirror.seal_partition(0).unwrap());
            for record in &batch {
                mirror.ingest(record.clone()).unwrap();
                store.ingest(record.clone()).unwrap();
            }
        }

        let guard = fault::arm(FaultSpec::transient(site, class, at, 1).scoped(&dir));
        let before = fault::injected_total();
        if site == "wal-commit" {
            store
                .ingest(failing_record())
                .unwrap_or_else(|e| panic!("a transient fault must be retried away ({ctx}): {e}"));
            mirror.ingest(failing_record()).unwrap();
        } else {
            assert!(
                store.seal_partition(0).unwrap_or_else(|e| panic!(
                    "a transient fault must be retried away ({ctx}): {e}"
                )),
                "the seal must commit ({ctx})"
            );
            assert!(mirror.seal_partition(0).unwrap());
        }
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        drop(guard);

        assert!(
            store.degraded().is_none(),
            "a survived transient must not degrade ({ctx})"
        );
        let metrics = store.render_metrics();
        assert!(
            metric_value(&metrics, "pds_store_io_retries_total") >= 1,
            "the retry must be visible in telemetry ({ctx}):\n{metrics}"
        );
        assert!(
            metric_value(&metrics, "pds_store_io_errors_total") >= 1,
            "the injected failure must be counted ({ctx}):\n{metrics}"
        );
        assert_same_estimates(&store, &mirror, &format!("after absorbed fault ({ctx})"));

        drop(store);
        assert_clean_reopen(&dir, &mirror, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The documented asymmetry: `wal-append` is *not* retryable (a partially
/// buffered frame cannot be rewound), so even a transient fault there
/// degrades — with the acknowledged prefix intact.
#[test]
fn transient_wal_append_still_degrades() {
    let dir = unique_dir("transient-append", ErrorClass::Eio);
    let mirror = SynopsisStore::new(config()).unwrap();
    let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
    for record in acked_records(6) {
        mirror.ingest(record.clone()).unwrap();
        store.ingest(record).unwrap();
    }
    let guard = fault::arm(FaultSpec::transient("wal-append", ErrorClass::Eio, 1, 1).scoped(&dir));
    assert_degraded(store.ingest(failing_record()), "transient wal-append");
    drop(guard);
    assert_same_estimates(&store, &mirror, "acked prefix after append degradation");
    drop(store);
    assert_clean_reopen(&dir, &mirror, "transient wal-append");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degraded handle keeps serving reads across its whole query surface
/// (ranges, point estimates, stats, snapshots) — degradation gates writes
/// only.
#[test]
fn degraded_store_serves_full_query_surface() {
    let dir = unique_dir("query-surface", ErrorClass::Enospc);
    let mirror = SynopsisStore::new(config()).unwrap();
    let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
    for record in acked_records(8) {
        mirror.ingest(record.clone()).unwrap();
        store.ingest(record).unwrap();
    }
    let guard = fault::arm(FaultSpec::persistent("wal-commit", ErrorClass::Enospc).scoped(&dir));
    assert!(store.ingest(failing_record()).is_err());
    mirror.ingest(failing_record()).unwrap();
    drop(guard);

    assert!(store.degraded().is_some());
    for item in 0..N {
        assert_eq!(
            store.estimate(item),
            mirror.estimate(item),
            "point estimate {item} during degradation"
        );
    }
    assert_same_estimates(&store, &mirror, "ranges during degradation");
    let view = store.snapshot_view();
    assert_eq!(
        view.range_estimate(0, N - 1),
        mirror.range_estimate(0, N - 1)
    );
    // The degraded gauge and cause are visible to scrapes.
    let metrics = store.render_metrics();
    assert!(
        metrics.contains("pds_store_degraded 1"),
        "the degraded gauge must be set:\n{metrics}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `block-read` × every class: the lazily deferred synopsis-block load is
/// the one fault site that fires *inside a query* rather than inside a
/// write or an open.  A persistent failure degrades the store at first
/// touch — sticky, write-refusing, with a cause naming the site — while
/// the rest of the query surface keeps serving (the unreadable segment
/// simply stops contributing), and a reopen after the fault clears
/// restores bitwise-correct answers.
#[test]
fn block_read_faults_degrade_at_first_touch_and_keep_serving() {
    for class in ErrorClass::ALL {
        let ctx = format!("block-read/{}", class.name());
        let dir = unique_dir("block-read", class);
        let mirror = SynopsisStore::new(config()).unwrap();
        {
            let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
            for record in acked_records(6) {
                mirror.ingest(record.clone()).unwrap();
                store.ingest(record).unwrap();
            }
            store.seal_partition(0).unwrap();
        }
        mirror.seal_partition(0).unwrap();

        // The (default) lazy reopen never crosses the block-read site…
        let guard = fault::arm(FaultSpec::persistent("block-read", class).scoped(&dir));
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        assert!(
            store.degraded().is_none(),
            "the open must not touch synopsis blocks ({ctx})"
        );

        // …the first query touching the segment does.
        let before = fault::injected_total();
        let _ = store.range_estimate(0, N - 1);
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        let cause = store
            .degraded()
            .unwrap_or_else(|| panic!("the first touch must degrade ({ctx})"));
        assert!(
            cause.starts_with("block-read"),
            "the cause must name the site ({ctx}): {cause}"
        );

        // Degradation gates writes…
        assert_degraded(store.ingest(failing_record()), &ctx);
        // …but the query surface keeps serving: every acknowledged record
        // was sealed into the now-unreadable segment, so the answers are
        // exactly the empty 0.0 — never a panic, never a torn value.
        for (lo, hi) in [(0usize, N - 1), (0, 9), (5, 5)] {
            assert_eq!(store.range_estimate(lo, hi), 0.0, "({ctx})");
        }
        let _ = store.stats();
        let view = store.snapshot_view();
        let _ = view.range_estimate(0, N - 1);

        drop(store);
        drop(guard);
        assert_clean_reopen(&dir, &mirror, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Transient `block-read` faults are absorbed by the bounded retry: the
/// first touch succeeds after the retry, the store stays healthy, the
/// retry and the block load are visible in telemetry, and every answer is
/// bitwise what an eager open would have given.
#[test]
fn transient_block_read_is_retried_away() {
    for class in ErrorClass::ALL {
        let ctx = format!("transient block-read/{}", class.name());
        let dir = unique_dir("transient-block-read", class);
        let mirror = SynopsisStore::new(config()).unwrap();
        {
            let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
            for record in acked_records(6) {
                mirror.ingest(record.clone()).unwrap();
                store.ingest(record).unwrap();
            }
            store.seal_partition(0).unwrap();
        }
        mirror.seal_partition(0).unwrap();

        let guard = fault::arm(FaultSpec::transient("block-read", class, 1, 1).scoped(&dir));
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        let before = fault::injected_total();
        assert_same_estimates(&store, &mirror, &format!("after absorbed fault ({ctx})"));
        assert!(fault::injected_total() > before, "no injection ({ctx})");
        drop(guard);

        assert!(
            store.degraded().is_none(),
            "a survived transient must not degrade ({ctx})"
        );
        let metrics = store.render_metrics();
        assert!(
            metric_value(&metrics, "pds_store_io_retries_total") >= 1,
            "the retry must be visible in telemetry ({ctx}):\n{metrics}"
        );
        assert!(
            metric_value(&metrics, "pds_store_block_loads_total") >= 1,
            "the deferred load must be counted ({ctx}):\n{metrics}"
        );

        drop(store);
        assert_clean_reopen(&dir, &mirror, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
