//! Serial-vs-concurrent equivalence: the same record stream ingested with
//! one thread, with one ingest thread per partition, through `ingest_batch`
//! at several pool widths, or with background seal workers, must yield
//! **byte-identical** sealed segments (and therefore identical
//! `to_binary` snapshots) and identical range estimates.  This is the
//! determinism contract of the sharded store: per-partition record order is
//! a pure function of the stream, and per-partition seal sequence numbers
//! fix segment order regardless of which worker finishes first.

use proptest::prelude::*;

use pds_core::metrics::ErrorMetric;
use pds_core::pool;
use pds_core::stream::{basic_stream, BasicStreamConfig, StreamRecord};
use pds_store::{PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 24;

fn config(parts: usize, threshold: usize) -> StoreConfig {
    StoreConfig::new(
        PartitionSpec::uniform(N, parts).unwrap(),
        threshold,
        6, // lossy on purpose: segment bytes depend on the DP
        SynopsisKind::Histogram(ErrorMetric::Sse),
    )
}

/// A mixed-model record stream (same shape as the round-trip suite).
fn record_stream(max_len: usize) -> impl Strategy<Value = Vec<StreamRecord>> {
    prop::collection::vec(
        (
            0usize..3,
            (0..N, 0.01f64..0.5),
            (0..N, 0.01f64..0.5),
            0.5f64..6.0,
        ),
        1..max_len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, (i1, p1), (i2, p2), v)| match kind {
                0 => StreamRecord::Basic { item: i1, prob: p1 },
                1 if i1 != i2 => StreamRecord::Alternatives(vec![(i1, p1), (i2, p2)]),
                1 => StreamRecord::Alternatives(vec![(i1, p1)]),
                _ => StreamRecord::ValueDistribution {
                    item: i1,
                    entries: vec![(v, p1)],
                },
            })
            .collect()
    })
}

/// Routes a stream the way the store does: per-partition sub-sequences in
/// arrival order, x-tuples split into per-partition sub-tuples.
fn route(spec: &PartitionSpec, records: &[StreamRecord]) -> Vec<Vec<StreamRecord>> {
    let mut routed: Vec<Vec<StreamRecord>> = vec![Vec::new(); spec.len()];
    for record in records {
        match record {
            StreamRecord::Basic { item, .. } | StreamRecord::ValueDistribution { item, .. } => {
                routed[spec.partition_of(*item).unwrap()].push(record.clone());
            }
            StreamRecord::Alternatives(alts) => {
                let mut by_partition: std::collections::BTreeMap<usize, Vec<(usize, f64)>> =
                    std::collections::BTreeMap::new();
                for &(item, prob) in alts {
                    by_partition
                        .entry(spec.partition_of(item).unwrap())
                        .or_default()
                        .push((item, prob));
                }
                for (p, sub) in by_partition {
                    routed[p].push(StreamRecord::Alternatives(sub));
                }
            }
        }
    }
    routed
}

fn estimates_on_grid(store: &SynopsisStore) -> Vec<f64> {
    let mut out = Vec::new();
    for lo in 0..N {
        for hi in [lo, (lo + 3).min(N - 1), N - 1] {
            out.push(store.range_estimate(lo, hi));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One ingest thread per partition plus background seal workers produce
    /// byte-identical snapshots to single-threaded ingest of the same
    /// per-partition sequences, and identical answers to serial ingest of
    /// the original stream.
    #[test]
    fn per_partition_threads_and_background_sealing_are_byte_identical(
        records in record_stream(120),
        parts in 2usize..5,
        threshold in 2usize..12,
        workers in 1usize..4,
    ) {
        let spec = PartitionSpec::uniform(N, parts).unwrap();
        let routed = route(&spec, &records);

        // Reference A: serial per-record ingest of the original stream.
        let serial = SynopsisStore::new(config(parts, threshold)).unwrap();
        for record in &records {
            serial.ingest(record.clone()).unwrap();
        }
        serial.seal_all().unwrap();

        // Reference B: serial ingest of the pre-routed sub-streams
        // (partition-major).  Identical per-partition sequences, so
        // identical segments; only the split/ingest counters may differ.
        let pre_routed = SynopsisStore::new(config(parts, threshold)).unwrap();
        for batch in &routed {
            for record in batch {
                pre_routed.ingest(record.clone()).unwrap();
            }
        }
        pre_routed.seal_all().unwrap();

        // C: one scoped ingest thread per partition, background sealing.
        let concurrent = SynopsisStore::new(config(parts, threshold))
            .unwrap()
            .with_background_sealing(workers);
        std::thread::scope(|scope| {
            for batch in &routed {
                let concurrent = &concurrent;
                scope.spawn(move || {
                    for record in batch {
                        concurrent.ingest(record.clone()).unwrap();
                    }
                });
            }
        });
        concurrent.seal_all().unwrap();
        concurrent.flush().unwrap();

        // Segments are byte-identical across all three stores.
        for p in 0..parts {
            prop_assert_eq!(serial.segments(p), pre_routed.segments(p), "partition {}", p);
            prop_assert_eq!(pre_routed.segments(p), concurrent.segments(p), "partition {}", p);
        }
        // B and C saw identical record sequences, so whole snapshots
        // (including counters) match byte for byte.
        prop_assert_eq!(pre_routed.to_binary().unwrap(), concurrent.to_binary().unwrap());

        // Identical answers everywhere (bitwise: same f64 operations).
        let a = estimates_on_grid(&serial);
        let c = estimates_on_grid(&concurrent);
        for (x, y) in a.iter().zip(&c) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `ingest_batch` at 1/2/4/8 pool threads matches serial per-record
    /// ingest byte for byte, with and without background sealing.
    #[test]
    fn batch_ingest_thread_counts_are_byte_identical(
        records in record_stream(100),
        parts in 2usize..5,
        threshold in 2usize..12,
    ) {
        let serial = SynopsisStore::new(config(parts, threshold)).unwrap();
        for record in &records {
            serial.ingest(record.clone()).unwrap();
        }
        serial.seal_all().unwrap();
        let reference = serial.to_binary().unwrap();

        for threads in [1usize, 2, 4, 8] {
            // The pool override is process-global; every store path is
            // deterministic at any thread count, so concurrently running
            // tests observing a different width stay correct.
            pool::set_num_threads(Some(threads));
            let batched = SynopsisStore::new(config(parts, threshold)).unwrap();
            batched.ingest_batch(records.iter().cloned()).unwrap();
            batched.seal_all().unwrap();
            prop_assert_eq!(&batched.to_binary().unwrap(), &reference, "threads {}", threads);

            let background = SynopsisStore::new(config(parts, threshold))
                .unwrap()
                .with_background_sealing(threads);
            background.ingest_batch(records.iter().cloned()).unwrap();
            background.seal_all().unwrap();
            prop_assert_eq!(
                &background.to_binary().unwrap(),
                &reference,
                "background, threads {}",
                threads
            );
        }
        pool::set_num_threads(None);
    }
}

/// Readers racing a writer and background seal workers: every observed
/// estimate is a valid point-in-time value (between 0 and the final total),
/// and the final state matches the serial reference exactly.
#[test]
fn concurrent_readers_observe_consistent_states() {
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.6,
        seed: 99,
    })
    .take(4_000)
    .collect();
    let total: f64 = records
        .iter()
        .map(|r| match r {
            StreamRecord::Basic { prob, .. } => *prob,
            _ => unreachable!(),
        })
        .sum();

    let store = SynopsisStore::new(config(4, 64))
        .unwrap()
        .with_background_sealing(2);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            store.ingest_batch(records.iter().cloned()).unwrap();
        });
        for _ in 0..2 {
            scope.spawn(|| {
                // Race queries against ingest + background sealing; sums
                // must always be a sane partial total, never garbage, and
                // never *dip* — a memtable frozen for an in-flight seal
                // stays visible (SSE representatives preserve bucket mass),
                // so the observed total only grows as records arrive.
                let mut last = 0.0f64;
                for _ in 0..200 {
                    let got = store.range_estimate(0, N - 1);
                    assert!(
                        got >= -1e-9 && got <= total + 1e-9,
                        "mid-ingest estimate {got} outside [0, {total}]"
                    );
                    assert!(
                        got >= last - 1e-6,
                        "estimate dipped {last} -> {got}: in-flight seal lost mass"
                    );
                    last = got;
                }
            });
        }
        writer.join().unwrap();
    });
    store.seal_all().unwrap();
    store.flush().unwrap();

    let serial = SynopsisStore::new(config(4, 64)).unwrap();
    for record in &records {
        serial.ingest(record.clone()).unwrap();
    }
    serial.seal_all().unwrap();
    assert_eq!(store.to_binary().unwrap(), serial.to_binary().unwrap());
    assert!((store.range_estimate(0, N - 1) - total).abs() < 1e-6);
}

/// `merge_global` and `compact_all` produce bitwise-identical histograms at
/// every pool width (piece extraction and the merge DP are deterministic).
#[test]
fn merge_and_compaction_are_thread_count_independent() {
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.8,
        seed: 41,
    })
    .take(2_000)
    .collect();
    let mut reference: Option<(Vec<u64>, Vec<u8>)> = None;
    for threads in [1usize, 2, 4] {
        pool::set_num_threads(Some(threads));
        let store = SynopsisStore::new(config(4, 100)).unwrap();
        store.ingest_batch(records.iter().cloned()).unwrap();
        store.seal_all().unwrap();
        let merged = store.merge_global(5).unwrap();
        let bits: Vec<u64> = merged.estimates().iter().map(|v| v.to_bits()).collect();
        store.compact_all().unwrap();
        let compacted = store.to_binary().unwrap();
        match &reference {
            None => reference = Some((bits, compacted)),
            Some((ref_bits, ref_compacted)) => {
                assert_eq!(&bits, ref_bits, "merge_global at {threads} threads");
                assert_eq!(
                    &compacted, ref_compacted,
                    "compact_all at {threads} threads"
                );
            }
        }
    }
    pool::set_num_threads(None);
}

/// Batch ingest with a WAL: a crash (drop without sealing) after concurrent
/// ingest loses nothing — the reopened store answers like the serial
/// reference.
#[test]
fn wal_covers_concurrent_batch_ingest() {
    let dir =
        std::env::temp_dir().join(format!("pds-store-concurrency-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.5,
        seed: 7,
    })
    .take(300)
    .collect();
    // Threshold high enough that nothing auto-seals: every record stays
    // live, so the WAL alone must reconstruct the full state (sealed
    // segments persist via `snapshot()`, not the WAL).
    {
        let store = SynopsisStore::open_with_wal(config(3, 1000), &dir).unwrap();
        store.ingest_batch(records.iter().cloned()).unwrap();
        // Dropped with live records: only the WAL has them now.
    }
    let reopened = SynopsisStore::open_with_wal(config(3, 1000), &dir).unwrap();
    let serial = SynopsisStore::new(config(3, 1000)).unwrap();
    serial.ingest_all(records).unwrap();
    for lo in (0..N).step_by(3) {
        assert_eq!(
            reopened.range_estimate(lo, N - 1).to_bits(),
            serial.range_estimate(lo, N - 1).to_bits(),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The bitwise fingerprint of one partition as a snapshot view answers it:
/// every point estimate in the partition's item range plus the
/// whole-partition range sum.  Two states of the same partition that differ
/// at all differ in this vector, and bit-equality here means the view
/// observed exactly one committed state of the partition.
fn partition_fingerprint(
    view: &pds_store::SnapshotView,
    spec: &PartitionSpec,
    p: usize,
) -> Vec<u64> {
    let (start, width) = spec.range(p);
    let mut out: Vec<u64> = (start..start + width)
        .map(|i| view.estimate(i).to_bits())
        .collect();
    out.push(view.range_estimate(start, start + width - 1).to_bits());
    out
}

/// Snapshot views captured while another thread commits one compaction per
/// partition (in partition order) are always **bitwise** consistent cuts of
/// the commit chain.  Per partition, exactly two states ever exist: the
/// sealed pre-compaction segments and the single merged post-compaction
/// segment, so every view's per-partition fingerprint must bit-equal one of
/// the two quiesced references — a torn capture (half a swap, or mixed
/// record mass) would produce a third value.  Because the compactor commits
/// partitions in ascending order, the set of post-compaction partitions any
/// single consistent cut can observe is a *prefix*: seeing partition `j`
/// compacted while some `i < j` is still uncompacted means the view mixed
/// two points in time.  Across successive views the observation is also
/// monotone — commits never revert.  Runs at a 4-wide pool (the
/// `PDS_THREADS=4` shape of the rest of this suite).
#[test]
fn snapshot_views_race_compaction_commits_consistently() {
    pool::set_num_threads(Some(4));
    const PARTS: usize = 4;
    let spec = PartitionSpec::uniform(N, PARTS).unwrap();
    let cfg = StoreConfig::new(
        spec.clone(),
        50,
        N, // lossless: N buckets represent the N-item domain exactly
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    let store = SynopsisStore::new(cfg.clone()).unwrap();
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.6,
        seed: 55,
    })
    .take(3_000)
    .collect();
    store.ingest_batch(records.iter().cloned()).unwrap();
    store.seal_all().unwrap();
    assert!(
        store.stats().segments >= 8,
        "need several segments per partition for compaction to race against"
    );

    // Quiesced pre-compaction reference, per partition, captured through
    // the same snapshot-view path the racing reads use.
    let quiesced = store.snapshot_view();
    let pre: Vec<Vec<u64>> = (0..PARTS)
        .map(|p| partition_fingerprint(&quiesced, &spec, p))
        .collect();
    drop(quiesced);

    // Race: the compactor commits partition 0, then 1, 2, 3 (one merge
    // each — `compact_partition` folds every sealed segment into one, so
    // the per-partition chain has exactly two states).  The main thread
    // records what each racing view saw; verdicts are checked once the
    // post-compaction references exist.
    let observed: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        let compactor = scope.spawn(|| {
            for p in 0..PARTS {
                store.compact_partition(p).unwrap();
            }
        });
        let mut seen = Vec::new();
        while !compactor.is_finished() || seen.is_empty() {
            let view = store.snapshot_view();
            seen.push(
                (0..PARTS)
                    .map(|p| partition_fingerprint(&view, &spec, p))
                    .collect::<Vec<_>>(),
            );
        }
        compactor.join().unwrap();
        seen
    });

    // Quiesced post-compaction reference (the store is now fully merged).
    let quiesced = store.snapshot_view();
    let post: Vec<Vec<u64>> = (0..PARTS)
        .map(|p| partition_fingerprint(&quiesced, &spec, p))
        .collect();

    // Every racing view: each partition bit-equals exactly pre or post,
    // the post-compaction partitions form a prefix within a view, and the
    // observation never regresses across successive views.
    let mut frontier = [false; PARTS]; // partitions already seen post
    for (v, fingerprints) in observed.iter().enumerate() {
        let mut saw_pre = false;
        for (p, got) in fingerprints.iter().enumerate() {
            let is_pre = *got == pre[p];
            let is_post = *got == post[p];
            assert!(
                is_pre || is_post,
                "racing view {v}, partition {p}: fingerprint matches neither \
                 the pre- nor the post-compaction state bitwise — torn view"
            );
            // `is_pre && is_post` (compaction changed nothing bitwise) is
            // compatible with both sides of the chain; skip it.
            if is_pre && is_post {
                continue;
            }
            if is_post {
                assert!(
                    !saw_pre,
                    "racing view {v}: partition {p} observed post-compaction \
                     after an earlier partition was still pre-compaction — \
                     commits land in partition order, so this cut never existed"
                );
                frontier[p] = true;
            } else {
                saw_pre = true;
                assert!(
                    !frontier[p],
                    "racing view {v}: partition {p} regressed to its \
                     pre-compaction state after a prior view saw it compacted"
                );
            }
        }
    }

    // Fully quiesced rebuild: a fresh store over the same stream, sealed
    // and compacted the same way, bit-equals the raced store partition by
    // partition (seal and merge are deterministic at every pool width).
    let rebuilt = SynopsisStore::new(cfg).unwrap();
    rebuilt.ingest_batch(records).unwrap();
    rebuilt.seal_all().unwrap();
    rebuilt.compact_all().unwrap();
    let rebuilt_view = rebuilt.snapshot_view();
    for (p, expected) in post.iter().enumerate() {
        assert_eq!(
            &partition_fingerprint(&rebuilt_view, &spec, p),
            expected,
            "quiesced rebuild, partition {p}: compacted fingerprint drifted \
             from the raced store"
        );
    }
    pool::set_num_threads(None);
}
