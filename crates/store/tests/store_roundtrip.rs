//! Property tests for the store lifecycle: ingest → seal → binary
//! encode/decode → query equality, corruption handling, and the
//! merged-vs-monolithic error bound.

use proptest::prelude::*;

use pds_core::metrics::ErrorMetric;
use pds_core::model::{BasicModel, ProbabilisticRelation};
use pds_core::stream::StreamRecord;
use pds_histogram::build_histogram;
use pds_store::{PartitionSpec, Segment, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 24;

/// Strategy: a mixed-model record stream over the `N`-item domain (the
/// vendored proptest shim has no `prop_oneof`, so the variant is drawn as a
/// plain integer and mapped).
fn record_stream(max_len: usize) -> impl Strategy<Value = Vec<StreamRecord>> {
    prop::collection::vec(
        (
            0usize..3,
            (0..N, 0.01f64..0.5),
            (0..N, 0.01f64..0.5),
            0.5f64..6.0,
        ),
        1..max_len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, (i1, p1), (i2, p2), v)| match kind {
                0 => StreamRecord::Basic { item: i1, prob: p1 },
                1 if i1 != i2 => StreamRecord::Alternatives(vec![(i1, p1), (i2, p2)]),
                1 => StreamRecord::Alternatives(vec![(i1, p1)]),
                _ => StreamRecord::ValueDistribution {
                    item: i1,
                    entries: vec![(v, p1)],
                },
            })
            .collect()
    })
}

fn full_budget_config(parts: usize, threshold: usize) -> StoreConfig {
    StoreConfig::new(
        PartitionSpec::uniform(N, parts).unwrap(),
        threshold,
        // Budget >= partition width: segment histograms are exact.
        N,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ingest → seal → encode → decode → the restored store answers every
    /// range query exactly like the live one, and (with a full per-segment
    /// budget) exactly like the expectations of the ingested records.
    #[test]
    fn ingest_seal_encode_decode_preserves_answers(
        records in record_stream(60),
        parts in 1usize..5,
        threshold in 1usize..16,
    ) {
        let store = SynopsisStore::new(full_budget_config(parts, threshold)).unwrap();
        // Exact reference: expectation is linear.
        let mut exact = [0.0f64; N];
        for r in &records {
            match r {
                StreamRecord::Basic { item, prob } => exact[*item] += prob,
                StreamRecord::Alternatives(alts) => {
                    for &(i, p) in alts {
                        exact[i] += p;
                    }
                }
                StreamRecord::ValueDistribution { item, entries } => {
                    exact[*item] += entries.iter().map(|&(v, p)| v * p).sum::<f64>();
                }
            }
        }
        store.ingest_all(records.iter().cloned()).unwrap();
        store.seal_all().unwrap();
        prop_assert_eq!(store.stats().live_records, 0);

        let bytes = store.to_binary().unwrap();
        let restored = SynopsisStore::from_binary(&bytes).unwrap();
        for lo in (0..N).step_by(3) {
            for hi in (lo..N).step_by(4) {
                let want: f64 = exact[lo..=hi].iter().sum();
                let live = store.range_estimate(lo, hi);
                let back = restored.range_estimate(lo, hi);
                prop_assert!((live - want).abs() < 1e-6, "[{},{}] {} vs {}", lo, hi, live, want);
                prop_assert!((back - live).abs() < 1e-9);
            }
        }
        // Compaction keeps the answers (full budget: lossless).
        let compacted = restored.clone();
        compacted.compact_all().unwrap();
        prop_assert!(compacted.stats().segments <= parts);
        for lo in (0..N).step_by(5) {
            let a = compacted.range_estimate(lo, N - 1);
            let b = store.range_estimate(lo, N - 1);
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Truncating or bit-flipping an encoded store/segment yields a
    /// `PdsError`, never a panic or a silently wrong value.
    #[test]
    fn corrupted_encodings_error_cleanly(
        records in record_stream(40),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0usize..8,
    ) {
        let store = SynopsisStore::new(full_budget_config(2, 8)).unwrap();
        store.ingest_all(records).unwrap();
        store.seal_all().unwrap();
        let bytes = store.to_binary().unwrap();

        // Any strict prefix fails.
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        prop_assert!(SynopsisStore::from_binary(&bytes[..cut]).is_err());

        // A flipped bit either fails or round-trips to a *valid* store —
        // decoding must never panic.  (Flips in representative bytes can
        // decode to a structurally valid store with different estimates;
        // the invariant under test is no-panic + validated structure.)
        let mut flipped = bytes.clone();
        let pos = ((bytes.len() as f64 * flip_frac) as usize).min(bytes.len() - 1);
        flipped[pos] ^= 1u8 << flip_bit;
        let _ = SynopsisStore::from_binary(&flipped);

        // Same treatment for a single segment blob.
        let segment = &store.segments(0)[0];
        let seg_bytes = segment.to_binary().unwrap();
        let seg_cut = ((seg_bytes.len() as f64 * cut_frac) as usize).min(seg_bytes.len() - 1);
        prop_assert!(Segment::from_binary(&seg_bytes[..seg_cut]).is_err());
        let json = segment.to_json().unwrap();
        let json_cut = ((json.len() as f64 * cut_frac) as usize).min(json.len() - 1);
        prop_assert!(Segment::from_json(&json[..json_cut]).is_err());
    }

    /// The sharded pipeline (per-partition segments merged into a global
    /// histogram) stays within 2x of the monolithic single-build error for
    /// the same global bucket budget.
    #[test]
    fn merged_error_is_within_twice_the_monolithic_error(
        pairs in prop::collection::vec((0..N, 0.01f64..1.0), 24..120),
        parts in 2usize..5,
    ) {
        let store = SynopsisStore::new(StoreConfig::new(
            PartitionSpec::uniform(N, parts).unwrap(),
            1000,
            // A generous per-segment budget, as a real deployment would use.
            N,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        ))
        .unwrap();
        for &(item, prob) in &pairs {
            store.ingest(StreamRecord::Basic { item, prob }).unwrap();
        }
        store.seal_all().unwrap();
        let b = 4;
        let merged = store.merge_global(b).unwrap();

        let relation: ProbabilisticRelation =
            BasicModel::from_pairs(N, pairs).unwrap().into();
        let monolithic = build_histogram(&relation, ErrorMetric::Sse, b).unwrap();

        let exact = relation.expected_frequencies();
        let sse = |h: &pds_histogram::Histogram| -> f64 {
            (0..N).map(|i| (h.estimate(i) - exact[i]).powi(2)).sum()
        };
        let merged_sse = sse(&merged);
        let mono_sse = sse(&monolithic);
        prop_assert!(
            merged_sse <= 2.0 * mono_sse + 1e-9,
            "merged {} vs monolithic {}", merged_sse, mono_sse
        );
    }
}
